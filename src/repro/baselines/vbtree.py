"""VB-tree-flavoured baseline: a hierarchy of *signed* node digests.

Pang & Tan's VB-tree ("Authenticating Query Results in Edge Computing", ICDE
2004 — reference [20] of the paper) augments a B+-tree with digests computed
bottom-up, and *signs every node digest* so a verification object only needs
the smallest signed subtree enveloping the query result.  The scheme
authenticates result values but does not prove completeness.

This module keeps the parts the SIGMOD 2005 paper actually compares against:

* a fanout-``f`` digest hierarchy over the sorted tuples,
* per-node signatures,
* VO construction for a range (the signed digests of the minimal covering
  nodes plus the digests needed to open them down to the result tuples),
* update cost accounting — an update re-hashes *and re-signs* the whole
  root path, which is what makes the scheme expensive under churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.encoding import encode_record_payload
from repro.crypto.hashing import HashFunction, default_hash
from repro.crypto.signature import SignatureScheme
from repro.db.records import Record
from repro.db.relation import Relation

__all__ = ["VBTree", "VBTreeProof", "VBTreeVerifier"]


@dataclass(frozen=True)
class VBTreeProof:
    """Authenticity VO: signed covering-node digests plus opening digests.

    ``fanout``, ``table_size`` and ``leaf_range`` describe where the result
    sits in the (deterministic) digest hierarchy, which is exactly what a
    remote :class:`VBTreeVerifier` needs to rebuild every covering-node digest
    from the result tuples alone — the tree shape is a pure function of
    ``(table_size, fanout)``, so no per-node structure crosses the wire.
    """

    covering_signatures: Tuple[int, ...]
    covering_digests: Tuple[bytes, ...]
    opening_digests: Tuple[bytes, ...]
    fanout: int = 0
    table_size: int = 0
    leaf_range: Tuple[int, int] = (0, 0)

    @property
    def digest_count(self) -> int:
        return len(self.covering_digests) + len(self.opening_digests)

    @property
    def signature_count(self) -> int:
        return len(self.covering_signatures)

    def size_bytes(self, digest_bytes: int, signature_bytes: int) -> int:
        return (
            self.digest_count * digest_bytes + self.signature_count * signature_bytes
        )


class _Node:
    __slots__ = ("children", "leaf_span", "digest", "signature")

    def __init__(self, leaf_span: Tuple[int, int]) -> None:
        self.children: List["_Node"] = []
        self.leaf_span = leaf_span
        self.digest = b""
        self.signature = 0


class VBTree:
    """A signed digest hierarchy with configurable fanout over a sorted relation."""

    def __init__(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        fanout: int = 8,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.relation = relation
        self.schema = relation.schema
        self.fanout = fanout
        self.hash_function = hash_function or default_hash()
        self._signature_scheme = signature_scheme
        self.last_update_hashes = 0
        self.last_update_signatures = 0
        self._rebuild()

    # -- construction --------------------------------------------------------------

    def _tuple_digest(self, record: Record) -> bytes:
        payload = encode_record_payload(record.as_dict(), self.schema.attribute_names)
        return self.hash_function.digest(b"vbtree-leaf|" + payload)

    def _rebuild(self) -> None:
        leaves = []
        for index, record in enumerate(self.relation):
            node = _Node((index, index + 1))
            node.digest = self._tuple_digest(record)
            node.signature = self._signature_scheme.sign(node.digest)
            leaves.append(node)
        if not leaves:
            node = _Node((0, 0))
            node.digest = self.hash_function.digest(b"vbtree-empty")
            node.signature = self._signature_scheme.sign(node.digest)
            leaves = [node]
        level = leaves
        while len(level) > 1:
            parents: List[_Node] = []
            for start in range(0, len(level), self.fanout):
                group = level[start : start + self.fanout]
                parent = _Node((group[0].leaf_span[0], group[-1].leaf_span[1]))
                parent.children = group
                parent.digest = self.hash_function.digest(
                    b"vbtree-node|" + b"".join(child.digest for child in group)
                )
                parent.signature = self._signature_scheme.sign(parent.digest)
                parents.append(parent)
            level = parents
        self.root = level[0]

    @property
    def height(self) -> int:
        """Number of levels from a leaf to the root (inclusive)."""
        levels = 1
        node = self.root
        while node.children:
            node = node.children[0]
            levels += 1
        return levels

    # -- query answering ---------------------------------------------------------------------

    def answer_range(self, low: int, high: int) -> Tuple[List[Dict[str, object]], VBTreeProof]:
        """Authenticity proof for a range: minimal signed covering nodes."""
        start, stop = self.relation.range_indices(low, high)
        rows = [self.relation[index].as_dict() for index in range(start, stop)]
        covering: List[_Node] = []
        self._cover(self.root, start, stop, covering)
        opening: List[bytes] = []
        for node in covering:
            self._collect_openings(node, start, stop, opening)
        return rows, VBTreeProof(
            covering_signatures=tuple(node.signature for node in covering),
            covering_digests=tuple(node.digest for node in covering),
            opening_digests=tuple(opening),
            fanout=self.fanout,
            table_size=len(self.relation),
            leaf_range=(start, stop),
        )

    def _cover(self, node: _Node, lo: int, hi: int, out: List[_Node]) -> None:
        span_lo, span_hi = node.leaf_span
        if span_hi <= lo or span_lo >= hi:
            return
        if lo <= span_lo and span_hi <= hi:
            out.append(node)
            return
        if not node.children:
            out.append(node)  # partially overlapping leaf: include it
            return
        for child in node.children:
            self._cover(child, lo, hi, out)

    def _collect_openings(self, node: _Node, lo: int, hi: int, out: List[bytes]) -> None:
        if not node.children:
            return
        for child in node.children:
            span_lo, span_hi = child.leaf_span
            if span_hi <= lo or span_lo >= hi:
                out.append(child.digest)
            else:
                self._collect_openings(child, lo, hi, out)

    # -- updates -------------------------------------------------------------------------------

    def update_record(self, old: Record, new) -> Tuple[int, int]:
        """Replace a record; the whole root path is re-hashed *and re-signed*."""
        self.relation.update(old, new)
        return self._account_rebuild()

    def insert_record(self, record) -> Tuple[int, int]:
        """Insert a record; the root path is re-hashed *and re-signed*."""
        self.relation.insert(record)
        return self._account_rebuild()

    def delete_record(self, record: Record) -> Tuple[int, int]:
        """Delete a record; same signed-path cost as any other mutation."""
        self.relation.delete(record)
        return self._account_rebuild()

    def _account_rebuild(self) -> Tuple[int, int]:
        path = self.height
        self._rebuild()
        self.last_update_hashes = path
        self.last_update_signatures = path
        return path, path


class VBTreeVerifier:
    """User-side verification for the VB-tree scheme.

    Holds only what the owner distributes: the schema attribute order, the key
    attribute and the public key.  The digest hierarchy over ``n`` sorted
    tuples with fanout ``f`` is deterministic — level ``k`` holds
    ``ceil(n / f^k)`` nodes and node ``i`` of level ``k`` spans leaves
    ``[i*f^k, min((i+1)*f^k, n))`` — so the verifier mirrors the publisher's
    covering recursion structurally, rebuilds each covering-node digest from
    the result tuples, and checks the owner's signature on every one.

    The scheme authenticates values only: a verified answer proves every
    returned tuple is genuine and in query range, but (unlike the paper's
    chain scheme) nothing stops the publisher from omitting qualifying tuples.
    """

    def __init__(
        self,
        attribute_order: Sequence[str],
        key_attribute: str,
        public_key,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        self.attribute_order = list(attribute_order)
        self.key_attribute = key_attribute
        self.public_key = public_key
        self.hash_function = hash_function or default_hash()

    def _level_counts(self, table_size: int, fanout: int) -> List[int]:
        """Node counts per level, leaves first (mirrors ``VBTree._rebuild``)."""
        counts = [max(1, table_size)]
        while counts[-1] > 1:
            counts.append((counts[-1] + fanout - 1) // fanout)
        return counts

    def _expected_cover(
        self, table_size: int, fanout: int, lo: int, hi: int
    ) -> List[Tuple[int, int]]:
        """The canonical (level, index) covering set of ``[lo, hi)``."""
        if table_size == 0 or lo >= hi:
            return []
        counts = self._level_counts(table_size, fanout)
        cover: List[Tuple[int, int]] = []

        def span(level: int, index: int) -> Tuple[int, int]:
            start = index * fanout**level
            return start, min(start + fanout**level, table_size)

        def descend(level: int, index: int) -> None:
            start, stop = span(level, index)
            if stop <= lo or start >= hi:
                return
            if lo <= start and stop <= hi:
                cover.append((level, index))
                return
            if level == 0:  # pragma: no cover - leaf spans are width 1
                cover.append((level, index))
                return
            first = index * fanout
            for child in range(first, min(first + fanout, counts[level - 1])):
                descend(level - 1, child)

        descend(len(counts) - 1, 0)
        return cover

    def _rebuild_digest(
        self,
        level: int,
        index: int,
        counts: List[int],
        fanout: int,
        leaf_digests: Sequence[bytes],
        lo: int,
    ) -> bytes:
        if level == 0:
            return leaf_digests[index - lo]
        first = index * fanout
        children = range(first, min(first + fanout, counts[level - 1]))
        return self.hash_function.digest(
            b"vbtree-node|"
            + b"".join(
                self._rebuild_digest(child_level, child, counts, fanout, leaf_digests, lo)
                for child_level, child in ((level - 1, c) for c in children)
            )
        )

    def verify_range(
        self, low: int, high: int, rows: Sequence[Dict[str, object]], proof: VBTreeProof
    ) -> bool:
        """Check that every returned tuple is authentic and in range.

        Returns ``False`` for any structural mismatch (wrong row count, a
        tuple outside ``[low, high]``, a covering digest that does not rebuild
        from the tuples, a signature that does not verify, or unexpected
        opening digests — honest covering nodes are fully in-range, so their
        subtrees need no openings).
        """
        if proof.fanout < 2 or proof.table_size < 0:
            return False
        lo, hi = proof.leaf_range
        if not (0 <= lo <= hi <= proof.table_size):
            return False
        if len(rows) != hi - lo:
            return False
        if proof.opening_digests:
            return False
        for row in rows:
            if set(row) != set(self.attribute_order):
                return False
            key = row[self.key_attribute]
            if not isinstance(key, int) or not (low <= key <= high):
                return False
        keys = [row[self.key_attribute] for row in rows]
        if keys != sorted(keys):
            return False
        cover = self._expected_cover(proof.table_size, proof.fanout, lo, hi)
        if len(cover) != len(proof.covering_digests) or len(cover) != len(
            proof.covering_signatures
        ):
            return False
        counts = self._level_counts(proof.table_size, proof.fanout)
        leaf_digests = [
            self.hash_function.digest(
                b"vbtree-leaf|" + encode_record_payload(row, self.attribute_order)
            )
            for row in rows
        ]
        for (level, index), digest, signature in zip(
            cover, proof.covering_digests, proof.covering_signatures
        ):
            rebuilt = self._rebuild_digest(
                level, index, counts, proof.fanout, leaf_digests, lo
            )
            if rebuilt != digest:
                return False
            if not self.public_key.verify(digest, signature):
                return False
        return True
