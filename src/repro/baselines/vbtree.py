"""VB-tree-flavoured baseline: a hierarchy of *signed* node digests.

Pang & Tan's VB-tree ("Authenticating Query Results in Edge Computing", ICDE
2004 — reference [20] of the paper) augments a B+-tree with digests computed
bottom-up, and *signs every node digest* so a verification object only needs
the smallest signed subtree enveloping the query result.  The scheme
authenticates result values but does not prove completeness.

This module keeps the parts the SIGMOD 2005 paper actually compares against:

* a fanout-``f`` digest hierarchy over the sorted tuples,
* per-node signatures,
* VO construction for a range (the signed digests of the minimal covering
  nodes plus the digests needed to open them down to the result tuples),
* update cost accounting — an update re-hashes *and re-signs* the whole
  root path, which is what makes the scheme expensive under churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.encoding import encode_many
from repro.crypto.hashing import HashFunction, default_hash
from repro.crypto.signature import SignatureScheme
from repro.db.records import Record
from repro.db.relation import Relation

__all__ = ["VBTree", "VBTreeProof"]


@dataclass(frozen=True)
class VBTreeProof:
    """Authenticity VO: signed covering-node digests plus opening digests."""

    covering_signatures: Tuple[int, ...]
    covering_digests: Tuple[bytes, ...]
    opening_digests: Tuple[bytes, ...]

    @property
    def digest_count(self) -> int:
        return len(self.covering_digests) + len(self.opening_digests)

    @property
    def signature_count(self) -> int:
        return len(self.covering_signatures)

    def size_bytes(self, digest_bytes: int, signature_bytes: int) -> int:
        return (
            self.digest_count * digest_bytes + self.signature_count * signature_bytes
        )


class _Node:
    __slots__ = ("children", "leaf_span", "digest", "signature")

    def __init__(self, leaf_span: Tuple[int, int]) -> None:
        self.children: List["_Node"] = []
        self.leaf_span = leaf_span
        self.digest = b""
        self.signature = 0


class VBTree:
    """A signed digest hierarchy with configurable fanout over a sorted relation."""

    def __init__(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        fanout: int = 8,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.relation = relation
        self.schema = relation.schema
        self.fanout = fanout
        self.hash_function = hash_function or default_hash()
        self._signature_scheme = signature_scheme
        self.last_update_hashes = 0
        self.last_update_signatures = 0
        self._rebuild()

    # -- construction --------------------------------------------------------------

    def _tuple_digest(self, record: Record) -> bytes:
        flattened: List[object] = []
        for name in self.schema.attribute_names:
            flattened.append(name)
            flattened.append(record[name])
        return self.hash_function.digest(b"vbtree-leaf|" + encode_many(flattened))

    def _rebuild(self) -> None:
        leaves = []
        for index, record in enumerate(self.relation):
            node = _Node((index, index + 1))
            node.digest = self._tuple_digest(record)
            node.signature = self._signature_scheme.sign(node.digest)
            leaves.append(node)
        if not leaves:
            node = _Node((0, 0))
            node.digest = self.hash_function.digest(b"vbtree-empty")
            node.signature = self._signature_scheme.sign(node.digest)
            leaves = [node]
        level = leaves
        while len(level) > 1:
            parents: List[_Node] = []
            for start in range(0, len(level), self.fanout):
                group = level[start : start + self.fanout]
                parent = _Node((group[0].leaf_span[0], group[-1].leaf_span[1]))
                parent.children = group
                parent.digest = self.hash_function.digest(
                    b"vbtree-node|" + b"".join(child.digest for child in group)
                )
                parent.signature = self._signature_scheme.sign(parent.digest)
                parents.append(parent)
            level = parents
        self.root = level[0]

    @property
    def height(self) -> int:
        """Number of levels from a leaf to the root (inclusive)."""
        levels = 1
        node = self.root
        while node.children:
            node = node.children[0]
            levels += 1
        return levels

    # -- query answering ---------------------------------------------------------------------

    def answer_range(self, low: int, high: int) -> Tuple[List[Dict[str, object]], VBTreeProof]:
        """Authenticity proof for a range: minimal signed covering nodes."""
        start, stop = self.relation.range_indices(low, high)
        rows = [self.relation[index].as_dict() for index in range(start, stop)]
        covering: List[_Node] = []
        self._cover(self.root, start, stop, covering)
        opening: List[bytes] = []
        for node in covering:
            self._collect_openings(node, start, stop, opening)
        return rows, VBTreeProof(
            covering_signatures=tuple(node.signature for node in covering),
            covering_digests=tuple(node.digest for node in covering),
            opening_digests=tuple(opening),
        )

    def _cover(self, node: _Node, lo: int, hi: int, out: List[_Node]) -> None:
        span_lo, span_hi = node.leaf_span
        if span_hi <= lo or span_lo >= hi:
            return
        if lo <= span_lo and span_hi <= hi:
            out.append(node)
            return
        if not node.children:
            out.append(node)  # partially overlapping leaf: include it
            return
        for child in node.children:
            self._cover(child, lo, hi, out)

    def _collect_openings(self, node: _Node, lo: int, hi: int, out: List[bytes]) -> None:
        if not node.children:
            return
        for child in node.children:
            span_lo, span_hi = child.leaf_span
            if span_hi <= lo or span_lo >= hi:
                out.append(child.digest)
            else:
                self._collect_openings(child, lo, hi, out)

    # -- updates -------------------------------------------------------------------------------

    def update_record(self, old: Record, new) -> Tuple[int, int]:
        """Replace a record; the whole root path is re-hashed *and re-signed*."""
        self.relation.update(old, new)
        path = self.height
        self._rebuild()
        self.last_update_hashes = path
        self.last_update_signatures = path
        return path, path
