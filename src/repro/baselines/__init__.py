"""Baseline authentication schemes the paper compares against.

* :mod:`repro.baselines.devanbu` — Devanbu et al. [10]: a Merkle hash tree per
  sort order, completeness via exposed boundary tuples.  The only prior scheme
  with completeness guarantees, and the paper's main comparison point.
* :mod:`repro.baselines.naive` — per-tuple signatures: authenticity only, used
  as a lower bound and to quantify the benefit of signature aggregation.
* :mod:`repro.baselines.vbtree` — a VB-tree-flavoured hierarchy of *signed*
  node digests [20]: authenticity only, used in the update-cost comparison.
"""

from repro.baselines.devanbu import DevanbuMHT, DevanbuProof
from repro.baselines.naive import NaiveSignedRelation
from repro.baselines.vbtree import VBTree

__all__ = ["DevanbuMHT", "DevanbuProof", "NaiveSignedRelation", "VBTree"]
