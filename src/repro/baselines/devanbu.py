"""The Devanbu et al. baseline: Merkle-hash-tree authenticated range queries.

Devanbu, Gertz, Martel and Stubblebine ("Authentic Data Publication over the
Internet", 2000) — reference [10] of the paper — authenticate query results by
building a Merkle hash tree over every sort order of a table and signing the
root.  To prove completeness of a range query the publisher must *expand* the
result with the tuples immediately beyond its left and right boundaries and
ship the sibling digests up to the root.

The paper criticises the scheme on five counts (Section 2.3); this
implementation exists so the benchmarks can quantify them:

1. one MHT per sort order (same as the proposed scheme, so not benchmarked),
2. the VO grows logarithmically with the *table* size (``bench_vo_scaling``),
3. projected-out attributes must still be shipped (``bench_precision_comparison``),
4. the boundary tuples are exposed in full, potentially violating row-level
   access control (``bench_precision_comparison``),
5. range queries on unsorted attributes are not supported (no equivalent of
   the multipoint machinery exists here).

Updates must recompute every digest on the leaf-to-root path and re-sign the
root (``bench_update_cost``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.encoding import encode_record_payload
from repro.crypto.hashing import HashFunction, default_hash
from repro.crypto.signature import SignatureScheme
from repro.db.records import Record
from repro.db.relation import Relation

__all__ = ["DevanbuProof", "DevanbuMHT", "DevanbuVerifier"]


@dataclass(frozen=True)
class DevanbuProof:
    """Verification object of the Devanbu scheme for one range query.

    Attributes
    ----------
    expanded_rows:
        The result tuples *plus* the boundary tuples just outside the range,
        each with every attribute (no projection is possible).
    sibling_digests:
        Digests of the maximal subtrees not overlapping the expanded range, in
        the deterministic order the verifier's recursion consumes them.
    root_signature:
        The owner's signature over the root digest.
    left_is_table_start, right_is_table_end:
        True when the expanded range abuts the corresponding end of the table
        (no boundary tuple exists on that side).
    """

    expanded_rows: Tuple[Dict[str, object], ...]
    sibling_digests: Tuple[bytes, ...]
    root_signature: int
    leaf_range: Tuple[int, int]
    table_size: int
    left_is_table_start: bool
    right_is_table_end: bool

    @property
    def digest_count(self) -> int:
        return len(self.sibling_digests)

    @property
    def signature_count(self) -> int:
        return 1

    @property
    def boundary_rows_exposed(self) -> int:
        """How many out-of-range tuples the user gets to see."""
        return (0 if self.left_is_table_start else 1) + (
            0 if self.right_is_table_end else 1
        )

    def size_bytes(self, digest_bytes: int, signature_bytes: int) -> int:
        return self.digest_count * digest_bytes + self.signature_count * signature_bytes


class DevanbuMHT:
    """Owner/publisher side of the Devanbu scheme for one sorted relation."""

    def __init__(
        self,
        relation: Relation,
        signature_scheme: SignatureScheme,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        self.relation = relation
        self.schema = relation.schema
        self.hash_function = hash_function or default_hash()
        self._signature_scheme = signature_scheme
        self.last_update_hashes = 0
        self.last_update_signatures = 0
        self._rebuild()

    # -- tree construction ------------------------------------------------------------

    def _leaf_digest(self, record: Record) -> bytes:
        payload = encode_record_payload(record.as_dict(), self.schema.attribute_names)
        return self.hash_function.digest(b"devanbu-leaf|" + payload)

    def _node_digest(self, left: bytes, right: bytes) -> bytes:
        return self.hash_function.digest(b"devanbu-node|" + left + right)

    def _rebuild(self) -> None:
        self._leaves = [self._leaf_digest(record) for record in self.relation]
        self.root = self._subtree_digest(0, len(self._leaves))
        self.root_signature = self._signature_scheme.sign(self.root)

    def _subtree_digest(self, start: int, stop: int) -> bytes:
        if stop - start == 0:
            return self.hash_function.digest(b"devanbu-empty")
        if stop - start == 1:
            return self._leaves[start]
        mid = (start + stop + 1) // 2
        return self._node_digest(
            self._subtree_digest(start, mid), self._subtree_digest(mid, stop)
        )

    @property
    def height(self) -> int:
        """Tree height (number of internal levels)."""
        size = max(1, len(self._leaves))
        height = 0
        while size > 1:
            size = (size + 1) // 2
            height += 1
        return height

    # -- query answering -------------------------------------------------------------------

    def answer_range(self, low: int, high: int) -> Tuple[List[Dict[str, object]], DevanbuProof]:
        """Answer ``low <= key <= high`` with the expanded result and its VO."""
        start, stop = self.relation.range_indices(low, high)
        expanded_start = max(0, start - 1)
        expanded_stop = min(len(self._leaves), stop + 1)
        rows = [
            self.relation[index].as_dict()
            for index in range(expanded_start, expanded_stop)
        ]
        siblings: List[bytes] = []
        self._collect_siblings(0, len(self._leaves), expanded_start, expanded_stop, siblings)
        proof = DevanbuProof(
            expanded_rows=tuple(rows),
            sibling_digests=tuple(siblings),
            root_signature=self.root_signature,
            leaf_range=(expanded_start, expanded_stop),
            table_size=len(self._leaves),
            left_is_table_start=start == 0,
            right_is_table_end=stop == len(self._leaves),
        )
        result_rows = [self.relation[index].as_dict() for index in range(start, stop)]
        return result_rows, proof

    def _collect_siblings(
        self, start: int, stop: int, lo: int, hi: int, out: List[bytes]
    ) -> None:
        """Digests of maximal subtrees outside ``[lo, hi)``, left to right."""
        if stop <= lo or start >= hi or start >= stop:
            if start < stop:
                out.append(self._subtree_digest(start, stop))
            return
        if stop - start == 1:
            return  # in-range leaf: the verifier recomputes it from the tuple
        mid = (start + stop + 1) // 2
        self._collect_siblings(start, mid, lo, hi, out)
        self._collect_siblings(mid, stop, lo, hi, out)

    # -- updates ----------------------------------------------------------------------------------

    def update_record(self, old: Record, new) -> Tuple[int, int]:
        """Replace a record; returns (digests recomputed, signatures recomputed).

        Every node on the leaf-to-root path must be re-hashed and the root
        re-signed — the locking hot-spot the paper's Section 6.3 points out.
        """
        self.relation.update(old, new)
        return self._account_rebuild()

    def insert_record(self, record) -> Tuple[int, int]:
        """Insert a record; the leaf-to-root path is re-hashed, the root re-signed."""
        self.relation.insert(record)
        return self._account_rebuild()

    def delete_record(self, record: Record) -> Tuple[int, int]:
        """Delete a record; same root-path cost as any other mutation."""
        self.relation.delete(record)
        return self._account_rebuild()

    def _account_rebuild(self) -> Tuple[int, int]:
        path_length = self.height + 1
        self._rebuild()
        self.last_update_hashes = path_length
        self.last_update_signatures = 1
        return path_length, 1


class DevanbuVerifier:
    """User-side verification for the Devanbu scheme."""

    def __init__(
        self,
        attribute_order: Sequence[str],
        key_attribute: str,
        public_key,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        self.attribute_order = list(attribute_order)
        self.key_attribute = key_attribute
        self.public_key = public_key
        self.hash_function = hash_function or default_hash()

    def verify_range(
        self, low: int, high: int, rows: Sequence[Dict[str, object]], proof: DevanbuProof
    ) -> bool:
        """Check an expanded range result against the signed root."""
        # The boundary flags are proof fields, so they must be pinned to the
        # leaf range before anything is reconstructed: claiming "the range
        # abuts the table edge" while the expansion starts (or ends) inside
        # the table would let a publisher silently truncate qualifying rows
        # and hand the verifier sibling digests for the hidden slice.
        if proof.left_is_table_start and proof.leaf_range[0] != 0:
            return False
        if proof.right_is_table_end and proof.leaf_range[1] != proof.table_size:
            return False
        expanded = list(proof.expanded_rows)
        inner = [
            row for row in expanded if low <= row[self.key_attribute] <= high
        ]
        if [row[self.key_attribute] for row in inner] != [
            row[self.key_attribute] for row in rows
        ]:
            return False
        if not proof.left_is_table_start:
            if expanded and expanded[0][self.key_attribute] >= low:
                return False
        if not proof.right_is_table_end:
            if expanded and expanded[-1][self.key_attribute] > high:
                pass  # expected: the right boundary tuple exceeds the range
            elif expanded:
                return False
        leaf_digests = [
            self.hash_function.digest(
                b"devanbu-leaf|" + encode_record_payload(row, self.attribute_order)
            )
            for row in expanded
        ]
        siblings = list(proof.sibling_digests)
        root = self._reconstruct(
            0, proof.table_size, proof.leaf_range[0], proof.leaf_range[1], leaf_digests, siblings
        )
        if siblings or leaf_digests:
            return False
        return self.public_key.verify(root, proof.root_signature)

    def _reconstruct(
        self,
        start: int,
        stop: int,
        lo: int,
        hi: int,
        leaf_digests: List[bytes],
        siblings: List[bytes],
    ) -> bytes:
        if stop <= lo or start >= hi or start >= stop:
            if start < stop:
                return siblings.pop(0)
            return self.hash_function.digest(b"devanbu-empty")
        if stop - start == 1:
            return leaf_digests.pop(0)
        mid = (start + stop + 1) // 2
        left = self._reconstruct(start, mid, lo, hi, leaf_digests, siblings)
        right = self._reconstruct(mid, stop, lo, hi, leaf_digests, siblings)
        return self.hash_function.digest(b"devanbu-node|" + left + right)
