"""Wire format for verification objects and publication metadata.

This package gives every proof artifact of the reproduction a **canonical,
versioned, length-prefixed binary encoding** (plus a JSON debug codec), so
that query answers and their verification objects can actually cross a
network or be persisted — the client/server separation the paper's data
publishing model (Figure 3) assumes.

* :func:`encode` / :func:`decode` — framed binary codec, strict validation
* :func:`to_json` / :func:`from_json` — human-readable debug mirror
* :func:`manifest_id` — 32-byte routing/commitment id of a relation manifest
* :class:`WireFormatError` — typed rejection of malformed bytes
"""

from repro.wire.codec import (
    WIRE_VERSION,
    decode,
    encode,
    frame_type,
    from_json,
    from_json_obj,
    manifest_id,
    peek_leading_fields,
    register_artifact,
    to_json,
    to_json_obj,
)
from repro.wire.errors import WireFormatError
from repro.wire.updates import (
    ManifestRotated,
    RecordDelta,
    UpdateRequest,
    UpdateResponse,
    manifest_signing_message,
    update_signing_message,
)

__all__ = [
    "WIRE_VERSION",
    "WireFormatError",
    "ManifestRotated",
    "RecordDelta",
    "UpdateRequest",
    "UpdateResponse",
    "decode",
    "encode",
    "frame_type",
    "from_json",
    "peek_leading_fields",
    "from_json_obj",
    "manifest_id",
    "manifest_signing_message",
    "register_artifact",
    "to_json",
    "to_json_obj",
    "update_signing_message",
]
