"""Wire artifacts of the live owner→publisher update pipeline.

The paper's Section 6.3 update scheme runs in-process
(:meth:`~repro.core.relational.SignedRelation.insert_record` and friends);
this module gives it a wire form so a *remote* owner can mutate a deployed
publisher:

=======================  ====================================================
``RecordDelta``           one insert / delete / update of a single record
``UpdateRequest``         a signed batch of deltas against one manifest id
``UpdateResponse``        the merged receipt plus the rotation it caused
``ManifestRotated``       the rotated manifest, authenticated by the owner key
``FreshnessAttestation``  a short-lived owner claim that a manifest is current
=======================  ====================================================

Authentication is by *owner signature*, never by transport identity: an
``UpdateRequest`` signs the (manifest id, sequence, deltas) triple under the
same key that signs the chain, a ``ManifestRotated`` signs the superseded
id plus the new manifest's canonical bytes, and a ``FreshnessAttestation``
signs the (manifest id, sequence, epoch, validity window) tuple.  All three
messages are domain separated (:data:`UPDATE_SIGNING_PREFIX` /
:data:`ROTATION_SIGNING_PREFIX` / :data:`ATTESTATION_SIGNING_PREFIX`) so
none can be replayed as a chain signature or as each other.

Replay protection falls out of manifest rotation: the signed manifest id
names the exact data version a delta batch applies to, and applying the batch
rotates that id — so a captured ``UpdateRequest`` re-sent later addresses a
superseded id and is rejected with a typed error, and a captured
``ManifestRotated`` re-presented later fails the client's strictly-increasing
sequence check.

``FreshnessAttestation`` closes the stale-*snapshot* replay in the same
style: chain signatures never bind the serving-time manifest ``sequence``,
so a pre-rotation answer re-served under the current id used to verify.
The attestation binds (manifest id, sequence, epoch) under the owner key
with a bounded validity window; an answer stamped with an attestation for a
superseded id/sequence — or none at all — fails the client's freshness
check with a typed ``StaleAnswerError`` instead of passing silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.core.relational import RelationManifest, UpdateReceipt
from repro.wire import codec
from repro.wire.codec import encode
from repro.wire.errors import WireFormatError

__all__ = [
    "DELTA_KINDS",
    "MANIFEST_ID_SIZE",
    "FreshnessAttestation",
    "RecordDelta",
    "UpdateRequest",
    "UpdateResponse",
    "ManifestRotated",
    "attestation_signing_message",
    "update_signing_message",
    "manifest_signing_message",
]

#: Width of a manifest id (SHA-256 of the manifest's canonical wire bytes).
MANIFEST_ID_SIZE = 32

#: The three mutation kinds of the Section 6.3 update scheme.
DELTA_KINDS = ("insert", "delete", "update")

#: Domain-separation prefixes: a signature over an update batch can never be
#: mistaken for a rotation signature (or for a formula-(1) chain signature,
#: which signs raw digest concatenations of a different shape).
UPDATE_SIGNING_PREFIX = b"PV2-update|"
ROTATION_SIGNING_PREFIX = b"PV2-rotation|"
ATTESTATION_SIGNING_PREFIX = b"PV4-freshness|"


@dataclass(frozen=True)
class RecordDelta:
    """One mutation of a single record.

    ``values`` carries the full attribute map of the record being inserted
    (``insert``), deleted (``delete``; the publisher locates the exact record
    by key *and* payload fingerprint), or the replacement record
    (``update``).  ``old_values`` names the record being replaced and is
    present exactly for ``update`` deltas.
    """

    kind: str
    values: Mapping[str, object]
    old_values: Optional[Mapping[str, object]] = None


@dataclass(frozen=True)
class UpdateRequest:
    """A signed batch of deltas against one exact data version.

    ``manifest_id`` pins the manifest (and therefore the ``sequence``) the
    batch applies to; ``owner_signature`` signs the whole triple via
    :func:`update_signing_message`.  The publisher verifies the signature
    under the hosted relation's public key before touching anything.
    """

    manifest_id: bytes
    sequence: int
    deltas: Tuple[RecordDelta, ...]
    owner_signature: int


@dataclass(frozen=True)
class ManifestRotated:
    """Notification that a relation's manifest rotated.

    ``owner_signature`` signs :func:`manifest_signing_message` over
    ``previous_id`` (empty at genesis) and the new manifest's canonical
    bytes, so a client holding any older manifest of the same relation can
    authenticate the rotation with the public key it already pinned.
    """

    manifest: RelationManifest
    previous_id: bytes
    owner_signature: int

    @property
    def sequence(self) -> int:
        return self.manifest.sequence


@dataclass(frozen=True)
class UpdateResponse:
    """What the publisher answers a successful :class:`UpdateRequest` with."""

    receipt: UpdateReceipt
    rotation: ManifestRotated


@dataclass(frozen=True)
class FreshnessAttestation:
    """A short-lived owner claim that one exact manifest is the current one.

    ``manifest_id`` and ``sequence`` pin the data version being attested;
    ``epoch`` is a per-relation refresh counter so repeated attestations of
    the same sequence are totally ordered (freshness advances lexicographically
    over ``(sequence, epoch)``); ``issued_at_ms`` / ``not_after_ms`` bound the
    validity window in integer unix milliseconds.  ``owner_signature`` signs
    :func:`attestation_signing_message` under the relation's owner key, with
    its own domain prefix so the signature can never double as an update,
    rotation, or chain signature.

    When a manifest rotates, the publisher re-binds the in-force attestation
    to the new (id, sequence) pair *without* extending the owner-granted
    window: ``epoch``, ``issued_at_ms`` and ``not_after_ms`` are carried over
    verbatim, so a stalled owner still goes visibly stale on schedule.
    """

    manifest_id: bytes
    sequence: int
    epoch: int
    issued_at_ms: int
    not_after_ms: int
    owner_signature: int


def update_signing_message(
    manifest_id: bytes, sequence: int, deltas: Tuple[RecordDelta, ...]
) -> bytes:
    """The canonical byte string an :class:`UpdateRequest` signature covers.

    Built by encoding the request itself with a zeroed signature slot, so the
    signed bytes are exactly the strict wire form of everything else in the
    message — there is no second, subtly different serialisation to drift.
    """
    unsigned = UpdateRequest(
        manifest_id=bytes(manifest_id),
        sequence=sequence,
        deltas=tuple(deltas),
        owner_signature=0,
    )
    return UPDATE_SIGNING_PREFIX + encode(unsigned)


def attestation_signing_message(
    manifest_id: bytes,
    sequence: int,
    epoch: int,
    issued_at_ms: int,
    not_after_ms: int,
) -> bytes:
    """The canonical byte string a :class:`FreshnessAttestation` covers.

    Like :func:`update_signing_message`, built by encoding the artifact with
    a zeroed signature slot: the signed bytes are the strict wire form of the
    whole claim, so there is no second serialisation to drift.
    """
    unsigned = FreshnessAttestation(
        manifest_id=bytes(manifest_id),
        sequence=sequence,
        epoch=epoch,
        issued_at_ms=issued_at_ms,
        not_after_ms=not_after_ms,
        owner_signature=0,
    )
    return ATTESTATION_SIGNING_PREFIX + encode(unsigned)


def manifest_signing_message(
    manifest: RelationManifest, previous_id: bytes
) -> bytes:
    """The canonical byte string a :class:`ManifestRotated` signature covers.

    Covers the superseded id as well as the new manifest, so a tampered
    ``previous_id`` breaks the signature instead of slipping through as
    unauthenticated metadata.
    """
    previous = bytes(previous_id)
    return (
        ROTATION_SIGNING_PREFIX
        + len(previous).to_bytes(4, "big")
        + previous
        + encode(manifest)
    )


# -- validation hooks ---------------------------------------------------------


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise WireFormatError(message, reason="invalid-artifact")


def _post_delta(delta: RecordDelta) -> None:
    _check(bool(delta.values), "a record delta needs at least one attribute value")
    if delta.kind == "update":
        _check(
            delta.old_values is not None,
            "an update delta must name the record it replaces",
        )
    else:
        _check(
            delta.old_values is None,
            f"an {delta.kind} delta must not carry old values",
        )


def _post_update_request(request: UpdateRequest) -> None:
    _check(request.sequence >= 0, "negative update sequence")
    _check(bool(request.deltas), "an update request needs at least one delta")
    _check(request.owner_signature >= 1, "owner signature must be positive")


def _post_rotation(rotation: ManifestRotated) -> None:
    _check(
        len(rotation.previous_id) in (0, MANIFEST_ID_SIZE),
        "previous manifest id must be empty (genesis) or 32 bytes",
    )
    _check(rotation.owner_signature >= 1, "owner signature must be positive")


def _post_attestation(attestation: FreshnessAttestation) -> None:
    _check(attestation.sequence >= 0, "negative attestation sequence")
    _check(attestation.epoch >= 1, "attestation epoch must be positive")
    _check(attestation.issued_at_ms >= 0, "negative attestation issue time")
    _check(
        attestation.not_after_ms >= attestation.issued_at_ms,
        "attestation expires before it was issued",
    )
    _check(attestation.owner_signature >= 1, "owner signature must be positive")


_ROW = codec.MapField(codec.STR, codec.SCALAR)

codec.register_artifact(
    0x30,
    RecordDelta,
    [
        ("kind", codec.EnumStrField(*DELTA_KINDS)),
        ("values", _ROW),
        ("old_values", codec.OptionalField(_ROW)),
    ],
    post=_post_delta,
)

codec.register_artifact(
    0x31,
    UpdateRequest,
    [
        ("manifest_id", codec.FixedBytesField(MANIFEST_ID_SIZE)),
        ("sequence", codec.INT),
        ("deltas", codec.TupleField(codec.NestedField(RecordDelta))),
        ("owner_signature", codec.INT),
    ],
    post=_post_update_request,
)

codec.register_artifact(
    0x32,
    ManifestRotated,
    [
        ("manifest", codec.NestedField(RelationManifest)),
        ("previous_id", codec.BYTES),
        ("owner_signature", codec.INT),
    ],
    post=_post_rotation,
)

codec.register_artifact(
    0x33,
    UpdateResponse,
    [
        ("receipt", codec.NestedField(UpdateReceipt)),
        ("rotation", codec.NestedField(ManifestRotated)),
    ],
)

codec.register_artifact(
    0x34,
    FreshnessAttestation,
    [
        ("manifest_id", codec.FixedBytesField(MANIFEST_ID_SIZE)),
        ("sequence", codec.INT),
        ("epoch", codec.INT),
        ("issued_at_ms", codec.INT),
        ("not_after_ms", codec.INT),
        ("owner_signature", codec.INT),
    ],
    post=_post_attestation,
)
