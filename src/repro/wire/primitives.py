"""Low-level byte readers and writers for the wire format.

Every multi-byte quantity is big-endian; every variable-length field is
length-prefixed with an unsigned 32-bit count.  The reader is *strict*: it
validates bounds before every read, rejects non-canonical primitive encodings
(non-minimal integers, boolean bytes other than 0/1, invalid UTF-8) and raises
:class:`~repro.wire.errors.WireFormatError` with a machine-readable reason, so
a malformed or tampered byte string can never silently decode.

The reader is also the decode **hot path** (a verification object is a few
thousand fields), so it is written as a zero-copy cursor: one buffer, one
advancing offset, no per-field slicing of the remaining input, and error
context strings are only materialised on the failure branch.  The buffer may
be a ``memoryview`` (e.g. a frame still sitting in a server's receive
buffer): construction copies nothing, and only the bytes of the fields a
caller actually reads are ever materialised — which is what lets the service
layer route and stamp a frame by peeking at its envelope without decoding
the payload.
"""

from __future__ import annotations

import struct
from functools import lru_cache
from typing import List, Optional

from repro.crypto.encoding import (
    Encodable,
    decode_sign_magnitude,
    decode_value,
    encode_value,
)
from repro.wire.errors import WireFormatError

__all__ = ["WireWriter", "WireReader"]

#: Upper bound on any single length prefix (also the service frame cap).
MAX_FIELD_BYTES = 64 * 1024 * 1024

#: One compiled big-endian u32, shared by every prefix read: a single C-level
#: ``unpack_from`` replaces the slice + ``int.from_bytes`` pair on the hottest
#: line of the decoder.
_U32 = struct.Struct(">I").unpack_from


@lru_cache(maxsize=128)
def _run_struct(length: int) -> struct.Struct:
    """The compiled ``(u32 prefix, length-byte payload)`` item layout.

    A homogeneous run of length-prefixed fields (digest tuples, signature
    tuples) is a fixed-stride byte array; one :meth:`struct.Struct.iter_unpack`
    over the whole window replaces a Python-level loop of prefix reads and
    slices.  Cached per payload length — real traffic uses a handful (32-byte
    digests, modulus-sized signatures).
    """
    return struct.Struct(f">I{length}s")

#: Decoded spellings of short wire strings (attribute/relation names repeat
#: on every row of every answer).  Fills up to the cap and then stops
#: growing, so adversarial unique strings cannot balloon it.
_SHORT_STR_MEMO: dict = {}
_SHORT_STR_MEMO_MAX = 4096

#: Sentinel for "the fused scalar fast path did not apply".
_MISSING = object()


class WireWriter:
    """Accumulates canonical wire bytes."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    # -- fixed-width primitives ---------------------------------------------

    def u8(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise ValueError(f"u8 out of range: {value}")
        self._parts.append(bytes((value,)))

    def u32(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError(f"u32 out of range: {value}")
        self._parts.append(value.to_bytes(4, "big"))

    def bool_(self, value: bool) -> None:
        self.u8(1 if value else 0)

    # -- length-prefixed primitives -----------------------------------------

    def bytes_(self, value: bytes) -> None:
        value = bytes(value)
        self.u32(len(value))
        self._parts.append(value)

    def fixed_bytes(self, value: bytes, size: int) -> None:
        """Exactly ``size`` raw bytes, no length prefix.

        For fields whose length is part of the format (manifest ids, digests):
        the wire carries no redundant length, and a wrong-sized value is a
        programming error caught at encode time.
        """
        value = bytes(value)
        if len(value) != size:
            raise ValueError(
                f"fixed-width field needs exactly {size} bytes, got {len(value)}"
            )
        self._parts.append(value)

    def str_(self, value: str) -> None:
        self.bytes_(value.encode("utf-8"))

    def int_(self, value: int) -> None:
        """Arbitrary-precision signed integer: sign byte + minimal magnitude."""
        sign = b"\x01" if value < 0 else b"\x00"
        magnitude = abs(value)
        length = max(1, (magnitude.bit_length() + 7) // 8)
        self.bytes_(sign + magnitude.to_bytes(length, "big"))

    def scalar(self, value: Encodable) -> None:
        """A typed attribute value, via the canonical crypto-layer encoding."""
        self.bytes_(encode_value(value))


class WireReader:
    """Strict, bounds-checked, zero-copy cursor over a wire byte string.

    Accepts ``bytes`` as well as ``bytearray``/``memoryview`` buffers; the
    latter are wrapped in a :class:`memoryview` so nothing is copied at
    construction — per-field ``bytes`` values are materialised only for the
    fields actually read.
    """

    __slots__ = ("_data", "_offset", "_end", "_is_bytes")

    def __init__(self, data) -> None:
        if type(data) is bytes:
            self._is_bytes = True
        else:
            data = memoryview(data)
            self._is_bytes = False
        self._data = data
        self._offset = 0
        self._end = len(data)

    @property
    def remaining(self) -> int:
        return self._end - self._offset

    def _fail_short(self, count: int, what) -> None:
        raise WireFormatError(
            f"truncated input: need {count} bytes for {what or 'a field'}, "
            f"have {self._end - self._offset}",
            reason="truncated",
        )

    def _take(self, count: int, what=None) -> bytes:
        offset = self._offset
        stop = offset + count
        if count < 0 or stop > self._end:
            self._fail_short(count, what)
        self._offset = stop
        chunk = self._data[offset:stop]
        return chunk if self._is_bytes else bytes(chunk)

    def raw(self, count: int, what="raw bytes") -> bytes:
        """Read exactly ``count`` unprefixed bytes (framing fields)."""
        return self._take(count, what)

    def expect_end(self) -> None:
        if self._end - self._offset:
            raise WireFormatError(
                f"{self._end - self._offset} trailing bytes after a complete artifact",
                reason="trailing-bytes",
            )

    # -- fixed-width primitives ---------------------------------------------

    def u8(self, what="u8") -> int:
        offset = self._offset
        if offset >= self._end:
            self._fail_short(1, what)
        self._offset = offset + 1
        return self._data[offset]

    def u32(self, what="u32") -> int:
        offset = self._offset
        stop = offset + 4
        if stop > self._end:
            self._fail_short(4, what)
        self._offset = stop
        return _U32(self._data, offset)[0]

    def bool_(self, what="bool") -> bool:
        offset = self._offset
        if offset >= self._end:
            self._fail_short(1, what)
        self._offset = offset + 1
        value = self._data[offset]
        if value > 1:
            raise WireFormatError(
                f"boolean byte for {what} must be 0 or 1, got {value}",
                reason="bad-bool",
            )
        return value == 1

    # -- length-prefixed primitives -----------------------------------------

    def bytes_(self, what="bytes") -> bytes:
        offset = self._offset
        stop = offset + 4
        end = self._end
        if stop > end:
            self._fail_short(4, what)
        length = _U32(self._data, offset)[0]
        if length > MAX_FIELD_BYTES:
            raise WireFormatError(
                f"length prefix of {what} exceeds the {MAX_FIELD_BYTES}-byte cap",
                reason="oversized-field",
            )
        payload_stop = stop + length
        if payload_stop > end:
            self._offset = stop
            self._fail_short(length, what)
        self._offset = payload_stop
        chunk = self._data[stop:payload_stop]
        return chunk if self._is_bytes else bytes(chunk)

    def fixed_bytes(self, size: int, what="fixed bytes") -> bytes:
        """Exactly ``size`` raw bytes (the dual of :meth:`WireWriter.fixed_bytes`)."""
        return self._take(size, what)

    def str_(self, what="string") -> str:
        raw = self.bytes_(what)
        # Short strings on the wire are overwhelmingly repeated identifiers
        # (attribute names, relation names): decode each spelling once.
        if len(raw) <= 32:
            cached = _SHORT_STR_MEMO.get(raw)
            if cached is not None:
                return cached
        try:
            value = str(raw, "utf-8")
        except UnicodeDecodeError as error:
            raise WireFormatError(
                f"invalid UTF-8 in {what}: {error}", reason="bad-utf8"
            ) from None
        if len(raw) <= 32 and len(_SHORT_STR_MEMO) < _SHORT_STR_MEMO_MAX:
            _SHORT_STR_MEMO[raw] = value
        return value

    def int_(self, what="int") -> int:
        # Inlined sign+magnitude decode (the strict dual of WireWriter.int_);
        # semantics identical to crypto.encoding.decode_sign_magnitude.
        raw = self.bytes_(what)
        size = len(raw)
        if size < 2:
            raise WireFormatError(
                f"malformed integer {what}: integer needs a sign byte and a "
                "magnitude",
                reason="bad-int",
            )
        sign = raw[0]
        if sign > 1 or (size > 2 and raw[1] == 0):
            try:
                decode_sign_magnitude(raw)
            except ValueError as error:
                raise WireFormatError(
                    f"malformed integer {what}: {error}", reason="bad-int"
                ) from None
        value = int.from_bytes(raw[1:], "big")
        if sign:
            if value == 0:
                raise WireFormatError(
                    f"malformed integer {what}: negative zero is not a "
                    "canonical integer encoding",
                    reason="bad-int",
                )
            return -value
        return value

    def scalar(self, what="scalar") -> Encodable:
        # Inline fast paths for the common tags (int / str / bytes); every
        # rejected or unusual shape falls through to the strict shared
        # decoder so the accepted language is exactly decode_value's.
        offset = self._offset
        stop = offset + 4
        end = self._end
        if stop > end:
            self._fail_short(4, what)
        data = self._data
        length = _U32(data, offset)[0]
        payload_stop = stop + length
        if length > MAX_FIELD_BYTES or payload_stop > end:
            raw = self.bytes_(what)  # raises the canonical typed error
            raise WireFormatError(  # pragma: no cover - bytes_ always raises
                f"malformed scalar {what}", reason="bad-scalar"
            )
        self._offset = payload_stop
        body = stop + 1
        if length:
            tag = data[stop]
            if tag == 73:  # 'I': sign byte + minimal big-endian magnitude
                size = payload_stop - body
                if size >= 2 and data[body] <= 1 and not (size > 2 and data[body + 1] == 0):
                    value = int.from_bytes(data[body + 1 : payload_stop], "big")
                    sign = data[body]
                    if not sign:
                        return value
                    if value:
                        return -value
            elif tag == 83:  # 'S': UTF-8 text
                try:
                    return str(data[body:payload_stop], "utf-8")
                except UnicodeDecodeError:
                    pass
            elif tag == 89:  # 'Y': raw bytes
                chunk = data[body:payload_stop]
                return chunk if self._is_bytes else bytes(chunk)
        raw = data[stop:payload_stop]
        if not self._is_bytes:
            raw = bytes(raw)
        try:
            return decode_value(raw)
        except ValueError as error:
            raise WireFormatError(
                f"malformed scalar {what}: {error}", reason="bad-scalar"
            ) from None

    # -- fused composite readers --------------------------------------------
    #
    # The wire hot path is dominated by Python call overhead: a result row is
    # a map of (string key, scalar value) pairs, and a proof entry carries
    # maps of (string key, digest) pairs — at three to five reader calls per
    # pair, a large answer costs thousands of calls.  The generated artifact
    # decoders therefore emit these two map shapes (and optional-bytes
    # fields) as single calls into fused loops that inline the primitive
    # reads over local variables.  The accepted byte language is *identical*
    # to the per-field primitives' — same bounds checks, same canonical-form
    # rejections, same error reasons — and the codec tests (round-trip,
    # golden vectors, byte-flip tampering) hold both paths to it.
    #
    # To keep ONE spelling of that language, the two map readers are
    # generated below (``_generate_fused_map_readers``) from shared text
    # blocks: the key block and each value block exist exactly once.

    def optional_bytes(self, what="optional bytes") -> Optional[bytes]:
        """A presence byte followed (if 1) by length-prefixed bytes, fused."""
        data = self._data
        end = self._end
        offset = self._offset
        if offset >= end:
            self._fail_short(1, what)
        flag = data[offset]
        offset += 1
        if flag == 0:
            self._offset = offset
            return None
        if flag != 1:
            self._offset = offset
            raise WireFormatError(
                f"boolean byte for presence of {what} must be 0 or 1, got {flag}",
                reason="bad-bool",
            )
        stop = offset + 4
        if stop > end:
            self._offset = offset
            self._fail_short(4, what)
        size = _U32(data, offset)[0]
        payload_stop = stop + size
        if size > MAX_FIELD_BYTES or payload_stop > end:
            self._offset = offset
            self.bytes_(what)  # raises the canonical typed error
        self._offset = payload_stop
        chunk = data[stop:payload_stop]
        return chunk if self._is_bytes else bytes(chunk)

    def count(self, what="count") -> int:
        """A u32 element count, sanity-bounded by the remaining bytes.

        Every encoded element occupies at least one byte, so a count larger
        than the remaining input is necessarily garbage — rejecting it here
        keeps a flipped count byte from triggering a huge allocation.
        """
        offset = self._offset
        stop = offset + 4
        if stop > self._end:
            self._fail_short(4, what)
        self._offset = stop
        value = _U32(self._data, offset)[0]
        if value > self._end - stop:
            raise WireFormatError(
                f"{what} of {value} exceeds the "
                f"{self._end - stop} remaining bytes",
                reason="bad-count",
            )
        return value

    def optional(self, what: Optional[str] = "optional") -> bool:
        """Read a presence byte; True means the value follows."""
        offset = self._offset
        if offset >= self._end:
            self._fail_short(1, what)
        self._offset = offset + 1
        value = self._data[offset]
        if value > 1:
            raise WireFormatError(
                f"boolean byte for presence of {what} must be 0 or 1, got {value}",
                reason="bad-bool",
            )
        return value == 1

    # -- vectorized run decoders ---------------------------------------------
    #
    # A tuple of digests or signatures is, on real traffic, a *homogeneous*
    # run: every element has the same length prefix (32-byte digests,
    # modulus-sized signature magnitudes), so the whole run is a fixed-stride
    # byte array.  These readers batch-decode such runs with one compiled
    # ``struct`` iter_unpack over the window instead of a Python-level
    # prefix-read-and-slice per element.  Any deviation from the homogeneous
    # shape — mixed lengths, a non-canonical integer, a truncated tail —
    # abandons the batch *without consuming anything* and re-decodes the run
    # through the strict per-element primitives, so the accepted byte
    # language and every error reason stay exactly canonical.

    def bytes_run(self, count: int, what="bytes") -> List[bytes]:
        """Decode ``count`` consecutive length-prefixed byte fields."""
        data = self._data
        offset = self._offset
        if count and offset + 4 <= self._end:
            first = _U32(data, offset)[0]
            stop = offset + (4 + first) * count
            if first <= MAX_FIELD_BYTES and stop <= self._end:
                pairs = list(_run_struct(first).iter_unpack(data[offset:stop]))
                if all(pair[0] == first for pair in pairs):
                    self._offset = stop
                    return [pair[1] for pair in pairs]
        return [self.bytes_(what) for _ in range(count)]

    def int_run(self, count: int, what="int") -> List[int]:
        """Decode ``count`` consecutive sign+magnitude integer fields.

        The batch path handles the overwhelmingly common shape — equal-width
        non-negative canonical integers (signature tuples under one modulus).
        Anything else (negative values, mixed widths, non-canonical bytes)
        falls back to the strict per-element decoder.
        """
        data = self._data
        offset = self._offset
        if count and offset + 4 <= self._end:
            first = _U32(data, offset)[0]
            stop = offset + (4 + first) * count
            if 2 <= first <= MAX_FIELD_BYTES and stop <= self._end:
                pairs = list(_run_struct(first).iter_unpack(data[offset:stop]))
                if all(
                    pair[0] == first
                    and pair[1][0] == 0
                    and (first == 2 or pair[1][1] != 0)
                    for pair in pairs
                ):
                    self._offset = stop
                    from_bytes = int.from_bytes
                    return [from_bytes(pair[1][1:], "big") for pair in pairs]
        return [self.int_(what) for _ in range(count)]


# -- fused map reader generation ---------------------------------------------
#
# One spelling per piece of the accepted language; both fused map readers are
# composed from these blocks and compiled once at import.  Every block reads
# over the local variables bound in _FUSED_MAP_TEMPLATE and must leave
# ``offset`` at the first byte after what it consumed.

#: Length-prefixed UTF-8 key with the short-string memo and the
#: strictly-increasing canonical-order check.
_FUSED_KEY_BLOCK = """\
stop = offset + 4
if stop > end:
    self._offset = offset
    self._fail_short(4, what)
size = _U32(data, offset)[0]
key_stop = stop + size
if size > MAX_FIELD_BYTES or key_stop > end:
    self._offset = offset
    self.str_(what)  # raises the canonical typed error
raw = data[stop:key_stop]
if not is_bytes:
    raw = bytes(raw)
key = memo.get(raw) if size <= 32 else None
if key is None:
    try:
        key = str(raw, "utf-8")
    except UnicodeDecodeError as error:
        self._offset = key_stop
        raise WireFormatError(
            f"invalid UTF-8 in {what}: {error}", reason="bad-utf8"
        ) from None
    if size <= 32 and len(memo) < _SHORT_STR_MEMO_MAX:
        memo[raw] = key
if previous is not None and not key > previous:
    self._offset = key_stop
    raise WireFormatError(
        f"map keys of {what} are not strictly increasing",
        reason="unsorted-map",
    )
previous = key
offset = key_stop
"""

#: Length prefix of a value, bounds-checked (leaves ``stop``/``value_stop``).
_FUSED_VALUE_PREFIX_BLOCK = """\
stop = offset + 4
if stop > end:
    self._offset = offset
    self._fail_short(4, what)
size = _U32(data, offset)[0]
value_stop = stop + size
if size > MAX_FIELD_BYTES or value_stop > end:
    self._offset = offset
    self.bytes_(what)  # raises the canonical typed error
"""

#: A plain bytes value.
_FUSED_BYTES_VALUE_BLOCK = (
    _FUSED_VALUE_PREFIX_BLOCK
    + """\
chunk = data[stop:value_stop]
result[key] = chunk if is_bytes else bytes(chunk)
offset = value_stop
"""
)

#: A scalar value: inline fast paths for the int / str / bytes tags, the
#: strict shared decoder (decode_value) for everything else.
_FUSED_SCALAR_VALUE_BLOCK = (
    _FUSED_VALUE_PREFIX_BLOCK
    + """\
value = _MISSING
if size:
    tag = data[stop]
    body = stop + 1
    if tag == 73:  # 'I': sign byte + minimal big-endian magnitude
        width = value_stop - body
        if width >= 2 and data[body] <= 1 and not (width > 2 and data[body + 1] == 0):
            magnitude = int.from_bytes(data[body + 1 : value_stop], "big")
            if not data[body]:
                value = magnitude
            elif magnitude:
                value = -magnitude
    elif tag == 83:  # 'S': UTF-8 text
        try:
            value = str(data[body:value_stop], "utf-8")
        except UnicodeDecodeError:
            pass
    elif tag == 89:  # 'Y': raw bytes
        chunk = data[body:value_stop]
        value = chunk if is_bytes else bytes(chunk)
if value is _MISSING:
    raw = data[stop:value_stop]
    if not is_bytes:
        raw = bytes(raw)
    try:
        value = decode_value(raw)
    except ValueError as error:
        self._offset = value_stop
        raise WireFormatError(
            f"malformed scalar {what}: {error}", reason="bad-scalar"
        ) from None
result[key] = value
offset = value_stop
"""
)

_FUSED_MAP_TEMPLATE = '''\
def {name}(self, what="map"):
    """A strictly-increasing-key map, fused ({doc}); generated, one spelling."""
    data = self._data
    end = self._end
    is_bytes = self._is_bytes
    offset = self._offset
    stop = offset + 4
    if stop > end:
        self._fail_short(4, what)
    length = _U32(data, offset)[0]
    if length > end - stop:
        self._offset = stop
        raise WireFormatError(
            "{{what}} of {{length}} exceeds the {{remaining}} remaining bytes".format(
                what=what, length=length, remaining=end - stop
            ),
            reason="bad-count",
        )
    offset = stop
    memo = _SHORT_STR_MEMO
    result = {{}}
    previous = None
    for _ in range(length):
{key_block}
{value_block}
    self._offset = offset
    return result
'''


def _indent(block: str, spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(pad + line if line else line for line in block.splitlines())


def _generate_fused_map_readers() -> None:
    namespace = {
        "WireFormatError": WireFormatError,
        "MAX_FIELD_BYTES": MAX_FIELD_BYTES,
        "_SHORT_STR_MEMO": _SHORT_STR_MEMO,
        "_SHORT_STR_MEMO_MAX": _SHORT_STR_MEMO_MAX,
        "_MISSING": _MISSING,
        "_U32": _U32,
        "decode_value": decode_value,
    }
    for name, doc, value_block in (
        ("map_str_bytes", "str -> bytes", _FUSED_BYTES_VALUE_BLOCK),
        ("map_str_scalar", "str -> scalar", _FUSED_SCALAR_VALUE_BLOCK),
    ):
        source = _FUSED_MAP_TEMPLATE.format(
            name=name,
            doc=doc,
            key_block=_indent(_FUSED_KEY_BLOCK, 8),
            value_block=_indent(value_block, 8),
        )
        exec(  # noqa: S102 - compile-time composition of the blocks above
            compile(source, f"<fused wire reader {name}>", "exec"), namespace
        )
        setattr(WireReader, name, namespace[name])


_generate_fused_map_readers()
