"""Low-level byte readers and writers for the wire format.

Every multi-byte quantity is big-endian; every variable-length field is
length-prefixed with an unsigned 32-bit count.  The reader is *strict*: it
validates bounds before every read, rejects non-canonical primitive encodings
(non-minimal integers, boolean bytes other than 0/1, invalid UTF-8) and raises
:class:`~repro.wire.errors.WireFormatError` with a machine-readable reason, so
a malformed or tampered byte string can never silently decode.
"""

from __future__ import annotations

from typing import List, Optional

from repro.crypto.encoding import (
    Encodable,
    decode_sign_magnitude,
    decode_value,
    encode_value,
)
from repro.wire.errors import WireFormatError

__all__ = ["WireWriter", "WireReader"]

#: Upper bound on any single length prefix (also the service frame cap).
MAX_FIELD_BYTES = 64 * 1024 * 1024


class WireWriter:
    """Accumulates canonical wire bytes."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    # -- fixed-width primitives ---------------------------------------------

    def u8(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise ValueError(f"u8 out of range: {value}")
        self._parts.append(bytes((value,)))

    def u32(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError(f"u32 out of range: {value}")
        self._parts.append(value.to_bytes(4, "big"))

    def bool_(self, value: bool) -> None:
        self.u8(1 if value else 0)

    # -- length-prefixed primitives -----------------------------------------

    def bytes_(self, value: bytes) -> None:
        value = bytes(value)
        self.u32(len(value))
        self._parts.append(value)

    def fixed_bytes(self, value: bytes, size: int) -> None:
        """Exactly ``size`` raw bytes, no length prefix.

        For fields whose length is part of the format (manifest ids, digests):
        the wire carries no redundant length, and a wrong-sized value is a
        programming error caught at encode time.
        """
        value = bytes(value)
        if len(value) != size:
            raise ValueError(
                f"fixed-width field needs exactly {size} bytes, got {len(value)}"
            )
        self._parts.append(value)

    def str_(self, value: str) -> None:
        self.bytes_(value.encode("utf-8"))

    def int_(self, value: int) -> None:
        """Arbitrary-precision signed integer: sign byte + minimal magnitude."""
        sign = b"\x01" if value < 0 else b"\x00"
        magnitude = abs(value)
        length = max(1, (magnitude.bit_length() + 7) // 8)
        self.bytes_(sign + magnitude.to_bytes(length, "big"))

    def scalar(self, value: Encodable) -> None:
        """A typed attribute value, via the canonical crypto-layer encoding."""
        self.bytes_(encode_value(value))


class WireReader:
    """Strict, bounds-checked cursor over a wire byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._offset = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def _take(self, count: int, what: str) -> bytes:
        if count < 0 or count > self.remaining:
            raise WireFormatError(
                f"truncated input: need {count} bytes for {what}, "
                f"have {self.remaining}",
                reason="truncated",
            )
        chunk = self._data[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def raw(self, count: int, what: str = "raw bytes") -> bytes:
        """Read exactly ``count`` unprefixed bytes (framing fields)."""
        return self._take(count, what)

    def expect_end(self) -> None:
        if self.remaining:
            raise WireFormatError(
                f"{self.remaining} trailing bytes after a complete artifact",
                reason="trailing-bytes",
            )

    # -- fixed-width primitives ---------------------------------------------

    def u8(self, what: str = "u8") -> int:
        return self._take(1, what)[0]

    def u32(self, what: str = "u32") -> int:
        return int.from_bytes(self._take(4, what), "big")

    def bool_(self, what: str = "bool") -> bool:
        value = self.u8(what)
        if value not in (0, 1):
            raise WireFormatError(
                f"boolean byte for {what} must be 0 or 1, got {value}",
                reason="bad-bool",
            )
        return value == 1

    # -- length-prefixed primitives -----------------------------------------

    def bytes_(self, what: str = "bytes") -> bytes:
        length = self.u32(f"length of {what}")
        if length > MAX_FIELD_BYTES:
            raise WireFormatError(
                f"length prefix of {what} exceeds the {MAX_FIELD_BYTES}-byte cap",
                reason="oversized-field",
            )
        return self._take(length, what)

    def fixed_bytes(self, size: int, what: str = "fixed bytes") -> bytes:
        """Exactly ``size`` raw bytes (the dual of :meth:`WireWriter.fixed_bytes`)."""
        return self._take(size, what)

    def str_(self, what: str = "string") -> str:
        raw = self.bytes_(what)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireFormatError(
                f"invalid UTF-8 in {what}: {error}", reason="bad-utf8"
            ) from None

    def int_(self, what: str = "int") -> int:
        raw = self.bytes_(what)
        try:
            return decode_sign_magnitude(raw)
        except ValueError as error:
            raise WireFormatError(
                f"malformed integer {what}: {error}", reason="bad-int"
            ) from None

    def scalar(self, what: str = "scalar") -> Encodable:
        raw = self.bytes_(what)
        try:
            return decode_value(raw)
        except ValueError as error:
            raise WireFormatError(
                f"malformed scalar {what}: {error}", reason="bad-scalar"
            ) from None

    def count(self, what: str = "count") -> int:
        """A u32 element count, sanity-bounded by the remaining bytes.

        Every encoded element occupies at least one byte, so a count larger
        than the remaining input is necessarily garbage — rejecting it here
        keeps a flipped count byte from triggering a huge allocation.
        """
        value = self.u32(what)
        if value > self.remaining:
            raise WireFormatError(
                f"{what} of {value} exceeds the {self.remaining} remaining bytes",
                reason="bad-count",
            )
        return value

    def optional(self, what: str = "optional") -> bool:
        """Read a presence byte; True means the value follows."""
        return self.bool_(f"presence of {what}")
