"""Canonical wire codec for every proof artifact the publisher ships.

Framing
-------

Every top-level artifact is encoded as::

    magic "PV" (2 bytes) | version (1 byte, currently 0x03) | type tag (1 byte) | body

Bodies are built from the strict primitives of
:mod:`repro.wire.primitives`: big-endian fixed-width integers, u32
length-prefixed byte strings, sign+magnitude arbitrary-precision integers and
the canonical scalar encoding shared with the hashing layer.  Mappings are
serialised with strictly increasing keys, optionals carry an explicit presence
byte, and nested artifacts of a *fixed* type are embedded body-only while
union-typed fields (e.g. the matched/filtered entries of a range proof) carry
a one-byte type tag.

The encoding is **canonical**: for every artifact there is exactly one valid
byte string, and :func:`decode` rejects everything else —
truncation, trailing bytes, non-minimal integers, unsorted map keys, unknown
tags — with a typed :class:`~repro.wire.errors.WireFormatError`.  Round-trip
identity (``decode(encode(x)) == x`` and ``encode(decode(b)) == b``) is locked
in by golden vectors under ``tests/golden/``.

A JSON debug codec (:func:`to_json` / :func:`from_json`) mirrors the same
field model with hex-encoded byte strings, for logging and troubleshooting;
the binary format is the one that crosses the network.

Each codec is declared as a field-spec table, so the binary writer, the binary
reader and both JSON directions are always generated from one source of truth.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.core.proof import (
    BoundaryEntryProof,
    FilteredEntryProof,
    GreaterThanProof,
    JoinQueryProof,
    MatchedEntryProof,
    RangeQueryProof,
    SignatureBundle,
)
from repro.core.digest import BoundaryAssist, EntryAssist
from repro.core.relational import RelationManifest, UpdateReceipt
from repro.crypto.aggregate import AggregateSignature
from repro.crypto.merkle import MerkleProof
from repro.crypto.rsa import RSAPublicKey
from repro.db.query import (
    Conjunction,
    EqualityCondition,
    JoinQuery,
    Projection,
    Query,
    RangeCondition,
)
from repro.db.schema import Attribute, AttributeType, KeyDomain, Schema
from repro.wire.errors import WireFormatError
from repro.wire.primitives import WireReader, WireWriter

__all__ = [
    "encode",
    "decode",
    "frame_type",
    "peek_leading_fields",
    "to_json",
    "from_json",
    "to_json_obj",
    "from_json_obj",
    "manifest_id",
    "register_artifact",
    "WIRE_VERSION",
    # field types, for registering extension artifacts (see repro.service.protocol)
    "INT",
    "BOOL",
    "STR",
    "BYTES",
    "SCALAR",
    "OptionalField",
    "TupleField",
    "PairField",
    "MapField",
    "NestedField",
    "UnionField",
    "EnumStrField",
    "FixedBytesField",
]

#: Version 2 added the live-update pipeline: ``RelationManifest.sequence``
#: (manifest rotation), fixed-width manifest-id fields, and the
#: insert/delete/update artifacts of :mod:`repro.wire.updates`.
#: Version 3 made serving scheme-polymorphic: manifests carry a ``scheme``
#: tag (part of the manifest id), per-scheme VO artifacts are registered from
#: the scheme modules (:mod:`repro.schemes`), and a query response's proof
#: field is a union over every registered scheme's VO type.
#: Version 4 added owner-signed freshness: the ``FreshnessAttestation``
#: artifact, attestation stamps on query/join responses, and the attestation
#: push/fetch service messages (:mod:`repro.service.protocol`).
WIRE_VERSION = 4
_MAGIC = b"PV"


# ---------------------------------------------------------------------------
# Field types
# ---------------------------------------------------------------------------


class _Field:
    """One wire-field type: binary write/read plus the JSON mirror.

    ``emit`` contributes to the generated per-artifact decoder (see
    :meth:`_ArtifactCodec._generate_read_body`): it returns a Python
    *expression* that reads this field from ``reader``, with any objects the
    expression needs registered in ``bindings``.  The default emission simply
    calls :meth:`read`, so composite fields that keep per-element validation
    loops (maps, unions) work unchanged inside generated decoders.
    """

    def write(self, writer: WireWriter, value) -> None:
        raise NotImplementedError

    def read(self, reader: WireReader, what: str):
        raise NotImplementedError

    def emit(self, label_expr: str, bindings: Dict[str, object]) -> str:
        name = _bind(bindings, "f", self.read)
        return f"{name}(reader, {label_expr})"

    def to_json(self, value):
        raise NotImplementedError

    def from_json(self, obj, what: str):
        raise NotImplementedError


def _bind(bindings: Dict[str, object], prefix: str, value) -> str:
    """Register ``value`` under a fresh name in a codegen namespace."""
    name = f"_{prefix}{len(bindings)}"
    bindings[name] = value
    return name


def _json_type_error(what: str, expected: str, obj) -> WireFormatError:
    return WireFormatError(
        f"JSON field {what} must be {expected}, got {type(obj).__name__}",
        reason="bad-json",
    )


class _Int(_Field):
    def write(self, writer, value):
        writer.int_(value)

    def read(self, reader, what):
        return reader.int_(what)

    def emit(self, label_expr, bindings):
        return f"reader.int_({label_expr})"

    def to_json(self, value):
        return int(value)

    def from_json(self, obj, what):
        if not isinstance(obj, int) or isinstance(obj, bool):
            raise _json_type_error(what, "an integer", obj)
        return obj


class _Bool(_Field):
    def write(self, writer, value):
        writer.bool_(value)

    def read(self, reader, what):
        return reader.bool_(what)

    def emit(self, label_expr, bindings):
        return f"reader.bool_({label_expr})"

    def to_json(self, value):
        return bool(value)

    def from_json(self, obj, what):
        if not isinstance(obj, bool):
            raise _json_type_error(what, "a boolean", obj)
        return obj


class _Str(_Field):
    def write(self, writer, value):
        writer.str_(value)

    def read(self, reader, what):
        return reader.str_(what)

    def emit(self, label_expr, bindings):
        return f"reader.str_({label_expr})"

    def to_json(self, value):
        return str(value)

    def from_json(self, obj, what):
        if not isinstance(obj, str):
            raise _json_type_error(what, "a string", obj)
        return obj


class _Bytes(_Field):
    def write(self, writer, value):
        writer.bytes_(value)

    def read(self, reader, what):
        return reader.bytes_(what)

    def emit(self, label_expr, bindings):
        return f"reader.bytes_({label_expr})"

    def to_json(self, value):
        return bytes(value).hex()

    def from_json(self, obj, what):
        if not isinstance(obj, str):
            raise _json_type_error(what, "a hex string", obj)
        try:
            return bytes.fromhex(obj)
        except ValueError:
            raise WireFormatError(
                f"JSON field {what} is not valid hex", reason="bad-json"
            ) from None


class _Scalar(_Field):
    """A typed attribute value (None/bool/int/float/str/bytes)."""

    def write(self, writer, value):
        writer.scalar(value)

    def read(self, reader, what):
        return reader.scalar(what)

    def emit(self, label_expr, bindings):
        return f"reader.scalar({label_expr})"

    def to_json(self, value):
        if isinstance(value, (bytes, bytearray, memoryview)):
            return {"__bytes__": bytes(value).hex()}
        return value

    def from_json(self, obj, what):
        if isinstance(obj, dict):
            if set(obj) != {"__bytes__"} or not isinstance(obj["__bytes__"], str):
                raise _json_type_error(what, "a scalar or {'__bytes__': hex}", obj)
            try:
                return bytes.fromhex(obj["__bytes__"])
            except ValueError:
                raise WireFormatError(
                    f"JSON field {what} is not valid hex", reason="bad-json"
                ) from None
        if obj is None or isinstance(obj, (bool, int, float, str)):
            return obj
        raise _json_type_error(what, "a scalar", obj)


class _FixedBytes(_Field):
    """Exactly ``size`` raw bytes — the length is part of the format.

    Used for digests and manifest ids: a value of the wrong width is rejected
    structurally (at encode time as a programming error, at decode time as a
    short read / trailing bytes), and the wire carries no redundant length
    prefix.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("fixed-width byte fields need a positive size")
        self.size = size

    def write(self, writer, value):
        writer.fixed_bytes(value, self.size)

    def read(self, reader, what):
        return reader.fixed_bytes(self.size, what)

    def emit(self, label_expr, bindings):
        return f"reader.fixed_bytes({self.size}, {label_expr})"

    def to_json(self, value):
        return bytes(value).hex()

    def from_json(self, obj, what):
        if not isinstance(obj, str):
            raise _json_type_error(what, "a hex string", obj)
        try:
            raw = bytes.fromhex(obj)
        except ValueError:
            raise WireFormatError(
                f"JSON field {what} is not valid hex", reason="bad-json"
            ) from None
        if len(raw) != self.size:
            raise WireFormatError(
                f"JSON field {what} must be {self.size} bytes, got {len(raw)}",
                reason="bad-json",
            )
        return raw


class _Optional(_Field):
    def __init__(self, inner: _Field) -> None:
        self.inner = inner

    def write(self, writer, value):
        writer.bool_(value is not None)
        if value is not None:
            self.inner.write(writer, value)

    def read(self, reader, what):
        if reader.optional(what):
            return self.inner.read(reader, what)
        return None

    def emit(self, label_expr, bindings):
        if type(self.inner) is _Bytes:
            return f"reader.optional_bytes({label_expr})"
        inner = self.inner.emit(label_expr, bindings)
        # A conditional expression evaluates its test first, so the presence
        # byte is consumed before the inner field reads anything.
        return f"({inner} if reader.optional({label_expr}) else None)"

    def to_json(self, value):
        return None if value is None else self.inner.to_json(value)

    def from_json(self, obj, what):
        return None if obj is None else self.inner.from_json(obj, what)


class _Tuple(_Field):
    def __init__(self, inner: _Field) -> None:
        self.inner = inner

    def write(self, writer, value):
        items = tuple(value)
        writer.u32(len(items))
        for item in items:
            self.inner.write(writer, item)

    def read(self, reader, what):
        # Hot path: one label for every element (the element index would cost
        # a string format per field and only ever shows up in error text).
        length = reader.count(what)
        inner = self.inner
        # Digest and signature tuples are homogeneous runs on real traffic;
        # the reader batch-decodes them with one compiled struct pass.
        if type(inner) is _Bytes:
            return tuple(reader.bytes_run(length, what))
        if type(inner) is _Int:
            return tuple(reader.int_run(length, what))
        inner_read = inner.read
        return tuple([inner_read(reader, what) for _ in range(length)])

    def emit(self, label_expr, bindings):
        if type(self.inner) is _Bytes:
            return (
                f"tuple(reader.bytes_run(reader.count({label_expr}), {label_expr}))"
            )
        if type(self.inner) is _Int:
            return (
                f"tuple(reader.int_run(reader.count({label_expr}), {label_expr}))"
            )
        inner = self.inner.emit(label_expr, bindings)
        return (
            f"tuple([{inner} for _ in range(reader.count({label_expr}))])"
        )

    def to_json(self, value):
        return [self.inner.to_json(item) for item in value]

    def from_json(self, obj, what):
        if not isinstance(obj, list):
            raise _json_type_error(what, "a list", obj)
        return tuple(
            self.inner.from_json(item, f"{what}[{i}]") for i, item in enumerate(obj)
        )


class _Pair(_Field):
    def __init__(self, first: _Field, second: _Field) -> None:
        self.first = first
        self.second = second

    def write(self, writer, value):
        a, b = value
        self.first.write(writer, a)
        self.second.write(writer, b)

    def read(self, reader, what):
        return (
            self.first.read(reader, what),
            self.second.read(reader, what),
        )

    def emit(self, label_expr, bindings):
        # Tuple displays evaluate left to right, preserving the field order.
        first = self.first.emit(label_expr, bindings)
        second = self.second.emit(label_expr, bindings)
        return f"({first}, {second})"

    def to_json(self, value):
        a, b = value
        return [self.first.to_json(a), self.second.to_json(b)]

    def from_json(self, obj, what):
        if not isinstance(obj, list) or len(obj) != 2:
            raise _json_type_error(what, "a 2-element list", obj)
        return (
            self.first.from_json(obj[0], f"{what}.0"),
            self.second.from_json(obj[1], f"{what}.1"),
        )


class _Map(_Field):
    """A mapping with canonically sorted (strictly increasing) keys."""

    def __init__(self, key: _Field, value: _Field) -> None:
        self.key = key
        self.value = value

    def write(self, writer, value):
        items = sorted(value.items())
        writer.u32(len(items))
        for k, v in items:
            self.key.write(writer, k)
            self.value.write(writer, v)

    def read(self, reader, what):
        length = reader.count(what)
        key_read = self.key.read
        value_read = self.value.read
        result = {}
        previous = None
        for _ in range(length):
            k = key_read(reader, what)
            if previous is not None and not k > previous:
                raise WireFormatError(
                    f"map keys of {what} are not strictly increasing",
                    reason="unsorted-map",
                )
            previous = k
            result[k] = value_read(reader, what)
        return result

    def emit(self, label_expr, bindings):
        # The two hot map shapes (result rows, attribute-digest maps) read
        # through the reader's fused loops — one call per map.
        if type(self.key) is _Str:
            if type(self.value) is _Scalar:
                return f"reader.map_str_scalar({label_expr})"
            if type(self.value) is _Bytes:
                return f"reader.map_str_bytes({label_expr})"
        # Other maps need a statement loop (the strictly-increasing key check),
        # so they are generated as a standalone helper the artifact decoder calls.
        generated = getattr(self, "_generated_read", None)
        if generated is None:
            inner_bindings: Dict[str, object] = {"_WireFormatError": WireFormatError}
            key_expr = self.key.emit("what", inner_bindings)
            value_expr = self.value.emit("what", inner_bindings)
            lines = [
                "def _read_map(reader, what):",
                "    result = {}",
                "    previous = None",
                "    for _ in range(reader.count(what)):",
                f"        key = {key_expr}",
                "        if previous is not None and not key > previous:",
                "            raise _WireFormatError(",
                "                f'map keys of {what} are not strictly increasing',",
                "                reason='unsorted-map',",
                "            )",
                "        previous = key",
                f"        result[key] = {value_expr}",
                "    return result",
            ]
            exec(  # noqa: S102 - codegen from the trusted field-spec table
                compile("\n".join(lines), "<wire codec map>", "exec"),
                inner_bindings,
            )
            generated = self._generated_read = inner_bindings["_read_map"]
        name = _bind(bindings, "m", generated)
        return f"{name}(reader, {label_expr})"

    def to_json(self, value):
        return {
            str(k): self.value.to_json(v) for k, v in sorted(value.items())
        }

    def from_json(self, obj, what):
        if not isinstance(obj, dict):
            raise _json_type_error(what, "an object", obj)
        result = {}
        for k, v in obj.items():
            if isinstance(self.key, _Int):
                try:
                    key = int(k)
                except (ValueError, TypeError):
                    raise WireFormatError(
                        f"map key {k!r} of {what} is not an integer",
                        reason="bad-json",
                    ) from None
            else:
                key = k
            result[key] = self.value.from_json(v, f"{what}[{k}]")
        return result


class _Nested(_Field):
    """An embedded artifact of one fixed type (body-only, no tag)."""

    def __init__(self, cls: type) -> None:
        self.cls = cls
        self._resolved: Optional["_ArtifactCodec"] = None

    def _codec(self) -> "_ArtifactCodec":
        codec = self._resolved
        if codec is None:
            codec = self._resolved = _codec_for_type(self.cls)
        return codec

    def write(self, writer, value):
        self._codec().write_body(writer, value)

    def read(self, reader, what):
        return self._codec().read_body(reader)

    def emit(self, label_expr, bindings):
        # Late-bound attribute lookup: the nested codec's read_body may itself
        # be replaced by a generated decoder after its first use.
        name = _bind(bindings, "c", self._codec())
        return f"{name}.read_body(reader)"

    def to_json(self, value):
        return self._codec().json_body(value)

    def from_json(self, obj, what):
        if not isinstance(obj, dict):
            raise _json_type_error(what, "an object", obj)
        return _codec_for_type(self.cls).unjson_body(obj)


class _Union(_Field):
    """An embedded artifact of one of several types (1-byte tag + body)."""

    def __init__(self, *classes: type) -> None:
        self.classes = classes
        self._by_tag: Optional[Dict[int, "_ArtifactCodec"]] = None

    def _members(self) -> Dict[int, "_ArtifactCodec"]:
        members = self._by_tag
        if members is None:
            members = self._by_tag = {
                _codec_for_type(cls).tag: _codec_for_type(cls)
                for cls in self.classes
            }
        return members

    def write(self, writer, value):
        codec = _codec_for_type(type(value))
        if codec.cls not in self.classes:
            raise ValueError(
                f"{type(value).__name__} is not a member of this union"
            )
        writer.u8(codec.tag)
        codec.write_body(writer, value)

    def read(self, reader, what):
        tag = reader.u8(what)
        members = self._by_tag
        if members is None:
            members = self._members()
        codec = members.get(tag)
        if codec is None:
            allowed = "/".join(cls.__name__ for cls in self.classes)
            raise WireFormatError(
                f"tag {tag:#04x} of {what} is not one of {allowed}",
                reason="bad-union-tag",
            )
        return codec.read_body(reader)

    def to_json(self, value):
        codec = _codec_for_type(type(value))
        return {"type": codec.name, "body": codec.json_body(value)}

    def from_json(self, obj, what):
        if not isinstance(obj, dict) or set(obj) != {"type", "body"}:
            raise _json_type_error(what, "a {'type','body'} object", obj)
        codec = _NAMES.get(obj["type"])
        if codec is None or codec.cls not in self.classes:
            raise WireFormatError(
                f"JSON type {obj['type']!r} of {what} is not in this union",
                reason="bad-union-tag",
            )
        if not isinstance(obj["body"], dict):
            raise _json_type_error(what, "an object body", obj["body"])
        return codec.unjson_body(obj["body"])


class _EnumStr(_Field):
    """A string restricted to a fixed set of values (validated on decode)."""

    def __init__(self, *allowed: str) -> None:
        self.allowed = frozenset(allowed)

    def write(self, writer, value):
        writer.str_(value)

    def read(self, reader, what):
        value = reader.str_(what)
        if value not in self.allowed:
            raise WireFormatError(
                f"{what} must be one of {sorted(self.allowed)}, got {value!r}",
                reason="bad-enum",
            )
        return value

    def to_json(self, value):
        return str(value)

    def from_json(self, obj, what):
        if not isinstance(obj, str) or obj not in self.allowed:
            raise _json_type_error(what, f"one of {sorted(self.allowed)}", obj)
        return obj


class _AttrType(_Field):
    """:class:`~repro.db.schema.AttributeType` as its canonical value string."""

    def write(self, writer, value):
        writer.str_(value.value)

    def read(self, reader, what):
        raw = reader.str_(what)
        try:
            return AttributeType(raw)
        except ValueError:
            raise WireFormatError(
                f"unknown attribute type {raw!r}", reason="bad-enum"
            ) from None

    def to_json(self, value):
        return value.value

    def from_json(self, obj, what):
        try:
            return AttributeType(obj)
        except (ValueError, TypeError):
            raise _json_type_error(what, "an attribute type string", obj)


INT = _Int()
BOOL = _Bool()
STR = _Str()
BYTES = _Bytes()
SCALAR = _Scalar()

#: Public aliases for composite field types, so extension modules (the service
#: protocol) can declare their own artifacts without reaching for underscores.
OptionalField = _Optional
TupleField = _Tuple
PairField = _Pair
MapField = _Map
NestedField = _Nested
UnionField = _Union
EnumStrField = _EnumStr
FixedBytesField = _FixedBytes


# ---------------------------------------------------------------------------
# Artifact codecs
# ---------------------------------------------------------------------------


class _ArtifactCodec:
    """Binary and JSON (de)serialisation of one artifact class."""

    def __init__(
        self,
        tag: int,
        cls: type,
        fields: Sequence[Tuple[str, _Field]],
        post: Optional[Callable[[object], None]] = None,
    ) -> None:
        self.tag = tag
        self.cls = cls
        self.name = cls.__name__
        self.fields = tuple(fields)
        self.post = post
        # Decode hot path, precomputed once at registration: the per-field
        # error-context labels (never formatted per read) and, when the
        # registered field order matches the constructor's parameter order
        # exactly, a positional construction fast path that skips building a
        # kwargs dict per artifact.
        self._read_plan = tuple(
            (field.read, f"{self.name}.{name}") for name, field in self.fields
        )
        self._names = tuple(name for name, _ in self.fields)
        try:
            parameters = list(inspect.signature(cls).parameters)
        except (ValueError, TypeError):  # pragma: no cover - exotic classes
            parameters = None
        self._positional = parameters == list(self._names)

    def _invalid(self, error) -> WireFormatError:
        return WireFormatError(
            f"decoded fields do not form a valid {self.name}: {error}",
            reason="invalid-artifact",
        )

    def _construct(self, kwargs: Dict[str, object]):
        try:
            artifact = self.cls(**kwargs)
        except (ValueError, TypeError, KeyError) as error:
            raise self._invalid(error) from None
        if self.post is not None:
            self.post(artifact)
        return artifact

    def write_body(self, writer: WireWriter, artifact) -> None:
        for name, field in self.fields:
            field.write(writer, getattr(artifact, name))

    def read_body(self, reader: WireReader):
        """Decode one body; replaced by a generated decoder on first use.

        The decoder is *generated* from the same field-spec table that drives
        the writer and the JSON mirror: each field type emits the expression
        that reads it, the expressions are compiled into one flat function per
        artifact, and construction is positional.  This removes a layer of
        dynamic dispatch per field — the wire decode hot path handles a few
        thousand fields per verification object.

        Generation is deferred to the first decode so that nested artifact
        types registered later (the service layer extends the registry) are
        resolvable by then.
        """
        return self._generate_read_body()(reader)

    def _generate_read_body(self):
        if not self._positional:
            # Constructor parameters diverge from the registered field order
            # (possible for extension artifacts): keep the interpreted path.
            plan = self._read_plan

            def _read_body(reader):
                values = [read(reader, label) for read, label in plan]
                return self._construct(dict(zip(self._names, values)))

        else:
            bindings: Dict[str, object] = {
                "_cls": self.cls,
                "_invalid": self._invalid,
                "_post": self.post,
                "_new": object.__new__,
            }
            expressions = []
            for name, field in self.fields:
                label = _bind(bindings, "L", f"{self.name}.{name}")
                expressions.append(field.emit(label, bindings))
            if self._plain_dataclass():
                # A plain frozen/record dataclass whose __init__ only assigns
                # the registered fields: build the instance directly (field
                # reads still run left to right via the dict display).  The
                # codec-level ``post`` validation hook runs as usual.
                assignments = ", ".join(
                    f"{name!r}: {expression}"
                    for (name, _), expression in zip(self.fields, expressions)
                )
                lines = [
                    "def _read_body(reader):",
                    "    _artifact = _new(_cls)",
                    # In-place __dict__ update: reading __dict__ bypasses the
                    # frozen dataclass's __setattr__ guard.
                    f"    _artifact.__dict__.update({{{assignments}}})",
                ]
            else:
                construct = (
                    f"_cls({', '.join(expressions)})" if expressions else "_cls()"
                )
                lines = [
                    "def _read_body(reader):",
                    "    try:",
                    f"        _artifact = {construct}",
                    "    except (ValueError, TypeError, KeyError) as _error:",
                    "        raise _invalid(_error) from None",
                ]
            if self.post is not None:
                lines.append("    _post(_artifact)")
            lines.append("    return _artifact")
            exec(  # noqa: S102 - codegen from the trusted field-spec table
                compile("\n".join(lines), f"<wire codec {self.name}>", "exec"),
                bindings,
            )
            _read_body = bindings["_read_body"]
        self.read_body = _read_body  # shadows the method for this codec
        return _read_body

    def _plain_dataclass(self) -> bool:
        """True when direct construction is indistinguishable from __init__.

        Requires a dataclass without ``__post_init__`` or ``__slots__`` whose
        init fields are exactly the registered wire fields, in order — then
        the generated ``__init__`` does nothing but assign them.
        """
        cls = self.cls
        if not dataclasses.is_dataclass(cls):
            return False
        if hasattr(cls, "__post_init__") or "__slots__" in cls.__dict__:
            return False
        fields = dataclasses.fields(cls)
        if not all(field.init for field in fields):
            return False
        return tuple(field.name for field in fields) == self._names

    def json_body(self, artifact) -> Dict[str, object]:
        return {
            name: field.to_json(getattr(artifact, name))
            for name, field in self.fields
        }

    def unjson_body(self, body: Dict[str, object]):
        expected = {name for name, _ in self.fields}
        if set(body) != expected:
            raise WireFormatError(
                f"JSON body of {self.name} must have exactly the fields "
                f"{sorted(expected)}, got {sorted(body)}",
                reason="bad-json",
            )
        kwargs = {
            name: field.from_json(body[name], f"{self.name}.{name}")
            for name, field in self.fields
        }
        return self._construct(kwargs)


_TAGS: Dict[int, _ArtifactCodec] = {}
_TYPES: Dict[type, _ArtifactCodec] = {}
_NAMES: Dict[str, _ArtifactCodec] = {}


def register_artifact(
    tag: int,
    cls: type,
    fields: Sequence[Tuple[str, _Field]],
    post: Optional[Callable[[object], None]] = None,
) -> None:
    """Register a codec for ``cls`` under ``tag``.

    The service layer uses this to add its request/response envelopes to the
    same registry the proof artifacts live in, so one :func:`decode` call
    handles every frame.
    """
    if tag in _TAGS:
        raise ValueError(f"wire tag {tag:#04x} is already registered")
    if cls in _TYPES:
        raise ValueError(f"{cls.__name__} is already registered")
    codec = _ArtifactCodec(tag, cls, fields, post)
    _TAGS[tag] = codec
    _TYPES[cls] = codec
    _NAMES[codec.name] = codec


def _codec_for_type(cls: type) -> _ArtifactCodec:
    codec = _TYPES.get(cls)
    if codec is None:
        raise ValueError(f"no wire codec registered for {cls.__name__}")
    return codec


# -- validation hooks ---------------------------------------------------------


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise WireFormatError(message, reason="invalid-artifact")


def _post_merkle_proof(proof: MerkleProof) -> None:
    _check(proof.tree_size >= 1, "Merkle proof tree size must be at least 1")
    _check(
        0 <= proof.leaf_index < proof.tree_size,
        "Merkle proof leaf index out of range",
    )


def _post_aggregate(aggregate: AggregateSignature) -> None:
    _check(aggregate.value >= 1, "aggregate signature value must be positive")
    _check(aggregate.count >= 1, "aggregate signature count must be positive")


def _post_filtered(entry: FilteredEntryProof) -> None:
    _check(
        entry.reason in ("predicate", "access-control"),
        f"unknown filtering reason {entry.reason!r}",
    )


def _post_public_key(key: RSAPublicKey) -> None:
    _check(key.modulus >= 3, "RSA modulus must be at least 3")
    _check(key.exponent >= 3, "RSA public exponent must be at least 3")
    _check_hash_name(key.hash_name)


def _check_hash_name(name: str) -> None:
    try:
        hashlib.new(name)
    except (ValueError, TypeError):
        raise WireFormatError(
            f"unknown hash algorithm {name!r}", reason="invalid-artifact"
        ) from None


def _post_manifest(manifest: RelationManifest) -> None:
    _check(manifest.base >= 2, "digest-scheme base must be at least 2")
    _check(manifest.sequence >= 0, "negative manifest sequence")
    # The scheme tag must be present but is *not* validated against the local
    # scheme registry: a relay may forward manifests for schemes it does not
    # implement, and the client's registry lookup is the typed failure point.
    _check(bool(manifest.scheme), "empty proof-scheme tag")
    _check_hash_name(manifest.hash_name)


def _post_receipt(receipt: UpdateReceipt) -> None:
    _check(receipt.signatures_recomputed >= 0, "negative signature count")
    _check(receipt.digests_recomputed >= 0, "negative digest count")
    _check(receipt.chain_messages_recomputed >= 0, "negative chain-message count")
    # Section 6.3 accounting invariants: exactly one signature per affected
    # chain entry, and every re-derived chain message is re-signed.  Enforced
    # at decode so a receipt whose counts drifted (or were tampered with) in
    # transit can never silently round-trip.
    _check(
        receipt.signatures_recomputed == len(receipt.entries_affected),
        "signature count disagrees with the affected-entry list",
    )
    _check(
        receipt.chain_messages_recomputed == receipt.signatures_recomputed,
        "chain-message count disagrees with the signature count",
    )


# -- registrations ------------------------------------------------------------

register_artifact(0x01, EntryAssist, [("mht_root", _Optional(BYTES))])

register_artifact(
    0x02,
    BoundaryAssist,
    [
        ("intermediate_digests", _Tuple(BYTES)),
        ("used_canonical", BOOL),
        ("mht_root", _Optional(BYTES)),
        ("canonical_digest", _Optional(BYTES)),
        ("mht_proof", _Optional(_Nested(MerkleProof))),
    ],
)

register_artifact(
    0x03,
    MerkleProof,
    [
        ("leaf_index", INT),
        ("siblings", _Tuple(_Pair(BYTES, BOOL))),
        ("tree_size", INT),
    ],
    post=_post_merkle_proof,
)

register_artifact(
    0x04,
    AggregateSignature,
    [("value", INT), ("count", INT)],
    post=_post_aggregate,
)

register_artifact(
    0x05,
    SignatureBundle,
    [
        ("individual", _Tuple(INT)),
        ("aggregate", _Optional(_Nested(AggregateSignature))),
    ],
)

register_artifact(
    0x06,
    GreaterThanProof,
    [
        ("alpha", INT),
        ("predecessor_boundary", _Nested(BoundaryAssist)),
        ("entry_assists", _Tuple(_Nested(EntryAssist))),
        ("right_delimiter_digest", BYTES),
        ("signatures", _Nested(SignatureBundle)),
    ],
)

register_artifact(
    0x07,
    BoundaryEntryProof,
    [
        ("side", _EnumStr("lower", "upper")),
        ("chain_boundary", _Nested(BoundaryAssist)),
        ("other_chain_digest", BYTES),
        ("attribute_root", BYTES),
    ],
)

register_artifact(
    0x08,
    MatchedEntryProof,
    [
        ("upper_assist", _Nested(EntryAssist)),
        ("lower_assist", _Nested(EntryAssist)),
        ("dropped_attribute_digests", _Map(STR, BYTES)),
        ("eliminated_duplicate", BOOL),
        ("revealed_attributes", _Map(STR, SCALAR)),
        ("key", _Optional(INT)),
    ],
)

register_artifact(
    0x09,
    FilteredEntryProof,
    [
        ("revealed_attributes", _Map(STR, SCALAR)),
        ("attribute_leaf_digests", _Map(STR, BYTES)),
        ("upper_chain_digest", BYTES),
        ("lower_chain_digest", BYTES),
        ("reason", _EnumStr("predicate", "access-control")),
    ],
    post=_post_filtered,
)

register_artifact(
    0x0A,
    RangeQueryProof,
    [
        ("key_low", INT),
        ("key_high", INT),
        ("lower_boundary", _Nested(BoundaryEntryProof)),
        ("upper_boundary", _Nested(BoundaryEntryProof)),
        ("entries", _Tuple(_Union(MatchedEntryProof, FilteredEntryProof))),
        ("signatures", _Nested(SignatureBundle)),
        ("outer_neighbor_digest", _Optional(BYTES)),
    ],
)

register_artifact(
    0x0B,
    JoinQueryProof,
    [
        ("left_proof", _Nested(RangeQueryProof)),
        ("right_point_proofs", _Map(INT, _Nested(RangeQueryProof))),
    ],
)

register_artifact(
    0x0C,
    UpdateReceipt,
    [
        ("signatures_recomputed", INT),
        ("digests_recomputed", INT),
        ("entries_affected", _Tuple(INT)),
        ("chain_messages_recomputed", INT),
    ],
    post=_post_receipt,
)

register_artifact(
    0x10,
    RSAPublicKey,
    [("modulus", INT), ("exponent", INT), ("hash_name", STR)],
    post=_post_public_key,
)

register_artifact(0x11, KeyDomain, [("lower", INT), ("upper", INT)])

register_artifact(
    0x12,
    Attribute,
    [
        ("name", STR),
        ("attribute_type", _AttrType()),
        ("domain", _Optional(_Nested(KeyDomain))),
        ("size_hint", INT),
    ],
)

register_artifact(
    0x13,
    Schema,
    [
        ("name", STR),
        ("attributes", _Tuple(_Nested(Attribute))),
        ("key", STR),
    ],
)

register_artifact(
    0x14,
    RelationManifest,
    [
        ("schema", _Nested(Schema)),
        ("scheme_kind", _EnumStr("conceptual", "optimized")),
        ("base", INT),
        ("hash_name", STR),
        ("public_key", _Nested(RSAPublicKey)),
        ("sequence", INT),
        ("scheme", STR),
    ],
    post=_post_manifest,
)

register_artifact(
    0x20,
    RangeCondition,
    [
        ("attribute", STR),
        ("low", _Optional(INT)),
        ("high", _Optional(INT)),
    ],
)

register_artifact(
    0x21, EqualityCondition, [("attribute", STR), ("value", SCALAR)]
)

register_artifact(
    0x22,
    Conjunction,
    [("conditions", _Tuple(_Union(RangeCondition, EqualityCondition)))],
)

register_artifact(
    0x23,
    Projection,
    [("attributes", _Optional(_Tuple(STR))), ("distinct", BOOL)],
)

register_artifact(
    0x24,
    Query,
    [
        ("relation_name", STR),
        ("where", _Nested(Conjunction)),
        ("projection", _Nested(Projection)),
    ],
)

register_artifact(
    0x25,
    JoinQuery,
    [
        ("left_relation", STR),
        ("right_relation", STR),
        ("foreign_key", STR),
        ("primary_key", STR),
        ("where", _Nested(Conjunction)),
        ("projection", _Nested(Projection)),
    ],
)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def encode(artifact) -> bytes:
    """Encode ``artifact`` to its canonical framed wire bytes."""
    codec = _codec_for_type(type(artifact))
    writer = WireWriter()
    writer.u8(codec.tag)
    codec.write_body(writer, artifact)
    return _MAGIC + bytes((WIRE_VERSION,)) + writer.getvalue()


def _open_frame(data) -> Tuple[WireReader, "_ArtifactCodec"]:
    """Validate the envelope (magic, version, tag) and position a reader.

    Accepts ``bytes`` as well as ``bytearray``/``memoryview`` buffers — the
    latter without copying the payload, which is what lets a server peek at a
    frame still sitting in its receive buffer.
    """
    reader = WireReader(data)
    magic = reader.raw(2, "magic")
    if magic != _MAGIC:
        raise WireFormatError(
            f"bad magic {bytes(magic)!r}; expected {_MAGIC!r}", reason="bad-magic"
        )
    version = reader.u8("format version")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire format version {version}", reason="bad-version"
        )
    tag = reader.u8("artifact tag")
    codec = _TAGS.get(tag)
    if codec is None:
        raise WireFormatError(f"unknown artifact tag {tag:#04x}", reason="bad-tag")
    return reader, codec


def decode(data, expect: Optional[type] = None):
    """Decode framed wire bytes back into the artifact they encode.

    ``expect`` optionally pins the artifact type: a well-formed frame of a
    different type is rejected (a publisher cannot, say, answer a range query
    with a join proof and hope the client mixes them up).
    """
    reader, codec = _open_frame(data)
    artifact = codec.read_body(reader)
    reader.expect_end()
    if expect is not None and not isinstance(artifact, expect):
        raise WireFormatError(
            f"expected a {expect.__name__}, decoded a {codec.name}",
            reason="unexpected-artifact",
        )
    return artifact


def frame_type(data) -> type:
    """The artifact class a frame encodes, from the envelope alone.

    Reads four bytes (magic, version, tag) and decodes **nothing else** —
    the zero-copy peek a server uses to pick a dispatch path for a frame
    before (or instead of) fully decoding it.
    """
    _, codec = _open_frame(data)
    return codec.cls


def peek_leading_fields(data, count: int) -> Tuple[object, ...]:
    """Lazily decode only the first ``count`` body fields of a frame.

    The rest of the payload is left untouched (and unvalidated — the caller
    is expected to fully :func:`decode` the frame before trusting it; the
    peek exists so a router can read e.g. a leading manifest id without
    materialising the verification object behind it).
    """
    reader, codec = _open_frame(data)
    plan = codec._read_plan[:count]
    if len(plan) < count:
        raise WireFormatError(
            f"{codec.name} has only {len(codec._read_plan)} fields, "
            f"cannot peek {count}",
            reason="invalid-artifact",
        )
    return tuple(read(reader, label) for read, label in plan)


def to_json_obj(artifact) -> Dict[str, object]:
    """The JSON debug representation of ``artifact`` (a plain dict)."""
    codec = _codec_for_type(type(artifact))
    return {
        "format": f"repro-wire-json/{WIRE_VERSION}",
        "type": codec.name,
        "body": codec.json_body(artifact),
    }


def from_json_obj(obj: Dict[str, object]):
    """Rebuild an artifact from its JSON debug representation."""
    if not isinstance(obj, dict):
        raise WireFormatError("JSON artifact must be an object", reason="bad-json")
    if obj.get("format") != f"repro-wire-json/{WIRE_VERSION}":
        raise WireFormatError(
            f"unsupported JSON format marker {obj.get('format')!r}",
            reason="bad-version",
        )
    codec = _NAMES.get(obj.get("type"))
    if codec is None:
        raise WireFormatError(
            f"unknown artifact type {obj.get('type')!r}", reason="bad-tag"
        )
    body = obj.get("body")
    if not isinstance(body, dict):
        raise WireFormatError("JSON artifact body must be an object", reason="bad-json")
    return codec.unjson_body(body)


def to_json(artifact, indent: Optional[int] = None) -> str:
    """Serialise ``artifact`` to a JSON debug string."""
    return json.dumps(to_json_obj(artifact), indent=indent, sort_keys=True)


def from_json(text: str):
    """Parse a JSON debug string back into an artifact."""
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as error:
        raise WireFormatError(f"invalid JSON: {error}", reason="bad-json") from None
    return from_json_obj(obj)


def manifest_id(manifest: RelationManifest) -> bytes:
    """The 32-byte routing/commitment id of a manifest.

    SHA-256 over the canonical wire encoding: two manifests share an id
    exactly when they are byte-identical on the wire.  Clients address shards
    by this id and cross-check it against the manifest bytes a server returns.
    """
    return hashlib.sha256(encode(manifest)).digest()
