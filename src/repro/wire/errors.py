"""Typed errors of the wire layer."""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = ["WireFormatError"]


class WireFormatError(ReproError):
    """A byte string could not be decoded as a well-formed wire artifact.

    Raised for truncation, trailing garbage, unknown tags, version mismatches
    and any encoding that the canonical encoder could never have produced.  The
    ``reason`` attribute carries a short machine-readable tag, mirroring
    :class:`~repro.core.errors.VerificationError`.
    """

    def __init__(self, message: str, reason: str = "malformed-wire-bytes") -> None:
        super().__init__(message)
        self.reason = reason
