"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. offline environments where ``pip install -e .`` cannot build an
editable wheel).  When the package *is* installed, the installed version takes
precedence only if it shadows the same path; inserting ``src`` first keeps the
checked-out sources authoritative during development.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
