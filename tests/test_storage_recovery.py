"""In-process crash recovery: checkpoint + WAL replay == the pre-crash server.

The contract under test is byte-identity: a router recovered from disk must
be indistinguishable from the one that served before the "crash" — same
32-byte manifest ids, same rotation history, same proof bytes on the same
queries, same applied-update registry.  FDH-RSA determinism is what makes
this possible (rows + key + sequence reproduce every signature), and the
owner-signed WAL is what makes it safe: tampered or truncated logs are
refused with typed :class:`~repro.storage.errors.RecoveryError` reasons
instead of being partially served.

Also covers the ``walctl`` offline tool against the same roots.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

import pytest

from repro.core.publisher import Publisher
from repro.core.relational import SignedRelation
from repro.db import workload
from repro.db.query import Conjunction, Query, RangeCondition
from repro.schemes import get_scheme
from repro.service.handler import RequestHandler
from repro.service.owner import build_update_request
from repro.service.router import ShardRouter
from repro.storage import (
    PublicationStorage,
    RecoveryError,
    open_publication_storage,
    recover_router,
)
from repro.storage.checkpoint import save_keys
from repro.storage.errors import CheckpointCorruptError
from repro.storage.wal import encode_record, iter_wal_records
from repro.storage.walctl import main as walctl
from repro.wire import decode, encode, manifest_id
from repro.wire.updates import RecordDelta, UpdateRequest, UpdateResponse

SALARIES = Query(
    "employees", Conjunction((RangeCondition("salary", None, None),))
)


def _build_router(signature_scheme) -> ShardRouter:
    relation = workload.generate_employees(14, seed=19, photo_bytes=8)
    signed = SignedRelation(relation, signature_scheme)
    return ShardRouter({"hr": Publisher({"employees": signed})})


def _insert_frame(signature_scheme, router, index: int) -> bytes:
    manifest = router.manifest_by_name("employees")
    delta = RecordDelta(
        kind="insert",
        values={
            "emp_id": f"rec-{index}",
            "name": f"Recovered {index}",
            "salary": 77_000 + index,
            "dept": 2,
            "photo": bytes([index % 251]) * 8,
        },
    )
    return encode(build_update_request(signature_scheme, manifest, (delta,)))


def _serve_updates(signature_scheme, router, storage, count=3):
    """Push ``count`` single-insert batches through the live handler path."""
    handler = RequestHandler(router, response_cache=False, storage=storage)
    responses = []
    for index in range(count):
        frame = _insert_frame(signature_scheme, router, index)
        handled = handler.handle_frame(frame)
        assert not handled.is_error, decode(handled.payload)
        responses.append((frame, handled.payload))
    return handler, responses


@pytest.fixture()
def durable_world(tmp_path, signature_scheme):
    """A bootstrapped root with three applied updates, storage still open."""
    router = _build_router(signature_scheme)
    storage = PublicationStorage.create(str(tmp_path / "pub"), router)
    handler, responses = _serve_updates(signature_scheme, router, storage)
    return router, storage, handler, responses


def _state_fingerprint(router: ShardRouter):
    target = router.route(router.current_id("employees"))
    with target.lock:
        answer = target.publisher.answer(SALARIES)
    return {
        "manifest_id": router.current_id("employees"),
        "rotation": router.rotation("employees"),
        "rows": answer.rows,
        "proof": answer.proof,
    }


# -- the byte-identity contract ------------------------------------------------


def test_recovery_reproduces_the_crashed_server_exactly(durable_world, tmp_path):
    router, storage, _, _ = durable_world
    before = _state_fingerprint(router)
    storage.close()  # simulated crash point: everything acked is on disk

    recovered_router, recovered_storage = open_publication_storage(
        str(tmp_path / "pub"), lambda: pytest.fail("must recover, not rebuild")
    )
    try:
        after = _state_fingerprint(recovered_router)
        assert after["manifest_id"] == before["manifest_id"]
        assert after["rotation"] == before["rotation"]
        assert after["rows"] == before["rows"]
        assert after["proof"] == before["proof"]
        assert recovered_storage.origin == "recovered"
    finally:
        recovered_storage.close()


def test_recovery_without_any_updates_keeps_the_genesis_rotation(
    tmp_path, signature_scheme
):
    router = _build_router(signature_scheme)
    storage = PublicationStorage.create(str(tmp_path / "pub"), router)
    genesis = router.rotation("employees")
    storage.close()
    recovered = recover_router(PublicationStorage.open(str(tmp_path / "pub")))
    assert recovered.rotation("employees") == genesis
    assert recovered.current_id("employees") == router.current_id("employees")


def test_recovery_rebuilds_the_applied_update_registry(durable_world, tmp_path):
    router, storage, _, responses = durable_world
    storage.close()
    recovered = recover_router(PublicationStorage.open(str(tmp_path / "pub")))
    for frame, payload in responses:
        replayed = recovered.replayed_update_response(frame)
        assert replayed == payload, (
            "a resubmitted pre-crash batch must receive its original outcome"
        )


def test_recovered_handler_resumes_the_update_sequence(
    durable_world, tmp_path, signature_scheme
):
    router, storage, handler, _ = durable_world
    storage.close()
    recovered_router, recovered_storage = open_publication_storage(
        str(tmp_path / "pub"), lambda: pytest.fail("must recover, not rebuild")
    )
    try:
        recovered_handler = RequestHandler(
            recovered_router, response_cache=False, storage=recovered_storage
        )
        frame = _insert_frame(signature_scheme, recovered_router, 99)
        handled = recovered_handler.handle_frame(frame)
        assert not handled.is_error, decode(handled.payload)
        response = decode(handled.payload, expect=UpdateResponse)
        assert response.rotation.manifest.sequence == 4  # 3 replayed + 1 new
    finally:
        recovered_storage.close()


# -- tampered and damaged logs -------------------------------------------------


def _rewrite_wal(storage_root: str, frames):
    path = os.path.join(storage_root, "shards", "hr", "employees.wal")
    with open(path, "wb") as handle:
        for frame in frames:
            handle.write(encode_record(frame))
    return path


def _read_wal(storage_root: str):
    path = os.path.join(storage_root, "shards", "hr", "employees.wal")
    return list(iter_wal_records(path))


def test_forged_wal_record_is_refused(durable_world, tmp_path):
    _, storage, _, _ = durable_world
    storage.close()
    root = str(tmp_path / "pub")
    frames = _read_wal(root)
    # Re-sign nothing: just increment the owner signature of the first update
    # frame and re-frame it with a *valid* CRC, so only the signature check
    # can catch it.
    request = decode(frames[0], expect=UpdateRequest)
    forged = replace(request, owner_signature=request.owner_signature + 1)
    frames[0] = encode(forged)
    _rewrite_wal(root, frames)
    with pytest.raises(RecoveryError) as excinfo:
        recover_router(PublicationStorage.open(root))
    assert excinfo.value.reason == "forged-record"


def test_wal_gap_is_refused(durable_world, tmp_path):
    _, storage, _, _ = durable_world
    storage.close()
    root = str(tmp_path / "pub")
    frames = _read_wal(root)
    # Drop the first update and its rotation: replay jumps to sequence 1.
    _rewrite_wal(root, frames[2:])
    with pytest.raises(RecoveryError) as excinfo:
        recover_router(PublicationStorage.open(root))
    assert excinfo.value.reason == "sequence-gap"


def test_foreign_wal_record_is_refused(durable_world, tmp_path):
    _, storage, _, responses = durable_world
    storage.close()
    root = str(tmp_path / "pub")
    frames = _read_wal(root)
    frames.append(responses[0][1])  # an UpdateResponse does not belong in a log
    _rewrite_wal(root, frames)
    with pytest.raises(RecoveryError) as excinfo:
        recover_router(PublicationStorage.open(root))
    assert excinfo.value.reason == "foreign-record"


def test_swapped_signing_key_is_refused(durable_world, tmp_path, forged_scheme):
    """A key file that does not match the checkpointed manifest is refused.

    Recovery re-signs the relation with the persisted key, so the first
    defence is that the key must be the one the owner-signed manifest names.
    """
    _, storage, _, _ = durable_world
    storage.close()
    root = str(tmp_path / "pub")
    save_keys(
        os.path.join(root, "shards", "hr", "keys.json"),
        {"employees": forged_scheme},
    )
    with pytest.raises(RecoveryError) as excinfo:
        recover_router(PublicationStorage.open(root))
    assert excinfo.value.reason == "key-mismatch"


def test_tampered_checkpoint_header_is_refused(durable_world, tmp_path):
    """The header's plain-JSON sequence cannot contradict the signed manifest."""
    router, storage, _, _ = durable_world
    target = router.route(router.current_id("employees"))
    storage.checkpoint_now(target, router.rotation("employees"))
    storage.close()
    root = str(tmp_path / "pub")
    path = os.path.join(root, "shards", "hr", "employees.ckpt")
    records = list(iter_wal_records(path))
    header = json.loads(records[0].decode("utf-8"))
    header["sequence"] += 1
    records[0] = json.dumps(header, sort_keys=True).encode("utf-8")
    with open(path, "wb") as handle:
        for record in records:
            handle.write(encode_record(record))
    with pytest.raises(CheckpointCorruptError, match="contradicts"):
        PublicationStorage.open(root).load_relation_checkpoint("hr", "employees")


# -- checkpoints and compaction ------------------------------------------------


def test_automatic_checkpoint_compacts_and_recovers(tmp_path, signature_scheme):
    router = _build_router(signature_scheme)
    storage = PublicationStorage.create(
        str(tmp_path / "pub"), router, checkpoint_every=2
    )
    _serve_updates(signature_scheme, router, storage, count=5)
    assert storage.checkpoints_written == 2
    # 5 updates, checkpoint after the 2nd and 4th: one update+rotation pair
    # remains in the compacted log.
    assert storage.relation("employees").wal.records == 2
    before = _state_fingerprint(router)
    storage.close()
    recovered = recover_router(PublicationStorage.open(str(tmp_path / "pub")))
    assert _state_fingerprint(recovered) == before


def test_crash_between_checkpoint_and_compaction_recovers(
    tmp_path, signature_scheme
):
    """checkpoint written, log not yet compacted: replay skips the prefix."""
    router = _build_router(signature_scheme)
    root = str(tmp_path / "pub")
    storage = PublicationStorage.create(root, router)
    _serve_updates(signature_scheme, router, storage, count=3)
    wal_path = os.path.join(root, "shards", "hr", "employees.wal")
    with open(wal_path, "rb") as handle:
        full_log = handle.read()
    target = router.route(router.current_id("employees"))
    storage.checkpoint_now(target, router.rotation("employees"))
    before = _state_fingerprint(router)
    storage.close()
    # Undo the compaction only: the checkpoint stays, the full log returns —
    # exactly the state a crash between the two writes leaves behind.
    with open(wal_path, "wb") as handle:
        handle.write(full_log)
    recovered = recover_router(PublicationStorage.open(root))
    assert _state_fingerprint(recovered) == before


# -- scheme polymorphism -------------------------------------------------------


@pytest.mark.parametrize("scheme_tag", ["devanbu", "naive", "vbtree"])
def test_non_chain_scheme_roundtrip(tmp_path, signature_scheme, scheme_tag):
    relation = workload.generate_employees(10, seed=23, photo_bytes=8)
    publication = get_scheme(scheme_tag).publish(relation, signature_scheme)
    publisher = get_scheme(scheme_tag).make_publisher({"employees": publication})
    router = ShardRouter({"hr": publisher})
    storage = PublicationStorage.create(str(tmp_path / "pub"), router)
    storage.close()
    recovered = recover_router(PublicationStorage.open(str(tmp_path / "pub")))
    assert recovered.current_id("employees") == router.current_id("employees")
    assert recovered.rotation("employees") == router.rotation("employees")


# -- walctl --------------------------------------------------------------------


def test_walctl_inspect_and_verify_clean_root(durable_world, tmp_path, capsys):
    _, storage, _, _ = durable_world
    storage.close()
    root = str(tmp_path / "pub")
    assert walctl(["inspect", root]) == 0
    report = capsys.readouterr().out
    assert '"records": 6' in report  # 3 updates + 3 rotations
    assert walctl(["verify", root]) == 0
    assert "OK 1 relation(s) verified" in capsys.readouterr().out


def test_walctl_verify_catches_forgery(durable_world, tmp_path, capsys):
    _, storage, _, _ = durable_world
    storage.close()
    root = str(tmp_path / "pub")
    frames = _read_wal(root)
    request = decode(frames[0], expect=UpdateRequest)
    frames[0] = encode(replace(request, owner_signature=request.owner_signature + 1))
    _rewrite_wal(root, frames)
    assert walctl(["verify", root]) == 1
    assert "owner signature does not verify" in capsys.readouterr().out


def test_walctl_repair_torn_tail_without_force(durable_world, tmp_path, capsys):
    _, storage, _, _ = durable_world
    storage.close()
    root = str(tmp_path / "pub")
    wal_path = os.path.join(root, "shards", "hr", "employees.wal")
    with open(wal_path, "ab") as handle:
        handle.write(b"\x00\x00\x01")  # three bytes of a record that never was
    assert walctl(["repair", root]) == 0
    out = capsys.readouterr().out
    assert "REPAIRED hr/employees" in out
    assert os.path.exists(wal_path + ".bak")
    assert walctl(["verify", root]) == 0


def test_walctl_repair_corruption_requires_force(durable_world, tmp_path, capsys):
    _, storage, _, _ = durable_world
    storage.close()
    root = str(tmp_path / "pub")
    wal_path = os.path.join(root, "shards", "hr", "employees.wal")
    with open(wal_path, "r+b") as handle:
        handle.seek(10)
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([byte[0] ^ 0x10]))
    assert walctl(["repair", root]) == 1
    assert "pass --force" in capsys.readouterr().out
    assert walctl(["repair", root, "--force"]) == 0
    capsys.readouterr()
    # What remains is a consistent (here: empty) verified prefix of history.
    assert walctl(["verify", root]) == 0


def test_recovered_root_manifest_ids_match_walctl_view(durable_world, tmp_path):
    router, storage, _, _ = durable_world
    storage.close()
    root = str(tmp_path / "pub")
    recovered_storage = PublicationStorage.open(root)
    checkpoint = recovered_storage.load_relation_checkpoint("hr", "employees")
    recovered = recover_router(recovered_storage)
    # The checkpoint holds the genesis rotation; replay advances past it to
    # the same current id the live router reports.
    assert checkpoint.sequence == 0
    assert recovered.current_id("employees") == router.current_id("employees")
    assert manifest_id(recovered.rotation("employees").manifest) == (
        recovered.current_id("employees")
    )
