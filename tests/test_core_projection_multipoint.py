"""Tests for projection (Section 4.2) and multipoint queries (Section 4.4)."""

import pytest

from repro.core.errors import (
    CompletenessError,
    PolicyViolationError,
    VerificationError,
)
from repro.core.proof import FilteredEntryProof, MatchedEntryProof, RangeQueryProof
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.db.access_control import visibility_column_name
from repro.db.query import (
    Conjunction,
    EqualityCondition,
    Projection,
    Query,
    RangeCondition,
)
from repro.db.workload import figure1_employee_relation


SALARY_BELOW_10K = RangeCondition("salary", None, 9999)


class TestProjection:
    def test_projection_drops_attributes_but_still_verifies(
        self, figure1_publisher, figure1_verifier
    ):
        query = Query(
            "employees",
            Conjunction((SALARY_BELOW_10K,)),
            Projection(attributes=("name",)),
        )
        result = figure1_publisher.answer(query, role="hr_manager")
        assert all(set(row) == {"salary", "name"} for row in result.rows)
        assert [row["name"] for row in result.rows] == ["A", "C", "D"]
        figure1_verifier.verify(query, result.rows, result.proof, role="hr_manager")

    def test_projection_never_ships_dropped_values(self, figure1_publisher):
        query = Query(
            "employees",
            Conjunction((SALARY_BELOW_10K,)),
            Projection(attributes=("name",)),
        )
        result = figure1_publisher.answer(query, role="hr_manager")
        # The photo BLOB must appear nowhere in the rows; only its digest is shipped.
        for row in result.rows:
            assert "photo" not in row
        for entry in result.proof.entries:
            assert isinstance(entry, MatchedEntryProof)
            assert "photo" in entry.dropped_attribute_digests

    def test_select_star_has_no_dropped_digests(self, figure1_publisher):
        query = Query("employees", Conjunction((SALARY_BELOW_10K,)))
        result = figure1_publisher.answer(query, role="hr_manager")
        for entry in result.proof.entries:
            assert entry.dropped_attribute_digests == {}

    def test_tampered_projected_value_detected(self, figure1_publisher, figure1_verifier):
        query = Query(
            "employees",
            Conjunction((SALARY_BELOW_10K,)),
            Projection(attributes=("name",)),
        )
        result = figure1_publisher.answer(query, role="hr_manager")
        tampered = [dict(row) for row in result.rows]
        tampered[1]["name"] = "Mallory"
        with pytest.raises(VerificationError):
            figure1_verifier.verify(query, tampered, result.proof, role="hr_manager")

    def test_row_with_extra_attribute_rejected(self, figure1_publisher, figure1_verifier):
        query = Query(
            "employees",
            Conjunction((SALARY_BELOW_10K,)),
            Projection(attributes=("name",)),
        )
        result = figure1_publisher.answer(query, role="hr_manager")
        leaky = [dict(row, dept=1) for row in result.rows]
        with pytest.raises(VerificationError):
            figure1_verifier.verify(query, leaky, result.proof, role="hr_manager")

    def test_distinct_projection_presents_duplicate_proofs(self, owner):
        from repro.db.relation import Relation
        from repro.db.workload import employee_schema

        rows = [
            {"salary": 1000 + i, "emp_id": str(i), "name": "same", "dept": 1, "photo": b""}
            for i in range(4)
        ]
        relation = Relation.from_rows(employee_schema(), rows)
        signed = owner.publish_relation(relation)
        publisher = Publisher({"employees": signed})
        verifier = ResultVerifier({"employees": signed.manifest})
        query = Query(
            "employees",
            Conjunction((RangeCondition("salary", None, None),)),
            Projection(attributes=("name", "dept"), distinct=True),
        )
        # The key is always retained, so rows stay distinct; use a query whose
        # projection is key-free only in the non-key attributes.  All four rows
        # share name/dept, but distinct keys keep them apart: no elimination.
        result = publisher.answer(query)
        assert len(result.rows) == 4
        verifier.verify(query, result.rows, result.proof)


class TestMultipointQueries:
    def test_paper_multipoint_example(self, figure1_publisher, figure1_verifier):
        """SELECT * FROM Emp WHERE Salary < 10000 AND Dept = 1 (Section 4.4)."""
        query = Query(
            "employees",
            Conjunction((SALARY_BELOW_10K, EqualityCondition("dept", 1))),
        )
        result = figure1_publisher.answer(query, role="hr_manager")
        assert [row["name"] for row in result.rows] == ["A", "D"]
        kinds = [type(entry).__name__ for entry in result.proof.entries]
        assert kinds == ["MatchedEntryProof", "FilteredEntryProof", "MatchedEntryProof"]
        figure1_verifier.verify(query, result.rows, result.proof, role="hr_manager")

    def test_filtered_entry_reveals_only_failing_attribute(self, figure1_publisher):
        query = Query(
            "employees",
            Conjunction((SALARY_BELOW_10K, EqualityCondition("dept", 1))),
        )
        result = figure1_publisher.answer(query, role="hr_manager")
        filtered = [e for e in result.proof.entries if isinstance(e, FilteredEntryProof)]
        assert len(filtered) == 1
        assert filtered[0].reason == "predicate"
        assert set(filtered[0].revealed_attributes) == {"dept"}
        assert filtered[0].revealed_attributes["dept"] == 2
        # All other attributes travel as digests only.
        assert "name" in filtered[0].attribute_leaf_digests
        assert "photo" in filtered[0].attribute_leaf_digests

    def test_query_on_unsorted_attribute_only(self, figure1_publisher, figure1_verifier):
        """A selection purely on an unsorted attribute scans the whole key range."""
        query = Query("employees", Conjunction((EqualityCondition("dept", 2),)))
        result = figure1_publisher.answer(query, role="hr_manager")
        assert [row["name"] for row in result.rows] == ["C", "E"]
        assert len(result.proof.entries) == 5  # every record is in the scanned range
        figure1_verifier.verify(query, result.rows, result.proof, role="hr_manager")

    def test_multipoint_with_no_matches_still_proves_range(
        self, figure1_publisher, figure1_verifier
    ):
        query = Query("employees", Conjunction((EqualityCondition("dept", 99),)))
        result = figure1_publisher.answer(query, role="hr_manager")
        assert result.rows == []
        assert len(result.proof.entries) == 5
        figure1_verifier.verify(query, result.rows, result.proof, role="hr_manager")

    def test_publisher_cannot_claim_matching_record_was_filtered(
        self, figure1_publisher, figure1_verifier
    ):
        """A cheating publisher marks a qualifying record as filtered-out."""
        query = Query(
            "employees",
            Conjunction((SALARY_BELOW_10K, EqualityCondition("dept", 1))),
        )
        honest = figure1_publisher.answer(query, role="hr_manager")
        # Forge: drop the last matching row and replace its matched entry with a
        # filtered entry whose revealed attribute *does* satisfy the condition.
        victim_entry = honest.proof.entries[2]
        signed = figure1_publisher.signed_relation("employees")
        record = signed.relation[2]  # salary 8010, dept 1 (the victim)
        upper, lower, _ = signed.components(3)
        leaf_digests = figure1_publisher._attribute_leaf_digests(
            signed, record, [a.name for a in signed.schema.non_key_attributes if a.name != "dept"]
        )
        forged_entry = FilteredEntryProof(
            revealed_attributes={"dept": record["dept"]},
            attribute_leaf_digests=leaf_digests,
            upper_chain_digest=upper,
            lower_chain_digest=lower,
            reason="predicate",
        )
        forged_proof = RangeQueryProof(
            key_low=honest.proof.key_low,
            key_high=honest.proof.key_high,
            lower_boundary=honest.proof.lower_boundary,
            upper_boundary=honest.proof.upper_boundary,
            entries=honest.proof.entries[:2] + (forged_entry,),
            signatures=honest.proof.signatures,
            outer_neighbor_digest=honest.proof.outer_neighbor_digest,
        )
        with pytest.raises(CompletenessError) as excinfo:
            figure1_verifier.verify(
                query, honest.rows[:-1], forged_proof, role="hr_manager"
            )
        assert excinfo.value.reason in ("unjustified-filtering", "signature-mismatch")


class TestAccessControl:
    def test_hr_executive_rewrite_restricts_range(
        self, figure1_publisher, figure1_verifier
    ):
        """The introduction's scenario: the executive's query is rewritten to < 9000."""
        query = Query("employees", Conjunction((SALARY_BELOW_10K,)))
        result = figure1_publisher.answer(query, role="hr_executive")
        assert [row["name"] for row in result.rows] == ["A", "C", "D"]
        # No record with salary >= 9000 is exposed anywhere in the proof.
        assert result.rewritten_query.where.key_condition(
            figure1_publisher.signed_relation("employees").schema
        ).high == 8999
        figure1_verifier.verify(query, result.rows, result.proof, role="hr_executive")

    def test_executive_result_differs_from_manager(self, figure1_publisher):
        query = Query("employees", Conjunction((RangeCondition("salary", None, 15000),)))
        manager = figure1_publisher.answer(query, role="hr_manager")
        executive = figure1_publisher.answer(query, role="hr_executive")
        assert len(manager.rows) == 4
        assert len(executive.rows) == 3

    def test_verifier_applies_same_rewriting(self, figure1_publisher, figure1_verifier):
        """A publisher ignoring access control produces a proof for the wrong range."""
        query = Query("employees", Conjunction((SALARY_BELOW_10K,)))
        unrestricted = figure1_publisher.answer(query, role="hr_manager")
        with pytest.raises(VerificationError):
            figure1_verifier.verify(
                query, unrestricted.rows, unrestricted.proof, role="hr_executive"
            )

    @pytest.fixture(scope="class")
    def department_policy(self):
        """A policy restricting a role through a *non-key* attribute.

        Row restrictions on the sort key fold into the query range (as the
        hr_executive example shows); restrictions on other attributes are the
        ones that trigger the Section 4.4 case-2 machinery.
        """
        from repro.db.access_control import AccessControlPolicy, Role

        policy = AccessControlPolicy()
        policy.add_role(Role("dept1_viewer", row_conditions=(EqualityCondition("dept", 1),)))
        policy.add_role(Role("auditor"))
        return policy

    @pytest.fixture(scope="class")
    def department_setup(self, owner, department_policy):
        from repro.db.access_control import add_visibility_columns

        relation = add_visibility_columns(figure1_employee_relation(), department_policy)
        database = owner.publish_database({"employees": relation})
        publisher = Publisher(database.relations, policy=department_policy)
        verifier = ResultVerifier(database.manifests, policy=department_policy)
        return publisher, verifier

    def test_multipoint_access_control_uses_visibility_column(self, department_setup):
        """Section 4.4 case 2: hidden records justified by the visibility column."""
        publisher, verifier = department_setup
        query = Query("employees", Conjunction((SALARY_BELOW_10K,)))
        result = publisher.answer(query, role="dept1_viewer")
        # Salary < 10000 gives A (dept 1), C (dept 2, hidden), D (dept 1).
        assert [row["name"] for row in result.rows] == ["A", "D"]
        filtered = [
            entry
            for entry in result.proof.entries
            if isinstance(entry, FilteredEntryProof)
        ]
        assert [entry.reason for entry in filtered] == ["access-control"]
        hidden = filtered[0]
        assert hidden.revealed_attributes == {
            visibility_column_name("dept1_viewer"): False
        }
        # Neither the salary nor any other sensitive value is revealed.
        assert "salary" not in hidden.revealed_attributes
        assert "name" not in hidden.revealed_attributes
        assert "dept" not in hidden.revealed_attributes
        verifier.verify(query, result.rows, result.proof, role="dept1_viewer")

    def test_access_control_without_visibility_columns_refused(
        self, owner, department_policy
    ):
        """Without visibility columns the publisher cannot hide records silently."""
        bare_relation = figure1_employee_relation()
        database = owner.publish_database({"employees": bare_relation})
        publisher = Publisher(database.relations, policy=department_policy)
        query = Query("employees", Conjunction((SALARY_BELOW_10K,)))
        with pytest.raises(PolicyViolationError):
            publisher.answer(query, role="dept1_viewer")

    def test_hidden_record_count_is_revealed_but_not_content(self, department_setup):
        publisher, verifier = department_setup
        query = Query("employees")  # the whole table
        result = publisher.answer(query, role="dept1_viewer")
        assert [row["name"] for row in result.rows] == ["A", "D"]
        filtered = [
            entry
            for entry in result.proof.entries
            if isinstance(entry, FilteredEntryProof) and entry.reason == "access-control"
        ]
        # The paper: the solution reveals the *number* of hidden records only.
        assert len(filtered) == 3  # C, B and E are hidden from dept1_viewer
        verifier.verify(query, result.rows, result.proof, role="dept1_viewer")

    def test_missing_role_rejected_when_records_hidden(self, department_setup):
        """A proof hiding records behind access control needs the user's role."""
        publisher, verifier = department_setup
        query = Query("employees", Conjunction((SALARY_BELOW_10K,)))
        result = publisher.answer(query, role="dept1_viewer")
        with pytest.raises(VerificationError):
            verifier.verify(query, result.rows, result.proof, role=None)
