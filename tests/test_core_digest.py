"""Unit tests for the conceptual and optimized chain digest schemes."""

import pytest

from repro.core.digest import (
    BoundaryAssist,
    ConceptualChainScheme,
    EntryAssist,
    OptimizedChainScheme,
)
from repro.core.errors import CheatingAttemptError
from repro.crypto.hashing import HASH_COUNTER


DOMAIN_WIDTH = 1000


@pytest.fixture(params=["conceptual", "optimized"])
def scheme(request):
    if request.param == "conceptual":
        return ConceptualChainScheme(DOMAIN_WIDTH, "upper")
    return OptimizedChainScheme(DOMAIN_WIDTH, "upper", base=3)


class TestCommitments:
    def test_commitment_deterministic(self, scheme):
        assert scheme.commitment(42, 500) == scheme.commitment(42, 500)

    def test_commitment_depends_on_value_and_total(self, scheme):
        assert scheme.commitment(42, 500) != scheme.commitment(43, 500)
        assert scheme.commitment(42, 500) != scheme.commitment(42, 501)

    def test_commitment_depends_on_namespace(self):
        upper = OptimizedChainScheme(DOMAIN_WIDTH, "upper", base=3)
        lower = OptimizedChainScheme(DOMAIN_WIDTH, "lower", base=3)
        assert upper.commitment(42, 500) != lower.commitment(42, 500)

    def test_negative_total_rejected(self, scheme):
        with pytest.raises(ValueError):
            scheme.commitment(42, -1)

    def test_entry_round_trip(self, scheme):
        value, total = 77, DOMAIN_WIDTH - 77 - 1
        committed = scheme.commitment(value, total)
        assist = scheme.entry_assist(value, total)
        assert scheme.recompute_from_value(value, total, assist) == committed

    def test_entry_round_trip_wrong_value_fails(self, scheme):
        value, total = 77, DOMAIN_WIDTH - 77 - 1
        committed = scheme.commitment(value, total)
        assist = scheme.entry_assist(value, total)
        assert scheme.recompute_from_value(value + 1, total, assist) != committed


class TestBoundaryProofs:
    @pytest.mark.parametrize("value,alpha", [(10, 11), (10, 500), (499, 500), (0, 999), (998, 999)])
    def test_boundary_round_trip(self, scheme, value, alpha):
        """Prove value < alpha without revealing value, as the verifier would."""
        total = DOMAIN_WIDTH - value - 1  # upper-chain exponent
        delta_c = DOMAIN_WIDTH - alpha
        committed = scheme.commitment(value, total)
        assist = scheme.boundary_proof(value, total, delta_c)
        assert scheme.recompute_from_boundary(delta_c, assist) == committed

    def test_boundary_proof_refused_when_claim_false(self, scheme):
        # value >= alpha: delta_e would be negative; an honest publisher refuses.
        value, alpha = 600, 500
        total = DOMAIN_WIDTH - value - 1
        delta_c = DOMAIN_WIDTH - alpha
        with pytest.raises(CheatingAttemptError):
            scheme.boundary_proof(value, total, delta_c)

    def test_boundary_proof_refused_at_equality(self, scheme):
        value = alpha = 500
        total = DOMAIN_WIDTH - value - 1
        with pytest.raises(CheatingAttemptError):
            scheme.boundary_proof(value, total, DOMAIN_WIDTH - alpha)

    def test_boundary_just_satisfied(self, scheme):
        # value == alpha - 1 is the tightest true claim.
        value, alpha = 499, 500
        total = DOMAIN_WIDTH - value - 1
        assist = scheme.boundary_proof(value, total, DOMAIN_WIDTH - alpha)
        assert scheme.recompute_from_boundary(DOMAIN_WIDTH - alpha, assist) == (
            scheme.commitment(value, total)
        )

    def test_forged_intermediate_digest_changes_result(self, scheme):
        value, alpha = 100, 500
        total = DOMAIN_WIDTH - value - 1
        delta_c = DOMAIN_WIDTH - alpha
        committed = scheme.commitment(value, total)
        assist = scheme.boundary_proof(value, total, delta_c)
        forged = BoundaryAssist(
            intermediate_digests=tuple(
                b"\x00" * len(d) for d in assist.intermediate_digests
            ),
            used_canonical=assist.used_canonical,
            mht_root=assist.mht_root,
            canonical_digest=assist.canonical_digest,
            mht_proof=assist.mht_proof,
        )
        assert scheme.recompute_from_boundary(delta_c, forged) != committed

    def test_boundary_digest_count_positive(self, scheme):
        assist = scheme.boundary_proof(10, DOMAIN_WIDTH - 11, 5)
        assert assist.digest_count >= 1


class TestOptimizedSpecifics:
    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            OptimizedChainScheme(DOMAIN_WIDTH, "upper", base=1)

    def test_num_digits_matches_domain(self):
        assert OptimizedChainScheme(2**16, "upper", base=2).num_digits == 16
        assert OptimizedChainScheme(1000, "upper", base=10).num_digits == 3

    def test_entry_assist_carries_tree_root(self):
        scheme = OptimizedChainScheme(DOMAIN_WIDTH, "upper", base=4)
        assist = scheme.entry_assist(5, 100)
        assert assist.mht_root is not None
        assert assist.digest_count == 1

    def test_entry_verification_requires_root(self):
        scheme = OptimizedChainScheme(DOMAIN_WIDTH, "upper", base=4)
        with pytest.raises(ValueError):
            scheme.recompute_from_value(5, 100, EntryAssist(mht_root=None))

    def test_wrong_intermediate_count_rejected(self):
        scheme = OptimizedChainScheme(DOMAIN_WIDTH, "upper", base=4)
        assist = scheme.boundary_proof(5, 100, 50)
        truncated = BoundaryAssist(
            intermediate_digests=assist.intermediate_digests[:-1],
            used_canonical=assist.used_canonical,
            mht_root=assist.mht_root,
            canonical_digest=assist.canonical_digest,
            mht_proof=assist.mht_proof,
        )
        with pytest.raises(ValueError):
            scheme.recompute_from_boundary(50, truncated)

    @pytest.mark.parametrize("base", [2, 3, 5, 10])
    def test_both_canonical_and_non_canonical_paths_exercised(self, base):
        """Sweep many (value, alpha) pairs; both proof shapes must round-trip."""
        scheme = OptimizedChainScheme(DOMAIN_WIDTH, "upper", base=base)
        canonical_seen = non_canonical_seen = False
        for value in range(0, 400, 23):
            for alpha in range(value + 1, 999, 97):
                total = DOMAIN_WIDTH - value - 1
                delta_c = DOMAIN_WIDTH - alpha
                assist = scheme.boundary_proof(value, total, delta_c)
                canonical_seen |= assist.used_canonical
                non_canonical_seen |= not assist.used_canonical
                assert scheme.recompute_from_boundary(delta_c, assist) == (
                    scheme.commitment(value, total)
                )
        assert canonical_seen and non_canonical_seen

    def test_single_digit_domain(self):
        scheme = OptimizedChainScheme(8, "upper", base=10)
        assert scheme.num_digits == 1
        committed = scheme.commitment(3, 4)
        assist = scheme.boundary_proof(3, 4, 2)
        assert scheme.recompute_from_boundary(2, assist) == committed

    def test_hashing_is_logarithmic_in_domain(self):
        """The Section 5.1 point: optimized hashing ~ B*log_B(width), not width."""
        width = 2**20
        conceptual_cost_estimate = width  # would be ~a million hashes
        scheme = OptimizedChainScheme(width, "upper", base=2)
        HASH_COUNTER.reset()
        scheme.commitment(12345, width - 12346)
        measured = HASH_COUNTER.reset()
        assert measured < 5000 < conceptual_cost_estimate

    def test_lower_chain_usage(self):
        """The same machinery proves value > beta through the lower chain."""
        scheme = OptimizedChainScheme(DOMAIN_WIDTH, "lower", base=2)
        lower_bound = 0
        value, beta = 700, 600
        total = value - lower_bound - 1
        delta_c = beta - lower_bound
        committed = scheme.commitment(value, total)
        assist = scheme.boundary_proof(value, total, delta_c)
        assert scheme.recompute_from_boundary(delta_c, assist) == committed
        # And the proof is refused when value <= beta.
        with pytest.raises(CheatingAttemptError):
            scheme.boundary_proof(500, 500 - 1, delta_c)
