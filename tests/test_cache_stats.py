"""Bounded caches and cache_stats() observability (long-running servers)."""

from __future__ import annotations

import pytest

from repro.cache import BoundedCache
from repro.core.publisher import Publisher
from repro.core.relational import SignedRelation
from repro.core.verifier import ResultVerifier
from repro.crypto import rsa
from repro.db import workload
from repro.db.query import Conjunction, Query, RangeCondition
from repro.service import PublicationServer, VerifyingClient, build_demo_world

RANGE = Query("employees", Conjunction((RangeCondition("salary", 1_000, 90_000),)))


def test_bounded_cache_counts_and_evicts():
    cache = BoundedCache(2)
    assert cache.get("a") is None
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1
    cache.put("c", 3)  # evicts the oldest ("a")
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["size"] == 2 and stats["capacity"] == 2
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert cache.get("a") is None


def test_publisher_cache_stats_and_capacity(signature_scheme):
    relation = workload.generate_employees(40, seed=3, photo_bytes=8)
    signed = SignedRelation(relation, signature_scheme)
    publisher = Publisher({"employees": signed}, vo_cache_max=64)
    publisher.answer(RANGE)
    publisher.answer(RANGE)
    stats = publisher.cache_stats()
    fragments = stats["vo_fragments"]
    assert fragments["capacity"] == 64
    assert fragments["hits"] > 0 and fragments["misses"] > 0
    assert publisher.vo_cache_hits == fragments["hits"]
    assert "employees" in stats["signature_memos"]


def test_verifier_cache_stats(signature_scheme):
    relation = workload.generate_employees(30, seed=4, photo_bytes=8)
    signed = SignedRelation(relation, signature_scheme)
    publisher = Publisher({"employees": signed})
    verifier = ResultVerifier({"employees": signed.manifest})
    result = publisher.answer(RANGE)
    verifier.verify(RANGE, result.rows, result.proof)
    stats = verifier.cache_stats()
    assert set(stats["fdh"]) == {"hits", "misses", "evictions", "size", "capacity"}
    assert stats["chain_schemes"]["size"] == 1


def test_fdh_and_signature_memo_capacities_configurable():
    original = rsa.fdh_cache_stats()["capacity"]
    try:
        rsa.configure_fdh_cache(16)
        assert rsa.fdh_cache_stats()["capacity"] == 16
        for index in range(40):  # far past the bound; the memo must not grow
            rsa.full_domain_hash(b"cap|%d" % index, 2**64 + 13)
        assert rsa.fdh_cache_stats()["size"] <= 16
        with pytest.raises(ValueError):
            rsa.configure_fdh_cache(0)
        with pytest.raises(ValueError):
            rsa.configure_signature_memo(0)
    finally:
        rsa.configure_fdh_cache(original)


def test_server_cache_stats_cover_responses_and_shards():
    world = build_demo_world(key_bits=512, seed=5)
    with PublicationServer(world.router) as server:
        host, port = server.address
        with VerifyingClient(host, port) as client:
            client.query(RANGE, verify=False)
            client.query(RANGE, verify=False)
        stats = server.cache_stats()
        assert stats["responses"]["hits"] >= 1
        assert set(stats["shards"]) == {"hr", "sales"}
        for shard_stats in stats["shards"].values():
            assert "vo_fragments" in shard_stats
