"""Readers query while the owner streams updates: no torn snapshots.

The acceptance scenario of the live-update pipeline: one owner pushes ≥ 50
mixed insert/delete/update deltas to a live server while several
:class:`~repro.service.client.VerifyingClient` threads query concurrently.
Checked:

* every answer *verifies* against the manifest the client held;
* every answer equals the owner's shadow model **at exactly the sequence the
  answer reports** — a torn snapshot (rows from one version, id from
  another) or a desynced frame would break the match or the verification;
* clients transparently re-pin across rotations (the trust-root refresh);
* the final state verifies, and forged or replayed updates are rejected
  with typed errors.
"""

import threading

import pytest

pytestmark = pytest.mark.concurrency

from repro.core.publisher import Publisher
from repro.db import workload
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.relation import Relation
from repro.service import (
    OwnerClient,
    PublicationServer,
    RecordDelta,
    RemoteError,
    ServerConfig,
    ShardRouter,
    VerifyingClient,
    build_update_request,
    delta_sequence_cost,
)

READERS = 4
DELTA_BATCHES = 52  # some batches carry several deltas: > 60 deltas total

FULL_RANGE = Query(
    "employees", Conjunction((RangeCondition("salary", 0, 100_000),))
)


def _row(salary, tag):
    return {
        "salary": salary,
        "emp_id": f"c-{tag}",
        "name": str(tag),
        "dept": 1 + (salary % 5),
        "photo": bytes([salary % 251]) * 8,
    }


def _delta_batches(initial_rows):
    """A deterministic stream of ≥ 50 batches of mixed deltas."""
    rows = [dict(row) for row in initial_rows]
    batches = []
    next_salary = 11
    for step in range(DELTA_BATCHES):
        batch = []
        action = step % 4
        if action == 0 or len(rows) < 3:
            row = _row(next_salary, f"i{step}")
            next_salary += 89
            rows.append(row)
            batch.append(RecordDelta(kind="insert", values=row))
            if step % 8 == 0:  # occasionally a multi-delta batch
                extra = _row(next_salary, f"j{step}")
                next_salary += 89
                rows.append(extra)
                batch.append(RecordDelta(kind="insert", values=extra))
        elif action == 1:
            victim = rows.pop(step % len(rows))
            batch.append(RecordDelta(kind="delete", values=victim))
        elif action == 2:
            old = rows.pop(step % len(rows))
            new = dict(old, name=old["name"] + "*")
            rows.append(new)
            batch.append(RecordDelta(kind="update", values=new, old_values=old))
        else:
            old = rows.pop(step % len(rows))
            new = dict(old, dept=(old["dept"] % 5) + 1)
            rows.append(new)
            batch.append(RecordDelta(kind="update", values=new, old_values=old))
            victim = rows.pop((step * 7) % len(rows))
            batch.append(RecordDelta(kind="delete", values=victim))
        batches.append(tuple(batch))
    return batches


def test_streaming_owner_with_concurrent_verified_readers(owner):
    relation = workload.generate_employees(30, seed=21, photo_bytes=8)
    initial_rows = [record.as_dict() for record in relation.records]
    database = owner.publish_database({"employees": relation})
    signed = database["employees"]
    router = ShardRouter({"hr": Publisher(database.relations)})

    # The owner's shadow model, advanced *before* each push so that any
    # sequence a reader can possibly observe already has its snapshot.
    shadow = Relation.from_rows(signed.schema, initial_rows)
    snapshots = {0: [record.as_dict() for record in shadow.records]}
    snapshots_lock = threading.Lock()

    batches = _delta_batches(initial_rows)
    total_deltas = sum(len(batch) for batch in batches)
    assert total_deltas >= 50

    observations = []  # (sequence, rows) per verified reader answer
    errors = []
    done = threading.Event()

    with PublicationServer(
        router, config=ServerConfig(max_workers=READERS + 2)
    ) as server:
        host, port = server.address

        def reader():
            try:
                with VerifyingClient(
                    host, port, trusted_manifests=dict(database.manifests)
                ) as client:
                    local = []
                    while not done.is_set():
                        result = client.query(FULL_RANGE)
                        assert result.report is not None
                        local.append((result.manifest_sequence, result.rows))
                    # One final look at the settled state.
                    result = client.query(FULL_RANGE)
                    local.append((result.manifest_sequence, result.rows))
                    observations.append(local)
            except BaseException as error:  # pragma: no cover - surfaced below
                errors.append(error)
                done.set()

        threads = [threading.Thread(target=reader) for _ in range(READERS)]
        for thread in threads:
            thread.start()

        try:
            with OwnerClient(host, port, owner.signature_scheme) as owner_client:
                sequence = 0
                for batch in batches:
                    for delta in batch:
                        if delta.kind == "insert":
                            shadow.insert(dict(delta.values))
                        elif delta.kind == "delete":
                            shadow.delete(
                                Relation.from_rows(
                                    signed.schema, [dict(delta.values)]
                                ).records[0]
                            )
                        else:
                            shadow.delete(
                                Relation.from_rows(
                                    signed.schema, [dict(delta.old_values)]
                                ).records[0]
                            )
                            shadow.insert(dict(delta.values))
                    sequence += delta_sequence_cost(batch)
                    with snapshots_lock:
                        snapshots[sequence] = [
                            record.as_dict() for record in shadow.records
                        ]
                    response = owner_client.push("employees", batch)
                    assert response.rotation.manifest.sequence == sequence
        finally:
            done.set()
            for thread in threads:
                thread.join(timeout=60)

    assert not errors, errors
    assert len(observations) == READERS

    # Every verified answer must match the shadow model at exactly the
    # sequence the answer was attributed to — no torn snapshots.
    checked = 0
    sequences_seen = set()
    for local in observations:
        for sequence, rows in local:
            expected = snapshots[sequence]
            assert [dict(row) for row in rows] == expected, (
                f"answer at sequence {sequence} does not match the shadow model"
            )
            sequences_seen.add(sequence)
            checked += 1
    assert checked >= READERS  # every reader produced at least its final answer
    assert max(sequences_seen) == sequence, "no reader observed the final state"
    assert len(sequences_seen) > 1, "readers never observed a rotation"

    # The settled relation still self-verifies owner-side.
    assert signed.version == sequence
    assert signed.verify_internal_consistency()


def test_forged_and_replayed_updates_rejected_while_live(owner, forged_scheme):
    """Typed rejection of forged / stale updates; replays answer idempotently."""
    relation = workload.generate_employees(12, seed=22, photo_bytes=8)
    database = owner.publish_database({"employees": relation})
    router = ShardRouter({"hr": Publisher(database.relations)})
    with PublicationServer(router) as server:
        host, port = server.address
        with OwnerClient(host, port, owner.signature_scheme) as owner_client:
            manifest = owner_client.manifest("employees")
            batch = (RecordDelta(kind="insert", values=_row(17, "genuine")),)

            forged = build_update_request(forged_scheme, manifest, batch)
            with pytest.raises(RemoteError) as excinfo:
                owner_client._request(forged, object)
            assert excinfo.value.code == "OwnerAuthError"

            genuine = build_update_request(
                owner.signature_scheme, manifest, batch
            )
            first = owner_client._request(genuine, object)
            assert first.rotation.manifest.sequence == 1

            # Replaying the byte-identical frame is idempotent: the server
            # answers the original receipt from its applied-update registry
            # without re-applying (this is what makes lost-ack resends safe).
            replayed = owner_client._request(genuine, object)
            assert replayed == first
            assert database["employees"].version == 1

            # A *different* update signed against the superseded manifest is
            # still a typed stale-update rejection, not a silent re-anchor.
            stale = build_update_request(
                owner.signature_scheme,
                manifest,
                (RecordDelta(kind="insert", values=_row(19, "stale")),),
            )
            with pytest.raises(RemoteError) as excinfo:
                owner_client._request(stale, object)
            assert excinfo.value.code == "StaleManifestError"
            assert excinfo.value.reason == "stale-update"

    assert database["employees"].version == 1
