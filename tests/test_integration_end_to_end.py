"""Integration tests: the full owner → publisher → user pipeline.

These tests exercise the whole stack (workload generation, signing, query
answering, proof construction, verification) on randomised query mixes and on
the paper's own scenarios, including a randomised adversarial sweep that mixes
honest and manipulated results.
"""

import random

import pytest

from repro.core.errors import VerificationError
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.db.query import (
    Conjunction,
    EqualityCondition,
    JoinQuery,
    Projection,
    Query,
    RangeCondition,
)
from repro.db.workload import (
    generate_customers_and_orders,
    generate_employees,
    generate_stock_prices,
)


class TestRandomisedQueryMix:
    @pytest.fixture(scope="class")
    def world(self, owner):
        relation = generate_employees(120, seed=2024, photo_bytes=8, departments=5)
        signed = owner.publish_relation(relation)
        return relation, Publisher({"employees": signed}), ResultVerifier(
            {"employees": signed.manifest}
        )

    def test_fifty_random_range_queries(self, world):
        relation, publisher, verifier = world
        rng = random.Random(1)
        keys = relation.keys()
        for _ in range(50):
            low, high = sorted((rng.randrange(1, 99_999), rng.randrange(1, 99_999)))
            query = Query(
                "employees", Conjunction((RangeCondition("salary", low, high),))
            )
            result = publisher.answer(query)
            expected = [k for k in keys if low <= k <= high]
            assert [row["salary"] for row in result.rows] == expected
            report = verifier.verify(query, result.rows, result.proof)
            assert report.result_rows == len(expected)

    def test_twenty_random_multipoint_queries(self, world):
        relation, publisher, verifier = world
        rng = random.Random(2)
        for _ in range(20):
            low, high = sorted((rng.randrange(1, 99_999), rng.randrange(1, 99_999)))
            dept = rng.randrange(1, 6)
            query = Query(
                "employees",
                Conjunction(
                    (RangeCondition("salary", low, high), EqualityCondition("dept", dept))
                ),
                Projection(attributes=("name", "dept")),
            )
            result = publisher.answer(query)
            expected = [
                record.key
                for record in relation
                if low <= record.key <= high and record["dept"] == dept
            ]
            assert [row["salary"] for row in result.rows] == expected
            verifier.verify(query, result.rows, result.proof)

    def test_adversarial_sweep(self, world):
        """Random manipulations of honest results must always be rejected."""
        relation, publisher, verifier = world
        rng = random.Random(3)
        keys = relation.keys()
        rejected = 0
        attempts = 0
        for _ in range(20):
            low, high = sorted((rng.choice(keys), rng.choice(keys)))
            query = Query(
                "employees", Conjunction((RangeCondition("salary", low, high),))
            )
            result = publisher.answer(query)
            if not result.rows:
                continue
            attempts += 1
            manipulation = rng.choice(["drop", "tamper", "reorder", "inject"])
            rows = [dict(row) for row in result.rows]
            if manipulation == "drop":
                rows.pop(rng.randrange(len(rows)))
            elif manipulation == "tamper":
                rows[rng.randrange(len(rows))]["name"] = "EVIL"
            elif manipulation == "reorder" and len(rows) > 1:
                rows[0], rows[-1] = rows[-1], rows[0]
            elif manipulation == "inject":
                ghost = dict(rows[0])
                ghost["emp_id"] = "ghost"
                rows.append(ghost)
            else:
                continue
            if rows == result.rows:
                continue
            try:
                verifier.verify(query, rows, result.proof)
            except VerificationError:
                rejected += 1
        assert attempts > 0 and rejected == attempts


class TestStockPublishingScenario:
    """The introduction's motivating scenario: historical prices at ISP proxies."""

    @pytest.fixture(scope="class")
    def market(self, owner):
        prices = generate_stock_prices(250, symbol="ACME", seed=7)
        signed = owner.publish_relation(prices)
        return prices, Publisher({"prices": signed}), ResultVerifier(
            {"prices": signed.manifest}
        )

    def test_quarter_window_query(self, market):
        prices, publisher, verifier = market
        query = Query("prices", Conjunction((RangeCondition("trade_day", 60, 120),)))
        result = publisher.answer(query)
        assert len(result.rows) == 61
        verifier.verify(query, result.rows, result.proof)

    def test_projection_hides_volume(self, market):
        prices, publisher, verifier = market
        query = Query(
            "prices",
            Conjunction((RangeCondition("trade_day", 1, 30),)),
            Projection(attributes=("close",)),
        )
        result = publisher.answer(query)
        assert all(set(row) == {"trade_day", "close"} for row in result.rows)
        verifier.verify(query, result.rows, result.proof)

    def test_dishonest_proxy_detected(self, market):
        prices, publisher, verifier = market
        query = Query("prices", Conjunction((RangeCondition("trade_day", 100, 200),)))
        result = publisher.answer(query)
        doctored = [dict(row) for row in result.rows]
        doctored[50]["close"] = doctored[50]["close"] + 10.0
        with pytest.raises(VerificationError):
            verifier.verify(query, doctored, result.proof)


class TestMultiRelationDatabase:
    def test_join_and_selection_through_one_owner_key(self, owner):
        customers, orders = generate_customers_and_orders(30, 100, seed=44)
        database = owner.publish_database({"customers": customers, "orders": orders})
        publisher = Publisher(database.relations)
        verifier = ResultVerifier(database.manifests)

        cutoff = sorted(customers.keys())[15]
        join = JoinQuery(
            "orders",
            "customers",
            "customer_id",
            "customer_id",
            Conjunction((RangeCondition("customer_id", None, cutoff),)),
        )
        join_result = publisher.answer_join(join)
        verifier.verify_join(
            join, join_result.rows, join_result.proof, join_result.left_rows
        )

        point = Query(
            "customers",
            Conjunction((RangeCondition("customer_id", cutoff, cutoff),)),
        )
        point_result = publisher.answer(point)
        verifier.verify(point, point_result.rows, point_result.proof)

    def test_manifests_do_not_contain_data(self, owner):
        relation = generate_employees(10, seed=5, photo_bytes=2)
        database = owner.publish_database({"employees": relation})
        manifest = database.manifests["employees"]
        # The manifest exposes schema and scheme parameters, never records.
        assert not hasattr(manifest, "relation")
        assert manifest.schema.attribute_names == relation.schema.attribute_names


class TestDifferentSchemeConfigurations:
    @pytest.mark.parametrize("base", [2, 3, 10])
    def test_bases_round_trip(self, signature_scheme, base):
        from repro.core.owner import DataOwner

        owner = DataOwner(signature_scheme=signature_scheme, base=base)
        relation = generate_employees(15, seed=base, photo_bytes=2)
        signed = owner.publish_relation(relation)
        publisher = Publisher({"employees": signed})
        verifier = ResultVerifier({"employees": signed.manifest})
        keys = relation.keys()
        query = Query(
            "employees", Conjunction((RangeCondition("salary", keys[3], keys[10]),))
        )
        result = publisher.answer(query)
        verifier.verify(query, result.rows, result.proof)

    def test_conceptual_relational_scheme_small_domain(self, signature_scheme):
        from repro.core.owner import DataOwner
        from repro.db.relation import Relation
        from repro.db.schema import Attribute, AttributeType, KeyDomain, Schema

        schema = Schema.build(
            "tiny",
            [
                Attribute("id", AttributeType.INTEGER, domain=KeyDomain(0, 128)),
                Attribute("label", AttributeType.STRING),
            ],
            key="id",
        )
        relation = Relation.from_rows(
            schema, [{"id": i, "label": f"row{i}"} for i in range(1, 40, 3)]
        )
        owner = DataOwner(signature_scheme=signature_scheme, scheme_kind="conceptual")
        signed = owner.publish_relation(relation)
        publisher = Publisher({"tiny": signed})
        verifier = ResultVerifier({"tiny": signed.manifest})
        query = Query("tiny", Conjunction((RangeCondition("id", 10, 30),)))
        result = publisher.answer(query)
        assert [row["id"] for row in result.rows] == [10, 13, 16, 19, 22, 25, 28]
        verifier.verify(query, result.rows, result.proof)

    def test_mixed_hash_function(self, signature_scheme):
        from repro.core.owner import DataOwner
        from repro.crypto.hashing import HashFunction

        owner = DataOwner(
            signature_scheme=signature_scheme, hash_function=HashFunction("sha1")
        )
        relation = generate_employees(10, seed=9, photo_bytes=2)
        signed = owner.publish_relation(relation)
        publisher = Publisher({"employees": signed})
        verifier = ResultVerifier({"employees": signed.manifest})
        query = Query("employees")
        result = publisher.answer(query)
        verifier.verify(query, result.rows, result.proof)
