"""Unit tests for the canonical byte encodings."""

import pytest

from repro.crypto import encoding


class TestIntToBytes:
    def test_round_trip_positive(self):
        for value in (0, 1, 7, 255, 256, 2**31, 2**64 + 3):
            assert encoding.bytes_to_int(encoding.int_to_bytes(value)) == value

    def test_round_trip_negative(self):
        for value in (-1, -255, -256, -(2**40)):
            assert encoding.bytes_to_int(encoding.int_to_bytes(value)) == value

    def test_sign_disambiguation(self):
        assert encoding.int_to_bytes(-1) != encoding.int_to_bytes(1)
        assert encoding.int_to_bytes(-255) != encoding.int_to_bytes(255)

    def test_zero_has_explicit_encoding(self):
        assert encoding.int_to_bytes(0) == b"\x00\x00"

    def test_empty_bytes_rejected(self):
        with pytest.raises(ValueError):
            encoding.bytes_to_int(b"")


class TestEncodeValue:
    def test_type_tags_distinguish_types(self):
        assert encoding.encode_value(1) != encoding.encode_value("1")
        assert encoding.encode_value(True) != encoding.encode_value(1)
        assert encoding.encode_value(b"1") != encoding.encode_value("1")
        assert encoding.encode_value(None) != encoding.encode_value("")

    def test_none_supported(self):
        assert encoding.encode_value(None) == b"N"

    def test_bytes_like_variants(self):
        assert encoding.encode_value(bytearray(b"ab")) == encoding.encode_value(b"ab")
        assert encoding.encode_value(memoryview(b"ab")) == encoding.encode_value(b"ab")

    def test_float_encoding_is_deterministic(self):
        assert encoding.encode_value(1.5) == encoding.encode_value(1.5)
        assert encoding.encode_value(1.5) != encoding.encode_value(1.25)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encoding.encode_value(object())

    def test_string_unicode(self):
        assert encoding.encode_value("héllo") == b"S" + "héllo".encode("utf-8")


class TestEncodeMany:
    def test_injective_on_boundaries(self):
        # Without length prefixes these two sequences would collide.
        assert encoding.encode_many(["ab", "c"]) != encoding.encode_many(["a", "bc"])

    def test_injective_on_arity(self):
        assert encoding.encode_many(["a", "b"]) != encoding.encode_many(["ab"])

    def test_empty_sequence(self):
        assert encoding.encode_many([]) == b""

    def test_mixed_types(self):
        blob = encoding.encode_many(["name", 42, b"\x00\x01", None])
        assert isinstance(blob, bytes)
        assert len(blob) > 8

    def test_deterministic(self):
        values = ["salary", 2000, "dept", 1]
        assert encoding.encode_many(values) == encoding.encode_many(list(values))


class TestConcatDigests:
    def test_concatenation_order_matters(self):
        assert encoding.concat_digests(b"a", b"b") != encoding.concat_digests(b"b", b"a")

    def test_concatenation_joins_all(self):
        assert encoding.concat_digests(b"a", b"b", b"c") == b"abc"
