"""Tier-1 smoke mode of the scheme-comparison benchmark.

Runs the live-service scheme comparison (``benchmarks/
bench_scheme_comparison.py``) at scaled-down sizes, so every ordinary
``pytest`` run re-checks that all registered schemes serve and verify over
the wire and that the paper's comparative claims still hold.
"""

from repro.bench.schemes import SMOKE_SCHEME_CONFIG, run_scheme_benchmarks
from repro.schemes import available_schemes, get_scheme


def test_scheme_comparison_smoke_report():
    report = run_scheme_benchmarks(SMOKE_SCHEME_CONFIG)
    comparison = report["workloads"]["scheme_comparison"]
    assert set(comparison["schemes"]) == set(available_schemes())

    for name, entry in comparison["schemes"].items():
        assert entry["proves_completeness"] == get_scheme(name).proves_completeness
        points = entry["points"]
        assert len(points) == len(SMOKE_SCHEME_CONFIG.selectivities)
        for point in points:
            assert point["result_rows"] > 0
            assert point["vo_bytes"] > 0
            assert point["verify_ms"] > 0
        update = entry["update"]
        assert update["digests_recomputed"] >= 1
        assert update["best_ms"] > 0

    # The paper's Section 2.3 claim, also gated in CI by check_bench_floors:
    # the chain VO stays below the Devanbu VO at the lowest selectivity.
    assert comparison["chain_vo_below_devanbu"] is True

    # Section 6.3's update story: chain updates touch a constant number of
    # signatures (3 per delete + insert pair = 6 for an update); the VB-tree
    # re-signs its whole root path.
    schemes = comparison["schemes"]
    assert schemes["devanbu"]["update"]["signatures_recomputed"] == 2
    assert schemes["vbtree"]["update"]["signatures_recomputed"] >= 2
    assert schemes["naive"]["update"]["signatures_recomputed"] == 1
