"""The live owner→publisher update pipeline, end to end.

Covers the tentpole contract of the update wire format: a genuine signed
delta batch lands and rotates the manifest; a stale client transparently
re-pins and retries; forged, replayed and invalid updates are rejected with
typed errors while leaving the relation untouched; and — the receipt
regression — receipts replayed through the wire round-trip reproduce exactly
the digest/signature/chain-message accounting of the in-process path.
"""

import pytest

from repro.core.errors import UpdateApplicationError
from repro.core.publisher import Publisher
from repro.core.relational import UpdateReceipt
from repro.db import workload
from repro.db.query import Conjunction, Query, RangeCondition
from repro.service import (
    OwnerClient,
    PublicationServer,
    RecordDelta,
    RemoteError,
    ServerConfig,
    ServiceError,
    ShardRouter,
    StaleManifestError,
    VerifyingClient,
    build_update_request,
)
from repro.wire import decode, encode, manifest_id
from repro.wire.updates import ManifestRotated, manifest_signing_message

ALL_SALARIES = Query(
    "employees", Conjunction((RangeCondition("salary", 0, 100_000),))
)


def _build_relation():
    return workload.generate_employees(24, seed=11, photo_bytes=8)


def _row(salary, tag, dept=1):
    """A schema-complete employee row."""
    return {
        "salary": salary,
        "emp_id": f"t-{tag}",
        "name": str(tag),
        "dept": dept,
        "photo": bytes([salary % 251]) * 8,
    }


@pytest.fixture()
def world(owner):
    """A fresh signed relation behind a live server, torn down per test."""
    relation = _build_relation()
    database = owner.publish_database({"employees": relation})
    router = ShardRouter({"hr": Publisher(database.relations)})
    with PublicationServer(router, config=ServerConfig(max_workers=6)) as server:
        yield {
            "owner": owner,
            "relation": relation,
            "signed": database["employees"],
            "manifests": database.manifests,
            "router": router,
            "server": server,
            "address": server.address,
        }


def _owner_client(world):
    host, port = world["address"]
    return OwnerClient(host, port, world["owner"].signature_scheme)


def _verifying_client(world):
    host, port = world["address"]
    return VerifyingClient(
        host, port, trusted_manifests=dict(world["manifests"])
    )


def _mixed_deltas(relation, count):
    """A deterministic stream of insert/delete/update deltas (each a batch)."""
    rows = [record.as_dict() for record in relation.records]
    deltas = []
    next_salary = 100
    for step in range(count):
        action = step % 3
        if action == 0 or not rows:
            row = _row(next_salary, f"new-{step}", dept=1 + step % 4)
            next_salary += 97
            rows.append(row)
            deltas.append(RecordDelta(kind="insert", values=row))
        elif action == 1:
            victim = rows.pop(step % len(rows))
            deltas.append(RecordDelta(kind="delete", values=victim))
        else:
            old = rows.pop(step % len(rows))
            new = dict(old, name=old["name"] + "*")
            rows.append(new)
            deltas.append(
                RecordDelta(kind="update", values=new, old_values=old)
            )
    return deltas


# -- the happy path -----------------------------------------------------------


def test_owner_pushes_and_client_follows(world):
    with _owner_client(world) as owner_client, _verifying_client(world) as client:
        before = client.query(ALL_SALARIES)
        assert before.manifest_sequence == 0

        row = _row(123, "newcomer")
        receipt = owner_client.insert("employees", row)
        assert receipt.signatures_recomputed == 3
        assert receipt.digests_recomputed == 1

        after = client.query(ALL_SALARIES)
        assert after.report is not None
        assert after.manifest_sequence == 1
        assert client.rotations_observed == {"employees": 1}
        assert len(after.rows) == len(before.rows) + 1
        assert any(r["name"] == "newcomer" for r in after.rows)


def test_batched_deltas_apply_atomically(world):
    with _owner_client(world) as owner_client, _verifying_client(world) as client:
        victim = world["relation"].records[0].as_dict()
        replaced = world["relation"].records[1].as_dict()
        batch = (
            RecordDelta(kind="delete", values=victim),
            RecordDelta(
                kind="insert",
                values=_row(7, "a"),
            ),
            RecordDelta(
                kind="update",
                values=dict(replaced, name="renamed"),
                old_values=replaced,
            ),
        )
        response = owner_client.push("employees", batch)
        # delete (1) + insert (1) + update (2) chain mutations
        assert response.rotation.manifest.sequence == 4
        result = client.query(ALL_SALARIES)
        assert result.manifest_sequence == 4
        names = {row["name"] for row in result.rows}
        assert "renamed" in names and "a" in names
        assert victim["name"] != replaced["name"]  # sanity on the fixture data
        # -1 delete, +1 insert, update is size-neutral: still 24 records.
        assert len(result.rows) == 24


def test_sequence_tracks_across_many_batches(world):
    deltas = _mixed_deltas(_build_relation(), 12)
    with _owner_client(world) as owner_client, _verifying_client(world) as client:
        for delta in deltas:
            owner_client.push("employees", (delta,))
        expected = sum(2 if d.kind == "update" else 1 for d in deltas)
        assert owner_client.sequence("employees") == expected
        result = client.query(ALL_SALARIES)
        assert result.manifest_sequence == expected
        assert result.report is not None


def test_rotation_request_serves_genesis_and_latest(world):
    with _owner_client(world) as owner_client, _verifying_client(world) as client:
        client.fetch_manifest("employees")
        # Genesis rotation: empty previous id, signature over the initial manifest.
        from repro.service.protocol import RotationRequest

        genesis = client._request(RotationRequest("employees"), ManifestRotated)
        assert genesis.previous_id == b""
        assert genesis.manifest.sequence == 0
        old_id = manifest_id(genesis.manifest)

        owner_client.insert(
            "employees",
            _row(55, "z", dept=2),
        )
        latest = client._request(RotationRequest("employees"), ManifestRotated)
        assert latest.previous_id == old_id
        assert latest.manifest.sequence == 1


# -- rejection paths ----------------------------------------------------------


def test_forged_owner_signature_is_typed_error(world, forged_scheme):
    host, port = world["address"]
    manifest = world["signed"].manifest
    forged = build_update_request(
        forged_scheme,
        manifest,
        (
            RecordDelta(
                kind="insert",
                values=_row(9, "evil"),
            ),
        ),
    )
    with VerifyingClient(host, port) as raw:
        with pytest.raises(RemoteError) as excinfo:
            raw._request(forged, object)
    assert excinfo.value.code == "OwnerAuthError"
    assert excinfo.value.reason == "bad-owner-signature"
    assert world["signed"].version == 0  # nothing was applied


def test_replayed_update_request_is_idempotent_stale_is_typed_error(world):
    with _owner_client(world) as owner_client:
        manifest = owner_client.manifest("employees")
        batch = (
            RecordDelta(
                kind="insert",
                values=_row(11, "once"),
            ),
        )
        request = build_update_request(
            world["owner"].signature_scheme, manifest, batch
        )
        first = owner_client._request(request, object)
        assert first.rotation.manifest.sequence == 1
        # Replaying the captured byte-identical request answers the original
        # receipt from the applied-update registry without re-applying — the
        # idempotency that makes lost-ack resends safe.
        assert owner_client._request(request, object) == first
        assert world["signed"].version == 1  # applied exactly once
        # A *different* batch signed against the superseded manifest is still
        # a typed stale-update rejection.
        stale = build_update_request(
            world["owner"].signature_scheme,
            manifest,
            (RecordDelta(kind="insert", values=_row(13, "late")),),
        )
        with pytest.raises(RemoteError) as excinfo:
            owner_client._request(stale, object)
    assert excinfo.value.code == "StaleManifestError"
    assert excinfo.value.reason == "stale-update"
    assert world["signed"].version == 1  # applied exactly once


def test_invalid_delta_batch_is_all_or_nothing(world):
    existing = world["relation"].records[0].as_dict()
    with _owner_client(world) as owner_client:
        batch = (
            RecordDelta(
                kind="insert",
                values=_row(21, "ok"),
            ),
            RecordDelta(kind="insert", values=existing),  # exact duplicate
        )
        with pytest.raises(RemoteError) as excinfo:
            owner_client.push("employees", batch)
    assert excinfo.value.code == "UpdateApplicationError"
    assert excinfo.value.reason == "invalid-delta"
    # The valid first delta must not have been applied either.
    assert world["signed"].version == 0
    assert len(world["relation"]) == 24


def test_delete_of_missing_record_is_typed_error(world):
    with _owner_client(world) as owner_client:
        with pytest.raises(RemoteError) as excinfo:
            owner_client.delete(
                "employees",
                _row(99_999, "ghost"),
            )
    assert excinfo.value.code == "UpdateApplicationError"
    assert world["signed"].version == 0


def test_malformed_delta_values_are_typed_error(world):
    with _owner_client(world) as owner_client:
        with pytest.raises(RemoteError) as excinfo:
            owner_client.insert("employees", {"salary": 31, "name": "short"})
    assert excinfo.value.code == "UpdateApplicationError"
    assert world["signed"].version == 0


def test_owner_client_refuses_foreign_relation(world, forged_scheme):
    host, port = world["address"]
    with OwnerClient(host, port, forged_scheme) as impostor:
        with pytest.raises(ServiceError):
            impostor.refresh_manifest("employees")


def test_client_rejects_forged_and_replayed_rotations(world, forged_scheme):
    """The trust-root policy on re-pin: key continuity + signature + sequence."""
    with _owner_client(world) as owner_client, _verifying_client(world) as client:
        pinned = client.fetch_manifest("employees")
        owner_client.insert(
            "employees",
            _row(77, "w", dept=3),
        )
        genuine_manifest = world["signed"].manifest
        previous = manifest_id(pinned)

        # Forged: signed under a key that is not the pinned owner key.
        forged = ManifestRotated(
            manifest=genuine_manifest,
            previous_id=previous,
            owner_signature=forged_scheme.sign(
                manifest_signing_message(genuine_manifest, previous)
            ),
        )
        with pytest.raises(StaleManifestError) as excinfo:
            client._validate_rotation("employees", pinned, forged)
        assert excinfo.value.reason == "rotation-forged"

        # Replayed: a genuine but non-advancing rotation (genesis re-presented).
        replayed = ManifestRotated(
            manifest=pinned,
            previous_id=b"",
            owner_signature=world["owner"].signature_scheme.sign(
                manifest_signing_message(pinned, b"")
            ),
        )
        with pytest.raises(StaleManifestError) as excinfo:
            client._validate_rotation("employees", pinned, replayed)
        assert excinfo.value.reason == "rotation-replayed"

        # The genuine rotation is accepted and re-pins.
        refreshed = client.refresh_rotated_manifest("employees")
        assert refreshed.sequence == 1


def test_id_only_pinned_client_survives_rotations(world):
    """A client pinned via expected_ids (no manifest object) connects *after*
    the relation rotated past its pinned id: it bootstraps the historical
    manifest by hash, follows the rotation chain, and queries verified."""
    host, port = world["address"]
    genesis_id = manifest_id(world["signed"].manifest)
    with _owner_client(world) as owner_client:
        owner_client.insert("employees", _row(61, "early"))
        owner_client.insert("employees", _row(67, "later"))
    with VerifyingClient(
        host, port, expected_ids={"employees": genesis_id}
    ) as client:
        result = client.query(ALL_SALARIES)
        assert result.report is not None
        assert result.manifest_sequence == 2
        assert {"early", "later"} <= {row["name"] for row in result.rows}
        # The pin moved along the authenticated chain, not to a raw fetch.
        assert client.rotations_observed == {"employees": 2}


def test_superseded_history_is_bounded(world, monkeypatch):
    """Rotation history is evicted beyond the per-relation cap: a client
    pinned before the retained window gets a typed error, recent pins still
    resolve, and server memory stays bounded."""
    import repro.service.router as router_module

    monkeypatch.setattr(router_module, "MAX_SUPERSEDED_PER_RELATION", 3)
    router = world["router"]
    genesis_id = manifest_id(world["signed"].manifest)
    with _owner_client(world) as owner_client:
        for i in range(5):
            owner_client.insert("employees", _row(300 + i * 7, f"evict-{i}"))
    assert len(router._superseded) == 3  # genesis + first rotation evicted
    with pytest.raises(ServiceError):
        router.route(genesis_id)
    with pytest.raises(ServiceError):
        router.manifest_by_id(genesis_id)
    # A recent superseded id (one batch old) still routes and serves.
    recent = router._superseded_order["employees"][-1]
    assert router.route(recent).relation_name == "employees"
    assert router.manifest_by_id(recent).sequence == 4


def test_update_against_unknown_manifest_id(world):
    with _owner_client(world) as owner_client:
        manifest = owner_client.manifest("employees")
        bogus = build_update_request(
            world["owner"].signature_scheme,
            manifest,
            (
                RecordDelta(
                    kind="insert",
                    values=_row(41, "x"),
                ),
            ),
        )
        from dataclasses import replace

        wrong = replace(bogus, manifest_id=bytes(32))
        with pytest.raises(RemoteError) as excinfo:
            owner_client._request(wrong, object)
    assert excinfo.value.code == "UnknownManifestError"


# -- the receipt-accounting regression ---------------------------------------


def test_receipts_survive_wire_roundtrip_exactly(world):
    """decode(encode(receipt)) is the receipt, for every mutation kind."""
    twin = world["owner"].publish_relation(_build_relation())
    rows = [record.as_dict() for record in _build_relation().records]
    receipts = [
        twin.insert_record(
            _row(201, "r")
        ),
        twin.delete_record(twin.relation.records[0]),
        twin.update_record(
            twin.relation.records[0],
            dict(rows[1], name="renamed"),
        ),
    ]
    for receipt in receipts:
        assert decode(encode(receipt)) == receipt
        assert receipt.chain_messages_recomputed == receipt.signatures_recomputed
        assert len(receipt.entries_affected) == receipt.signatures_recomputed


def test_wire_receipts_match_in_process_accounting(world):
    """The regression: receipts coming back over the wire reproduce the exact
    counts (``chain_messages_recomputed`` included) of applying the same
    deltas in-process, because both paths merge through
    :meth:`UpdateReceipt.merge`."""
    deltas = _mixed_deltas(_build_relation(), 9)
    # In-process twin: same records (deterministic generator), same key.
    twin = Publisher(
        {"employees": world["owner"].publish_relation(_build_relation())}
    )
    with _owner_client(world) as owner_client:
        for delta in deltas:
            wire_receipt = owner_client.push("employees", (delta,)).receipt
            local_receipt = twin.apply_deltas("employees", (delta,))
            assert wire_receipt == local_receipt
            assert (
                wire_receipt.chain_messages_recomputed
                == local_receipt.chain_messages_recomputed
            )
            # ... and the receipt survives a second explicit round-trip.
            assert decode(encode(wire_receipt)) == local_receipt


def test_update_record_uses_merged_accounting(owner):
    """update_record's receipt is exactly merge(delete receipt, insert receipt)."""
    twin_a = owner.publish_relation(_build_relation())
    twin_b = owner.publish_relation(_build_relation())
    old = twin_a.relation.records[3]
    new = dict(old.as_dict(), name="moved", salary=old.key + 1)

    merged = twin_a.update_record(old, new)
    parts = UpdateReceipt.merge(
        (twin_b.delete_record(twin_b.relation.records[3]), twin_b.insert_record(new))
    )
    assert merged == parts


def test_drifted_receipt_is_rejected_at_decode(world):
    """A receipt whose counts drifted can never silently round-trip."""
    from repro.wire.errors import WireFormatError

    good = UpdateReceipt(
        signatures_recomputed=3,
        digests_recomputed=1,
        entries_affected=(4, 5, 6),
        chain_messages_recomputed=3,
    )
    blob = encode(good)
    assert decode(blob) == good
    drifted = UpdateReceipt(
        signatures_recomputed=3,
        digests_recomputed=1,
        entries_affected=(4, 5, 6),
        chain_messages_recomputed=2,
    )
    with pytest.raises(WireFormatError) as excinfo:
        decode(encode(drifted))
    assert excinfo.value.reason == "invalid-artifact"
    short = UpdateReceipt(
        signatures_recomputed=2,
        digests_recomputed=1,
        entries_affected=(4, 5, 6),
        chain_messages_recomputed=2,
    )
    with pytest.raises(WireFormatError):
        decode(encode(short))


def test_publisher_apply_deltas_is_typed_in_process(owner):
    """The in-process API raises UpdateApplicationError directly."""
    publisher = Publisher({"employees": owner.publish_relation(_build_relation())})
    with pytest.raises(UpdateApplicationError):
        publisher.apply_deltas("employees", ())
    with pytest.raises(UpdateApplicationError):
        publisher.apply_deltas(
            "employees",
            (RecordDelta(kind="insert", values={"salary": "not-an-int"}),),
        )
