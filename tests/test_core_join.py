"""Tests for primary key-foreign key join verification (Section 4.3)."""

import pytest

from repro.core.errors import CompletenessError, ProofConstructionError, VerificationError
from repro.core.proof import JoinQueryProof
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.db.query import Conjunction, JoinQuery, Projection, Query, RangeCondition
from repro.db.workload import generate_customers_and_orders


@pytest.fixture(scope="module")
def join_setup(customers_orders):
    customers, orders, database = customers_orders
    publisher = Publisher(database.relations)
    verifier = ResultVerifier(database.manifests)
    return customers, orders, publisher, verifier


def _join(where=Conjunction()):
    return JoinQuery("orders", "customers", "customer_id", "customer_id", where)


class TestJoinAnswering:
    def test_full_join_row_count(self, join_setup):
        customers, orders, publisher, _ = join_setup
        result = publisher.answer_join(_join())
        assert len(result.rows) == len(orders)

    def test_join_rows_combine_both_sides(self, join_setup):
        _, _, publisher, _ = join_setup
        result = publisher.answer_join(_join())
        sample = result.rows[0]
        assert "orders.order_id" in sample
        assert "customers.name" in sample
        assert sample["orders.customer_id"] == sample["customers.customer_id"]

    def test_join_with_selection(self, join_setup):
        customers, orders, publisher, verifier = join_setup
        cutoff = sorted({o["customer_id"] for o in orders})[len(customers) // 2]
        join = _join(Conjunction((RangeCondition("customer_id", None, cutoff),)))
        result = publisher.answer_join(join)
        assert all(row["orders.customer_id"] <= cutoff for row in result.rows)
        verifier.verify_join(join, result.rows, result.proof, result.left_rows)

    def test_join_proof_has_point_proof_per_distinct_fk(self, join_setup):
        _, orders, publisher, _ = join_setup
        result = publisher.answer_join(_join())
        distinct_fks = {o["customer_id"] for o in orders}
        assert set(result.proof.right_point_proofs) == distinct_fks

    def test_vacuous_join(self, join_setup):
        _, _, publisher, verifier = join_setup
        join = _join(
            Conjunction(
                (
                    RangeCondition("customer_id", 1, 5),
                    RangeCondition("customer_id", 200, 240),
                )
            )
        )
        result = publisher.answer_join(join)
        assert result.is_vacuous and result.rows == []
        verifier.verify_join(join, result.rows, result.proof, result.left_rows)

    def test_join_requires_fk_sort_order(self, join_setup, owner):
        customers, orders, publisher, _ = join_setup
        bad_join = JoinQuery("customers", "orders", "region", "order_id")
        with pytest.raises(ProofConstructionError):
            publisher.answer_join(bad_join)


class TestJoinVerification:
    def test_full_join_verifies(self, join_setup):
        _, _, publisher, verifier = join_setup
        join = _join()
        result = publisher.answer_join(join)
        report = verifier.verify_join(join, result.rows, result.proof, result.left_rows)
        assert report.result_rows >= len(result.left_rows)

    def test_dropped_joined_row_detected(self, join_setup):
        _, _, publisher, verifier = join_setup
        join = _join()
        result = publisher.answer_join(join)
        with pytest.raises(VerificationError):
            verifier.verify_join(
                join, result.rows[:-1], result.proof, result.left_rows[:-1]
            )

    def test_tampered_right_side_value_detected(self, join_setup):
        _, _, publisher, verifier = join_setup
        join = _join()
        result = publisher.answer_join(join)
        tampered = [dict(row) for row in result.rows]
        tampered[0]["customers.name"] = "Mallory Corp"
        with pytest.raises(VerificationError):
            verifier.verify_join(join, tampered, result.proof, result.left_rows)

    def test_tampered_left_side_value_detected(self, join_setup):
        _, _, publisher, verifier = join_setup
        join = _join()
        result = publisher.answer_join(join)
        tampered_left = [dict(row) for row in result.left_rows]
        tampered_left[0]["amount"] = 999_999
        with pytest.raises(VerificationError):
            verifier.verify_join(join, result.rows, result.proof, tampered_left)

    def test_missing_point_proof_detected(self, join_setup):
        _, _, publisher, verifier = join_setup
        join = _join()
        result = publisher.answer_join(join)
        some_key = next(iter(result.proof.right_point_proofs))
        pruned = JoinQueryProof(
            left_proof=result.proof.left_proof,
            right_point_proofs={
                key: proof
                for key, proof in result.proof.right_point_proofs.items()
                if key != some_key
            },
        )
        with pytest.raises(CompletenessError):
            verifier.verify_join(join, result.rows, pruned, result.left_rows)

    def test_mismatched_join_output_detected(self, join_setup):
        _, _, publisher, verifier = join_setup
        join = _join()
        result = publisher.answer_join(join)
        shuffled = list(reversed(result.rows))
        if shuffled == result.rows:
            pytest.skip("result too small to shuffle")
        with pytest.raises(VerificationError):
            verifier.verify_join(join, shuffled, result.proof, result.left_rows)

    def test_referential_integrity_violation_blocks_proof(self, owner):
        customers, orders = generate_customers_and_orders(8, 20, seed=17)
        victim_key = orders[0]["customer_id"]
        victim = next(c for c in customers if c["customer_id"] == victim_key)
        customers.delete(victim)
        database = owner.publish_database({"customers": customers, "orders": orders})
        publisher = Publisher(database.relations)
        with pytest.raises(ProofConstructionError):
            publisher.answer_join(_join())
