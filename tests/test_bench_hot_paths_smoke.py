"""Tier-1 smoke mode of the hot-path perf harness (``benchmarks/bench_hot_paths.py``).

Runs the same workloads as the JSON-producing benchmark at scaled-down sizes,
so every ordinary ``pytest`` run re-checks that (a) the harness works, (b) the
cached fast path still produces byte-identical proofs, and (c) the caches
still actually win on repeated work.  Exact throughput numbers are left to the
full benchmark — timing assertions here are deliberately loose.
"""

from repro.bench.hot_paths import SMOKE_CONFIG, run_hot_path_benchmarks
from repro.core.publisher import Publisher
from repro.core.relational import SignedRelation
from repro.crypto.rsa import SIGN_COUNTER
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.workload import generate_employees

EXPECTED_WORKLOADS = {
    "owner_bulk_signing",
    "crt_single_shot_signing",
    "publisher_repeated_range",
    "publisher_join",
    "verifier_repeated_check",
    "wal_ingest",
}


def test_smoke_benchmark_report():
    report = run_hot_path_benchmarks(SMOKE_CONFIG)
    assert report["proofs_identical"] is True
    assert EXPECTED_WORKLOADS <= set(report["workloads"])
    for name, entry in report["workloads"].items():
        assert entry["uncached_ops_per_sec"] > 0, name
        assert entry["cached_ops_per_sec"] > 0, name
        assert entry["speedup"] > 0, name


def test_hot_path_caches_actually_engage(signature_scheme):
    """Noise-immune regression check: repeated work must hit the caches.

    Wall-clock speedups at smoke scale are too jittery to assert in tier-1, so
    the regression signal here is cache-activity counters instead.
    """
    signed = SignedRelation(generate_employees(30, seed=11, photo_bytes=8), signature_scheme)
    publisher = Publisher({"employees": signed})
    query = Query("employees", Conjunction((RangeCondition("salary", 20_000, 80_000),)))
    publisher.answer(query)
    hits_before = publisher.vo_cache_hits
    publisher.answer(query)
    assert publisher.vo_cache_hits > hits_before

    message = b"smoke-cache-engage"
    signature_scheme.sign(message)
    sign_hits_before = SIGN_COUNTER.cache_hits
    signature_scheme.sign(message)
    assert SIGN_COUNTER.cache_hits == sign_hits_before + 1
