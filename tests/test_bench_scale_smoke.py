"""Tier-1 smoke mode of the zipfian scale benchmark.

Runs the full scale harness (``benchmarks/bench_scale.py``) at scaled-down
sizes, so every ordinary ``pytest`` run re-checks that streaming ingest,
recovery re-attach and the zipfian serving mix produce a well-formed report
— the same code paths the 10^5/10^6-row tiers measure.
"""

import random

from repro.bench.scale import (
    SMOKE_SCALE_CONFIG,
    ZipfianKeys,
    run_scale_benchmarks,
)


def test_zipfian_generator_is_seeded_and_skewed():
    zipf = ZipfianKeys(1000, 0.99, random.Random(5))
    draws = [zipf.next_key() for _ in range(3000)]
    assert all(1 <= key <= 1000 for key in draws)
    # Deterministic for a fixed seed.
    again = ZipfianKeys(1000, 0.99, random.Random(5))
    assert [again.next_key() for _ in range(3000)] == draws
    # Skew: the most popular key must draw far more than the uniform share
    # (3 draws), and the hot set must still be scattered across the space.
    counts = {}
    for key in draws:
        counts[key] = counts.get(key, 0) + 1
    top = sorted(counts.values(), reverse=True)
    assert top[0] > 100
    hottest = sorted(counts, key=counts.get, reverse=True)[:10]
    assert max(hottest) - min(hottest) > 100, "hot keys should be scrambled"


def test_scale_smoke_report():
    report = run_scale_benchmarks(SMOKE_SCALE_CONFIG)
    serving = report["workloads"]["scale_serving"]

    assert serving["rows"] == SMOKE_SCALE_CONFIG.rows
    ingest = serving["ingest"]
    assert ingest["rows"] == SMOKE_SCALE_CONFIG.rows
    assert ingest["rows_per_sec"] > 0

    recovery = serving["recovery"]
    assert recovery["streams_rows"] is True
    assert recovery["seconds"] >= 0

    latency = serving["latency_ms"]
    total = sum(entry["count"] for entry in latency.values())
    assert total == SMOKE_SCALE_CONFIG.operations
    for entry in latency.values():
        assert 0 < entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
