"""Unit tests for condensed-RSA signature aggregation (Section 5.2)."""

import pytest

from repro.crypto.aggregate import aggregate_signatures, verify_aggregate


@pytest.fixture(scope="module")
def signed_messages(signature_scheme):
    messages = [f"chain-message-{i}".encode() for i in range(8)]
    signatures = [signature_scheme.sign(message) for message in messages]
    return messages, signatures


class TestAggregation:
    def test_aggregate_verifies(self, signature_scheme, signed_messages):
        messages, signatures = signed_messages
        aggregate = aggregate_signatures(signatures, signature_scheme.verifier, messages)
        assert verify_aggregate(aggregate, messages, signature_scheme.verifier)

    def test_single_signature_aggregate(self, signature_scheme, signed_messages):
        messages, signatures = signed_messages
        aggregate = aggregate_signatures(signatures[:1], signature_scheme.verifier)
        assert verify_aggregate(aggregate, messages[:1], signature_scheme.verifier)

    def test_aggregate_size_is_one_signature(self, signature_scheme, signed_messages):
        messages, signatures = signed_messages
        aggregate = aggregate_signatures(signatures, signature_scheme.verifier, messages)
        assert aggregate.size_bits <= signature_scheme.verifier.bits
        assert aggregate.count == len(signatures)

    def test_empty_aggregation_rejected(self, signature_scheme):
        with pytest.raises(ValueError):
            aggregate_signatures([], signature_scheme.verifier)

    def test_duplicate_messages_rejected(self, signature_scheme):
        signature = signature_scheme.sign(b"m")
        with pytest.raises(ValueError):
            aggregate_signatures(
                [signature, signature], signature_scheme.verifier, [b"m", b"m"]
            )

    def test_length_mismatch_rejected(self, signature_scheme, signed_messages):
        messages, signatures = signed_messages
        with pytest.raises(ValueError):
            aggregate_signatures(signatures, signature_scheme.verifier, messages[:-1])

    def test_out_of_range_signature_rejected(self, signature_scheme):
        with pytest.raises(ValueError):
            aggregate_signatures(
                [signature_scheme.verifier.modulus + 1], signature_scheme.verifier
            )


class TestAggregateVerification:
    def test_missing_message_detected(self, signature_scheme, signed_messages):
        messages, signatures = signed_messages
        aggregate = aggregate_signatures(signatures, signature_scheme.verifier, messages)
        assert not verify_aggregate(aggregate, messages[:-1], signature_scheme.verifier)

    def test_extra_message_detected(self, signature_scheme, signed_messages):
        messages, signatures = signed_messages
        aggregate = aggregate_signatures(signatures, signature_scheme.verifier, messages)
        assert not verify_aggregate(
            aggregate, messages + [b"sneaky"], signature_scheme.verifier
        )

    def test_swapped_message_detected(self, signature_scheme, signed_messages):
        messages, signatures = signed_messages
        aggregate = aggregate_signatures(signatures, signature_scheme.verifier, messages)
        altered = list(messages)
        altered[0] = b"not-the-original"
        assert not verify_aggregate(aggregate, altered, signature_scheme.verifier)

    def test_forged_aggregate_rejected(self, signature_scheme, signed_messages):
        messages, signatures = signed_messages
        aggregate = aggregate_signatures(signatures, signature_scheme.verifier, messages)
        forged = type(aggregate)(value=aggregate.value + 1, count=aggregate.count)
        assert not verify_aggregate(forged, messages, signature_scheme.verifier)

    def test_duplicate_claimed_messages_rejected(self, signature_scheme, signed_messages):
        messages, signatures = signed_messages
        aggregate = aggregate_signatures(
            signatures[:2], signature_scheme.verifier, messages[:2]
        )
        assert not verify_aggregate(
            aggregate, [messages[0], messages[0]], signature_scheme.verifier
        )

    def test_subset_aggregation_cannot_pose_as_full(self, signature_scheme, signed_messages):
        # Immutability-style check: an aggregate over a strict subset of
        # messages must not verify against the full message list.
        messages, signatures = signed_messages
        aggregate = aggregate_signatures(
            signatures[:4], signature_scheme.verifier, messages[:4]
        )
        assert not verify_aggregate(aggregate, messages, signature_scheme.verifier)
