"""Unit tests for relations, the query model and the reference engine."""

import pytest

from repro.db.engine import QueryEngine
from repro.db.query import (
    ComparisonOperator,
    Conjunction,
    EqualityCondition,
    JoinQuery,
    Projection,
    Query,
    RangeCondition,
    comparison_to_ranges,
)
from repro.db.records import Record
from repro.db.relation import Relation
from repro.db.schema import KeyDomain
from repro.db.workload import (
    employee_schema,
    figure1_employee_relation,
    generate_customers_and_orders,
    generate_employees,
)


@pytest.fixture
def employees():
    return figure1_employee_relation()


class TestRelation:
    def test_records_sorted_by_key(self, employees):
        assert employees.keys() == [2000, 3500, 8010, 12100, 25000]

    def test_insert_keeps_order(self, employees):
        employees.insert(
            {"salary": 5000, "emp_id": "009", "name": "F", "dept": 1, "photo": b"x"}
        )
        assert employees.keys() == [2000, 3500, 5000, 8010, 12100, 25000]

    def test_len_and_iteration(self, employees):
        assert len(employees) == 5
        assert [record.key for record in employees] == employees.keys()

    def test_exact_duplicate_rejected(self, employees):
        row = employees[0].as_dict()
        with pytest.raises(ValueError):
            employees.insert(row)

    def test_same_key_different_payload_allowed(self, employees):
        employees.insert(
            {"salary": 2000, "emp_id": "099", "name": "Z", "dept": 4, "photo": b"z"}
        )
        assert len(employees) == 6
        assert employees.keys().count(2000) == 2

    def test_delete_and_position(self, employees):
        record = employees[2]
        position = employees.delete(record)
        assert position == 2
        assert len(employees) == 4
        with pytest.raises(KeyError):
            employees.delete(record)

    def test_update_returns_positions(self, employees):
        old = employees[0]
        new = old.replace(salary=30000)
        old_pos, new_pos = employees.update(old, new)
        assert (old_pos, new_pos) == (0, 4)

    def test_range_scan(self, employees):
        keys = [record.key for record in employees.range_scan(3000, 13000)]
        assert keys == [3500, 8010, 12100]

    def test_range_scan_empty(self, employees):
        assert employees.range_scan(26000, 30000) == []

    def test_range_indices_bounds(self, employees):
        assert employees.range_indices(0, 99999) == (0, 5)
        assert employees.range_indices(2000, 2000) == (0, 1)

    def test_point_indices_batch_matches_range_indices(self, employees):
        keys = employees.keys()
        # include a missing key and a duplicated input value
        values = sorted(keys + [26000, keys[0]])
        batch = employees.point_indices_batch(values)
        for value in values:
            assert batch[value] == employees.range_indices(value, value)

    def test_neighbors(self, employees):
        left, right = employees.neighbors(0)
        assert left is None and right.key == 3500
        left, right = employees.neighbors(4)
        assert left.key == 12100 and right is None

    def test_select_full_scan(self, employees):
        dept1 = employees.select(lambda r: r["dept"] == 1)
        assert [r["name"] for r in dept1] == ["A", "D"]

    def test_wrong_schema_record_rejected(self, employees):
        other_schema = employee_schema(KeyDomain(0, 50))
        record = Record(
            other_schema,
            {"salary": 10, "emp_id": "x", "name": "x", "dept": 1, "photo": b""},
        )
        with pytest.raises(ValueError):
            employees.insert(record)

    def test_from_rows_and_records_copy(self, employees):
        snapshot = employees.records
        snapshot.pop()
        assert len(employees) == 5

    def test_position_of(self, employees):
        assert employees.position_of(employees[3]) == 3


class TestQueryModel:
    def test_range_condition_matching(self, employees):
        condition = RangeCondition("salary", 3000, 9000)
        assert condition.matches(employees[1])
        assert not condition.matches(employees[0])

    def test_empty_range_condition_matches_nothing(self, employees):
        condition = RangeCondition("salary", 10, 5)
        assert condition.is_empty
        assert not any(condition.matches(record) for record in employees)

    def test_range_condition_none_attribute_value(self, employees):
        assert not RangeCondition("missing", 0, 10).matches(employees[0])

    def test_equality_condition(self, employees):
        assert EqualityCondition("dept", 1).matches(employees[0])
        assert not EqualityCondition("dept", 3).matches(employees[0])

    def test_conjunction_key_condition_intersection(self):
        schema = employee_schema()
        where = Conjunction(
            (
                RangeCondition("salary", 1000, 9000),
                RangeCondition("salary", 2000, 20000),
                EqualityCondition("dept", 1),
            )
        )
        key_condition = where.key_condition(schema)
        assert (key_condition.low, key_condition.high) == (2000, 9000)
        assert len(where.non_key_conditions(schema)) == 1

    def test_conjunction_without_key_condition(self):
        schema = employee_schema()
        where = Conjunction((EqualityCondition("dept", 1),))
        assert where.key_condition(schema) is None

    def test_projection_always_keeps_key(self):
        schema = employee_schema()
        projection = Projection(attributes=("name",))
        assert projection.effective_attributes(schema) == ["salary", "name"]
        assert "photo" in projection.dropped_attributes(schema)

    def test_projection_select_star(self):
        schema = employee_schema()
        assert Projection().effective_attributes(schema) == schema.attribute_names
        assert Projection().dropped_attributes(schema) == []

    def test_query_is_multipoint(self):
        schema = employee_schema()
        range_only = Query("employees", Conjunction((RangeCondition("salary", 0, 10_000),)))
        multipoint = Query(
            "employees",
            Conjunction((RangeCondition("salary", 0, 10_000), EqualityCondition("dept", 1))),
        )
        assert not range_only.is_multipoint(schema)
        assert multipoint.is_multipoint(schema)

    def test_query_rewritten_appends_conditions(self):
        query = Query("employees")
        rewritten = query.rewritten([RangeCondition("salary", None, 8999)])
        assert len(rewritten.where.conditions) == 1
        assert len(query.where.conditions) == 0


class TestComparisonToRanges:
    @pytest.fixture
    def domain(self):
        return KeyDomain(0, 100)

    def test_equality(self, domain):
        ranges = comparison_to_ranges("k", ComparisonOperator.EQ, 50, domain)
        assert [(r.low, r.high) for r in ranges] == [(50, 50)]

    def test_less_than(self, domain):
        ranges = comparison_to_ranges("k", ComparisonOperator.LT, 50, domain)
        assert [(r.low, r.high) for r in ranges] == [(1, 49)]

    def test_less_equal(self, domain):
        ranges = comparison_to_ranges("k", ComparisonOperator.LE, 50, domain)
        assert [(r.low, r.high) for r in ranges] == [(1, 50)]

    def test_greater_than(self, domain):
        ranges = comparison_to_ranges("k", ComparisonOperator.GT, 50, domain)
        assert [(r.low, r.high) for r in ranges] == [(51, 99)]

    def test_greater_equal(self, domain):
        ranges = comparison_to_ranges("k", ComparisonOperator.GE, 50, domain)
        assert [(r.low, r.high) for r in ranges] == [(50, 99)]

    def test_not_equal_is_two_ranges(self, domain):
        ranges = comparison_to_ranges("k", ComparisonOperator.NE, 50, domain)
        assert [(r.low, r.high) for r in ranges] == [(1, 49), (51, 99)]

    def test_not_equal_at_domain_edge(self, domain):
        ranges = comparison_to_ranges("k", ComparisonOperator.NE, 1, domain)
        assert [(r.low, r.high) for r in ranges] == [(2, 99)]

    def test_degenerate_less_than_smallest(self, domain):
        assert comparison_to_ranges("k", ComparisonOperator.LT, 1, domain) == []

    def test_degenerate_greater_than_largest(self, domain):
        assert comparison_to_ranges("k", ComparisonOperator.GT, 99, domain) == []


class TestQueryEngine:
    @pytest.fixture
    def engine(self, employees):
        engine = QueryEngine()
        engine.register("employees", employees)
        return engine

    def test_pure_range_query(self, engine):
        query = Query("employees", Conjunction((RangeCondition("salary", None, 9999),)))
        result = engine.execute(query)
        assert [r.key for r in result.matching_records] == [2000, 3500, 8010]
        assert not result.is_multipoint

    def test_multipoint_query(self, engine):
        query = Query(
            "employees",
            Conjunction((RangeCondition("salary", None, 9999), EqualityCondition("dept", 1))),
        )
        result = engine.execute(query)
        assert result.is_multipoint
        assert [r.key for r in result.matching_records] == [2000, 8010]
        assert result.matches == [True, False, True]

    def test_unbounded_query_scans_everything(self, engine):
        result = engine.execute(Query("employees"))
        assert len(result.records) == 5

    def test_empty_key_range(self, engine):
        query = Query("employees", Conjunction((RangeCondition("salary", 50000, 60000),)))
        result = engine.execute(query)
        assert result.records == []

    def test_projection_rows(self, engine):
        query = Query(
            "employees",
            Conjunction((RangeCondition("salary", None, 9999),)),
            Projection(attributes=("name",)),
        )
        rows = engine.execute(query).projected_rows()
        assert rows == [
            {"salary": 2000, "name": "A"},
            {"salary": 3500, "name": "C"},
            {"salary": 8010, "name": "D"},
        ]

    def test_distinct_projection(self, engine):
        query = Query(
            "employees",
            Conjunction((EqualityCondition("dept", 1),)),
            Projection(attributes=("dept",), distinct=True),
        )
        rows = engine.execute(query).projected_rows()
        # Both dept-1 employees project to distinct rows because the key is kept.
        assert len(rows) == 2

    def test_unknown_relation(self, engine):
        with pytest.raises(KeyError):
            engine.execute(Query("nope"))

    def test_pk_fk_join(self):
        customers, orders = generate_customers_and_orders(10, 30, seed=3)
        engine = QueryEngine({"customers": customers, "orders": orders})
        join = JoinQuery("orders", "customers", "customer_id", "customer_id")
        result = engine.execute_join(join)
        assert len(result.joined_rows) == 30
        sample = result.joined_rows[0]
        assert "orders.order_id" in sample and "customers.name" in sample

    def test_join_requires_fk_sort_order(self):
        customers, orders = generate_customers_and_orders(10, 30, seed=3)
        engine = QueryEngine({"customers": customers, "orders": orders})
        join = JoinQuery("customers", "orders", "region", "order_id")
        with pytest.raises(ValueError):
            engine.execute_join(join)

    def test_join_detects_dangling_foreign_key(self):
        customers, orders = generate_customers_and_orders(10, 10, seed=3)
        # Remove the customer referenced by the first order.
        first_fk = orders[0]["customer_id"]
        victim = next(c for c in customers if c["customer_id"] == first_fk)
        customers.delete(victim)
        engine = QueryEngine({"customers": customers, "orders": orders})
        join = JoinQuery("orders", "customers", "customer_id", "customer_id")
        with pytest.raises(ValueError):
            engine.execute_join(join)

    def test_join_with_selection(self):
        customers, orders = generate_customers_and_orders(10, 40, seed=3)
        engine = QueryEngine({"customers": customers, "orders": orders})
        mid = sorted({r["customer_id"] for r in orders})[5]
        join = JoinQuery(
            "orders",
            "customers",
            "customer_id",
            "customer_id",
            Conjunction((RangeCondition("customer_id", None, mid),)),
        )
        result = engine.execute_join(join)
        assert all(row["orders.customer_id"] <= mid for row in result.joined_rows)
