"""Shared fixtures for the test suite.

RSA key generation is by far the slowest primitive, so a single 512-bit key
pair is generated once per session and shared by every fixture that needs a
signature scheme.  512-bit keys are cryptographically obsolete but exercise
exactly the same code paths as the 1024-bit default.
"""

from __future__ import annotations

import pytest

from repro.core.owner import DataOwner
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.crypto.signature import SignatureScheme, rsa_scheme
from repro.db import workload
from repro.db.access_control import add_visibility_columns
from repro.db.schema import KeyDomain


TEST_KEY_BITS = 512


@pytest.fixture(scope="session")
def signature_scheme() -> SignatureScheme:
    """One RSA signature scheme shared by the whole session."""
    return rsa_scheme(bits=TEST_KEY_BITS)


@pytest.fixture(scope="session")
def forged_scheme() -> SignatureScheme:
    """A *different* key pair, for forged-signature tests (shared, read-only)."""
    return rsa_scheme(bits=TEST_KEY_BITS)


@pytest.fixture(scope="session")
def owner(signature_scheme) -> DataOwner:
    """A data owner using the shared key and the optimized digest scheme (B=2)."""
    return DataOwner(signature_scheme=signature_scheme, scheme_kind="optimized", base=2)


@pytest.fixture(scope="session")
def conceptual_owner(signature_scheme) -> DataOwner:
    """A data owner using the conceptual (formula (2)) digest scheme."""
    return DataOwner(signature_scheme=signature_scheme, scheme_kind="conceptual")


@pytest.fixture(scope="session")
def figure1_policy():
    """The HR manager / HR executive policy of Figure 1."""
    return workload.figure1_policy()


@pytest.fixture(scope="session")
def figure1_relation(figure1_policy):
    """The Figure 1 employee table, augmented with visibility columns."""
    return add_visibility_columns(workload.figure1_employee_relation(), figure1_policy)


@pytest.fixture(scope="session")
def figure1_database(owner, figure1_relation):
    """The Figure 1 table published (signed) by the shared owner."""
    return owner.publish_database({"employees": figure1_relation})


@pytest.fixture(scope="session")
def figure1_publisher(figure1_database, figure1_policy) -> Publisher:
    return Publisher(figure1_database.relations, policy=figure1_policy)


@pytest.fixture(scope="session")
def figure1_verifier(figure1_database, figure1_policy) -> ResultVerifier:
    return ResultVerifier(figure1_database.manifests, policy=figure1_policy)


@pytest.fixture(scope="session")
def small_domain() -> KeyDomain:
    """A small key domain that keeps even the conceptual scheme fast."""
    return KeyDomain(0, 256)


@pytest.fixture(scope="session")
def salary_domain() -> KeyDomain:
    return KeyDomain(0, 100_000)


@pytest.fixture(scope="session")
def employees_100(owner):
    """A 100-row random employee table, published once for read-only tests."""
    relation = workload.generate_employees(100, seed=42, photo_bytes=16)
    return relation, owner.publish_relation(relation)


@pytest.fixture(scope="session")
def customers_orders(owner):
    """Customers/orders pair (PK-FK) published by the shared owner."""
    customers, orders = workload.generate_customers_and_orders(25, 80, seed=5)
    database = owner.publish_database({"customers": customers, "orders": orders})
    return customers, orders, database
