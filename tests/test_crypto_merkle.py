"""Unit tests for the Merkle hash tree and its verification objects."""

import pytest

from repro.crypto.hashing import HashFunction, default_hash
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root


def _leaves(count):
    return [f"value-{i}".encode() for i in range(count)]


class TestConstruction:
    def test_single_leaf_tree(self):
        tree = MerkleTree([b"only"])
        assert tree.size == 1
        assert tree.height == 0
        assert tree.root == tree.leaf_digest(0)

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    @pytest.mark.parametrize("count", [2, 3, 4, 5, 7, 8, 9, 16, 33])
    def test_root_changes_with_any_leaf(self, count):
        leaves = _leaves(count)
        baseline = MerkleTree(leaves).root
        for index in range(count):
            mutated = list(leaves)
            mutated[index] = b"tampered"
            assert MerkleTree(mutated).root != baseline

    def test_root_depends_on_leaf_order(self):
        leaves = _leaves(4)
        assert MerkleTree(leaves).root != MerkleTree(list(reversed(leaves))).root

    def test_leaf_and_node_domains_are_separated(self):
        # A single leaf equal to the concatenation of two digests must not
        # collide with the internal node over those digests.
        inner = MerkleTree(_leaves(2))
        forged = MerkleTree([inner._levels[0][0] + inner._levels[0][1]])
        assert forged.root != inner.root

    def test_merkle_root_helper(self):
        leaves = _leaves(5)
        assert merkle_root(leaves) == MerkleTree(leaves).root

    def test_custom_hash_function(self):
        leaves = _leaves(3)
        assert MerkleTree(leaves, HashFunction("sha1")).root != MerkleTree(leaves).root

    @pytest.mark.parametrize("count,expected_height", [(1, 0), (2, 1), (3, 2), (4, 2), (8, 3), (9, 4)])
    def test_height(self, count, expected_height):
        assert MerkleTree(_leaves(count)).height == expected_height


class TestProofs:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8, 13, 21])
    def test_every_leaf_verifies(self, count):
        leaves = _leaves(count)
        tree = MerkleTree(leaves)
        for index, payload in enumerate(leaves):
            proof = tree.prove(index)
            assert tree.verify(payload, proof)
            assert MerkleTree.verify_against_root(payload, proof, tree.root)

    def test_wrong_payload_rejected(self):
        leaves = _leaves(8)
        tree = MerkleTree(leaves)
        proof = tree.prove(3)
        assert not tree.verify(b"not-the-leaf", proof)

    def test_wrong_position_rejected(self):
        leaves = _leaves(8)
        tree = MerkleTree(leaves)
        assert not tree.verify(leaves[3], tree.prove(4))

    def test_wrong_root_rejected(self):
        leaves = _leaves(8)
        tree = MerkleTree(leaves)
        proof = tree.prove(0)
        assert not MerkleTree.verify_against_root(leaves[0], proof, b"\x00" * 32)

    def test_out_of_range_index_rejected(self):
        tree = MerkleTree(_leaves(4))
        with pytest.raises(IndexError):
            tree.prove(4)

    def test_proof_size_is_logarithmic(self):
        tree = MerkleTree(_leaves(256))
        proof = tree.prove(100)
        assert proof.digest_count == 8
        assert proof.size_bytes(32) == 8 * 32

    def test_root_from_payload(self):
        leaves = _leaves(9)
        tree = MerkleTree(leaves)
        for index, payload in enumerate(leaves):
            proof = tree.prove(index)
            assert MerkleTree.root_from_payload(payload, proof) == tree.root

    def test_root_from_proof_with_leaf_digest(self):
        leaves = _leaves(6)
        tree = MerkleTree(leaves)
        proof = tree.prove(2)
        assert MerkleTree.root_from_proof(tree.leaf_digest(2), proof) == tree.root


class TestLeafDigestHelpers:
    def test_leaf_digest_of_matches_tree(self):
        leaves = _leaves(5)
        tree = MerkleTree(leaves)
        for index, payload in enumerate(leaves):
            assert MerkleTree.leaf_digest_of(payload) == tree.leaf_digest(index)

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 6, 11, 17])
    def test_root_from_leaf_digests_matches_tree(self, count):
        leaves = _leaves(count)
        tree = MerkleTree(leaves)
        digests = [MerkleTree.leaf_digest_of(payload) for payload in leaves]
        assert MerkleTree.root_from_leaf_digests(digests) == tree.root

    def test_root_from_leaf_digests_rejects_empty(self):
        with pytest.raises(ValueError):
            MerkleTree.root_from_leaf_digests([])

    def test_projection_use_case(self):
        # The verifier replaces some payloads with digests supplied by the
        # publisher: the reconstructed root must match.
        leaves = _leaves(6)
        tree = MerkleTree(leaves)
        digests = []
        for index, payload in enumerate(leaves):
            if index % 2 == 0:
                digests.append(MerkleTree.leaf_digest_of(payload))  # revealed
            else:
                digests.append(tree.leaf_digest(index))  # provided by publisher
        assert MerkleTree.root_from_leaf_digests(digests) == tree.root
