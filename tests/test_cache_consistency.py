"""Cache correctness: the fast path must be invisible in every proof byte.

Property-based tests asserting that cached and uncached publishers/verifiers
produce byte-identical proofs and identical accept/reject decisions — including
after ``insert_record`` / ``delete_record`` / ``update_record`` invalidation —
plus the Section 6.3 update-receipt accounting the caches rely on.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import VerificationError
from repro.core.publisher import Publisher
from repro.core.relational import SignedRelation
from repro.core.verifier import ResultVerifier
from repro.db.query import Conjunction, JoinQuery, Projection, Query, RangeCondition
from repro.db.relation import Relation
from repro.db.schema import Attribute, AttributeType, KeyDomain, Schema
from repro.db.workload import generate_customers_and_orders

DOMAIN = KeyDomain(0, 512)

SCHEMA = Schema.build(
    "t",
    [
        Attribute("k", AttributeType.INTEGER, domain=DOMAIN),
        Attribute("name", AttributeType.STRING),
        Attribute("grade", AttributeType.INTEGER),
    ],
    key="k",
)


def _rows(keys, grades):
    return [
        {"k": key, "name": f"row-{key}", "grade": grade}
        for key, grade in zip(keys, grades)
    ]


def _publisher_pair(rows, signature_scheme):
    """(cached, uncached) publishers over independently built identical relations."""
    cached = Publisher(
        {"t": SignedRelation(Relation.from_rows(SCHEMA, rows), signature_scheme)},
        vo_cache=True,
    )
    uncached = Publisher(
        {
            "t": SignedRelation(
                Relation.from_rows(SCHEMA, rows), signature_scheme, memoize=False
            )
        },
        vo_cache=False,
    )
    return cached, uncached


def _assert_identical(first, second):
    """Structural and byte-level equality of two published results."""
    assert first.rows == second.rows
    assert first.proof == second.proof
    assert repr(first.proof) == repr(second.proof)


keys_strategy = st.lists(
    st.integers(min_value=1, max_value=511), min_size=0, max_size=10, unique=True
)
grades_strategy = st.lists(st.integers(min_value=0, max_value=5), min_size=10, max_size=10)
bound_strategy = st.integers(min_value=1, max_value=511)


class TestCachedUncachedEquivalence:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(keys=keys_strategy, grades=grades_strategy, low=bound_strategy, high=bound_strategy)
    def test_range_proofs_byte_identical(
        self, signature_scheme, keys, grades, low, high
    ):
        rows = _rows(keys, grades)
        cached, uncached = _publisher_pair(rows, signature_scheme)
        query = Query("t", Conjunction((RangeCondition("k", low, high),)))
        hot_first = cached.answer(query)
        cold = uncached.answer(query)
        hot_repeat = cached.answer(query)  # second answer: served from the cache
        _assert_identical(cold, hot_first)
        _assert_identical(cold, hot_repeat)

        verifier = ResultVerifier({"t": cached.signed_relation("t").manifest})
        if hot_first.proof is not None:
            report_hot = verifier.verify(query, hot_repeat.rows, hot_repeat.proof)
            report_cold = verifier.verify(query, cold.rows, cold.proof)
            assert report_hot.result_rows == report_cold.result_rows

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        keys=st.lists(
            st.integers(min_value=1, max_value=511), min_size=2, max_size=8, unique=True
        ),
        grades=grades_strategy,
        low=bound_strategy,
        high=bound_strategy,
        condition_grade=st.integers(min_value=0, max_value=5),
    )
    def test_multipoint_projection_proofs_byte_identical(
        self, signature_scheme, keys, grades, low, high, condition_grade
    ):
        rows = _rows(keys, grades)
        cached, uncached = _publisher_pair(rows, signature_scheme)
        query = Query(
            "t",
            Conjunction(
                (
                    RangeCondition("k", low, high),
                    RangeCondition("grade", condition_grade, None),
                )
            ),
            Projection(attributes=("name",)),
        )
        _assert_identical(uncached.answer(query), cached.answer(query))
        _assert_identical(uncached.answer(query), cached.answer(query))

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        keys=st.lists(
            st.integers(min_value=2, max_value=510), min_size=3, max_size=8, unique=True
        ),
        grades=grades_strategy,
        low=bound_strategy,
        high=bound_strategy,
        mutation=st.sampled_from(["insert", "delete", "update"]),
        fresh_key=st.integers(min_value=1, max_value=511),
    )
    def test_mutations_invalidate_precisely(
        self, signature_scheme, keys, grades, low, high, mutation, fresh_key,
    ):
        """After any mutation the cached publisher matches a cold rebuild."""
        rows = _rows(keys, grades)
        cached, _ = _publisher_pair(rows, signature_scheme)
        signed = cached.signed_relation("t")
        query = Query("t", Conjunction((RangeCondition("k", low, high),)))
        cached.answer(query)  # warm the fragment cache before mutating

        if mutation == "insert" and fresh_key not in set(keys):
            signed.insert_record({"k": fresh_key, "name": "new", "grade": 1})
        elif mutation == "delete":
            signed.delete_record(signed.relation[0])
        elif mutation == "update":
            victim = signed.relation[0]
            signed.update_record(victim, victim.replace(grade=victim["grade"] + 1))

        current_rows = [record.as_dict() for record in signed.relation]
        _, rebuilt = _publisher_pair(current_rows, signature_scheme)
        _assert_identical(rebuilt.answer(query), cached.answer(query))

        verifier = ResultVerifier({"t": signed.manifest})
        result = cached.answer(query)
        if result.proof is not None:
            verifier.verify(query, result.rows, result.proof)

    def test_swapped_relation_not_served_stale_fragments(self, signature_scheme):
        """Replacing a hosted relation after construction must flush its cache."""
        rows_a = _rows([10, 20, 30], [1, 2, 3])
        rows_b = _rows([10, 25, 30], [4, 5, 6])
        cached, _ = _publisher_pair(rows_a, signature_scheme)
        query = Query("t", Conjunction((RangeCondition("k", 5, 28),)))
        cached.answer(query)  # warm the cache with relation A's fragments

        replacement = SignedRelation(
            Relation.from_rows(SCHEMA, rows_b), signature_scheme
        )
        cached.database["t"] = replacement
        swapped = cached.answer(query)
        rebuilt = Publisher({"t": replacement}, vo_cache=False).answer(query)
        _assert_identical(rebuilt, swapped)
        ResultVerifier({"t": replacement.manifest}).verify(
            query, swapped.rows, swapped.proof
        )
        # ...and mutations on the replacement now invalidate the cache too.
        replacement.insert_record({"k": 15, "name": "late", "grade": 2})
        after = cached.answer(query)
        ResultVerifier({"t": replacement.manifest}).verify(
            query, after.rows, after.proof
        )
        assert len(after.rows) == len(swapped.rows) + 1

    def test_multi_name_hosting_survives_swap_of_one_name(self, signature_scheme):
        """One relation hosted under two names: swapping one must not detach
        the other name's cache from invalidation."""
        rows = _rows([10, 20, 30], [1, 2, 3])
        shared = SignedRelation(Relation.from_rows(SCHEMA, rows), signature_scheme)
        publisher = Publisher({"a": shared, "b": shared})
        query_b = Query("b", Conjunction((RangeCondition("k", 5, 25),)))

        other = SignedRelation(
            Relation.from_rows(SCHEMA, _rows([15], [9])), signature_scheme
        )
        publisher.database["a"] = other
        publisher.answer(Query("a", Conjunction((RangeCondition("k", 5, 25),))))
        publisher.answer(query_b)  # caches fragments for name "b"

        victim = shared.relation[0]
        shared.update_record(victim, victim.replace(grade=7))
        result = publisher.answer(query_b)
        ResultVerifier({"b": shared.manifest}).verify(
            query_b, result.rows, result.proof
        )

    def test_dead_publisher_listeners_are_pruned(self, signature_scheme):
        """Garbage-collected publishers must not stay subscribed to the relation."""
        import gc

        rows = _rows([10, 20, 30], [1, 2, 3])
        signed = SignedRelation(Relation.from_rows(SCHEMA, rows), signature_scheme)
        for _ in range(5):
            Publisher({"t": signed}).answer(
                Query("t", Conjunction((RangeCondition("k", 5, 25),)))
            )
        gc.collect()
        assert len(signed._listeners) == 5
        signed.insert_record({"k": 40, "name": "x", "grade": 1})  # prunes dead ones
        assert signed._listeners == []

    def test_reject_decisions_identical(self, signature_scheme):
        """Tampered rows are rejected with or without caches."""
        rows = _rows([10, 20, 30], [1, 2, 3])
        cached, uncached = _publisher_pair(rows, signature_scheme)
        query = Query("t", Conjunction((RangeCondition("k", 5, 25),)))
        for publisher in (cached, uncached):
            result = publisher.answer(query)
            verifier = ResultVerifier({"t": publisher.signed_relation("t").manifest})
            tampered = [dict(row) for row in result.rows]
            tampered[0]["name"] = "forged"
            with pytest.raises(VerificationError):
                verifier.verify(query, tampered, result.proof)


class TestJoinBatching:
    def test_batched_point_proofs_match_individual_answers(self, signature_scheme):
        customers, orders = generate_customers_and_orders(10, 30, seed=17)
        database = {
            "customers": SignedRelation(customers, signature_scheme),
            "orders": SignedRelation(orders, signature_scheme),
        }
        publisher = Publisher(database)
        join = JoinQuery("orders", "customers", "customer_id", "customer_id")
        result = publisher.answer_join(join)
        assert result.proof is not None
        for value, point_proof in result.proof.right_point_proofs.items():
            point_query = Query(
                "customers",
                Conjunction((RangeCondition("customer_id", value, value),)),
                Projection(),
            )
            individual = publisher.answer(point_query)
            assert individual.proof == point_proof
            assert repr(individual.proof) == repr(point_proof)

    def test_join_verifies_after_mutation(self, signature_scheme):
        customers, orders = generate_customers_and_orders(8, 20, seed=23)
        database = {
            "customers": SignedRelation(customers, signature_scheme),
            "orders": SignedRelation(orders, signature_scheme),
        }
        publisher = Publisher(database)
        verifier = ResultVerifier(
            {name: signed.manifest for name, signed in database.items()}
        )
        join = JoinQuery("orders", "customers", "customer_id", "customer_id")
        first = publisher.answer_join(join)
        verifier.verify_join(join, first.rows, first.proof, first.left_rows)

        victim = database["orders"].relation[0]
        database["orders"].delete_record(victim)
        second = publisher.answer_join(join)
        verifier.verify_join(join, second.rows, second.proof, second.left_rows)
        assert len(second.rows) == len(first.rows) - 1


class TestUpdateReceiptAccounting:
    def _signed(self, signature_scheme, keys=(50, 100, 150, 200)):
        rows = _rows(list(keys), [1] * len(keys))
        return SignedRelation(Relation.from_rows(SCHEMA, rows), signature_scheme)

    def test_insert_counts_one_digest_and_three_messages(self, signature_scheme):
        signed = self._signed(signature_scheme)
        receipt = signed.insert_record({"k": 120, "name": "x", "grade": 0})
        assert receipt.digests_recomputed == 1
        assert receipt.signatures_recomputed == 3
        assert receipt.chain_messages_recomputed == 3
        assert receipt.chain_messages_recomputed == len(receipt.entries_affected)

    def test_delete_counts_zero_digests_but_two_messages(self, signature_scheme):
        signed = self._signed(signature_scheme)
        receipt = signed.delete_record(signed.relation[1])
        assert receipt.digests_recomputed == 0
        assert receipt.signatures_recomputed == 2
        assert receipt.chain_messages_recomputed == 2

    def test_update_sums_delete_and_insert(self, signature_scheme):
        signed = self._signed(signature_scheme)
        victim = signed.relation[2]
        receipt = signed.update_record(victim, victim.replace(grade=9))
        assert receipt.digests_recomputed == 1  # 0 for the delete + 1 for the insert
        assert receipt.signatures_recomputed == 5
        assert receipt.chain_messages_recomputed == 5

    def test_version_bumps_and_listeners_fire(self, signature_scheme):
        signed = self._signed(signature_scheme)
        events = []
        signed.add_invalidation_listener(
            lambda version, keys: events.append((version, keys))
        )
        before = signed.version
        signed.insert_record({"k": 60, "name": "y", "grade": 2})
        signed.delete_record(signed.relation[0])
        assert signed.version == before + 2
        assert len(events) == 2
        inserted_version, inserted_keys = events[0]
        assert inserted_version == before + 1
        assert 60 in inserted_keys
        deleted_version, deleted_keys = events[1]
        assert deleted_version == before + 2
        assert 50 in deleted_keys  # the removed record's key is announced
