"""End-to-end publication service: server, shard router, verifying client.

Covers the full deployment story: a :class:`PublicationServer` serves encoded
VOs over TCP (in-process, and — for the acceptance scenario — from a separate
server *process*), a :class:`VerifyingClient` accepts genuine results, and
tampered / incomplete / mis-routed answers are rejected with typed errors.
"""

import os
import socket
import subprocess
import sys
import threading

import pytest

from repro.core.errors import VerificationError
from repro.db.query import Conjunction, JoinQuery, Projection, Query, RangeCondition
from repro.service import (
    ErrorResponse,
    ListRelationsRequest,
    ManifestRequest,
    ManifestResponse,
    PublicationServer,
    QueryRequest,
    QueryResponse,
    RelationListing,
    RemoteError,
    ServerConfig,
    ServiceError,
    VerifyingClient,
    build_demo_world,
)
from repro.service.protocol import recv_message, send_message
from repro.wire import WireFormatError, decode, encode

SALARY_RANGE = Query(
    "employees", Conjunction((RangeCondition("salary", 20_000, 60_000),))
)
ORDERS_JOIN = JoinQuery("orders", "customers", "customer_id", "customer_id")


@pytest.fixture(scope="module")
def demo_world():
    return build_demo_world(key_bits=512, seed=7)


@pytest.fixture(scope="module")
def live_server(demo_world):
    with PublicationServer(
        demo_world.router, config=ServerConfig(max_workers=6)
    ) as server:
        yield server


@pytest.fixture()
def client(live_server):
    host, port = live_server.address
    with VerifyingClient(host, port) as active:
        yield active


# -- the happy path -----------------------------------------------------------


def test_listing_and_manifest_ids(client, demo_world):
    from repro.wire import manifest_id

    listing = client.relations()
    assert set(listing) == {"employees", "customers", "orders"}
    for name, identifier in listing.items():
        assert identifier == manifest_id(demo_world.manifests[name])
        fetched = client.fetch_manifest(name)
        assert manifest_id(fetched) == identifier


def test_range_query_verified_over_socket(client):
    result = client.query(SALARY_RANGE)
    assert result.report is not None and result.report.result_rows == len(result.rows)
    assert result.rows, "the demo range should be non-empty"
    for row in result.rows:
        assert 20_000 <= row["salary"] <= 60_000


def test_projection_query_verified_over_socket(client):
    query = Query(
        "employees",
        Conjunction((RangeCondition("salary", 10_000, 90_000),)),
        Projection(("name",)),
    )
    result = client.query(query)
    assert result.rows
    assert set(result.rows[0]) == {"salary", "name"}  # key always retained


def test_join_query_verified_over_socket(client):
    result = client.query_join(ORDERS_JOIN)
    assert result.rows and result.report is not None
    assert set(result.rows[0]) >= {"orders.customer_id", "customers.customer_id"}


def test_vacuous_query_over_socket(client):
    query = Query("employees", Conjunction((RangeCondition("salary", 10, 5),)))
    result = client.query(query)
    assert result.rows == () and result.proof is None


def test_unknown_relation_is_typed_error(client):
    with pytest.raises(ServiceError):
        client.query(Query("nope", Conjunction()))


def test_mismatched_manifest_id_is_typed_error(client, live_server):
    """A query naming a different relation than its manifest id is refused."""
    host, port = live_server.address
    employees_id = client.relations()["employees"]
    with socket.create_connection((host, port), timeout=10) as sock:
        send_message(
            sock,
            QueryRequest(
                manifest_id=employees_id,
                query=Query("orders", Conjunction()),
            ),
        )
        response = recv_message(sock)
    assert isinstance(response, ErrorResponse)


def test_overloaded_server_refuses_with_typed_error(demo_world):
    """Connections beyond the worker cap get ServerBusy, not a silent hang."""
    with PublicationServer(
        demo_world.router, config=ServerConfig(max_workers=1)
    ) as server:
        host, port = server.address
        with VerifyingClient(host, port) as first:
            assert first.query(SALARY_RANGE).rows  # occupies the only slot
            with VerifyingClient(host, port) as second:
                with pytest.raises(RemoteError) as excinfo:
                    second.query(SALARY_RANGE)
                assert excinfo.value.code == "ServerBusy"
        assert server.connections_refused >= 1


def test_malformed_frame_is_answered_and_connection_dropped(live_server):
    host, port = live_server.address
    with socket.create_connection((host, port), timeout=10) as sock:
        payload = b"\x00garbage-that-is-not-a-wire-artifact"
        sock.sendall(len(payload).to_bytes(4, "big") + payload)
        response = recv_message(sock)
        assert isinstance(response, ErrorResponse)
        assert response.code == "WireFormatError"


def test_concurrent_clients_share_the_server_caches(demo_world, live_server):
    host, port = live_server.address
    target = demo_world.router.route(
        dict(demo_world.router.listing())["employees"]
    )
    vo_hits_before = target.publisher.vo_cache_hits
    response_stats = live_server.handler.cache_stats().get("responses", {})
    response_hits_before = response_stats.get("hits", 0)
    errors = []

    def worker():
        try:
            with VerifyingClient(host, port) as active:
                for _ in range(4):
                    result = active.query(SALARY_RANGE)
                    assert result.rows
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # A query that became hot through one client's connection is served from
    # shared server-side caches for every other client: either the encoded
    # response itself (response cache) or its VO fragments.
    vo_hits = target.publisher.vo_cache_hits - vo_hits_before
    response_stats = live_server.handler.cache_stats().get("responses", {})
    response_hits = response_stats.get("hits", 0) - response_hits_before
    assert vo_hits + response_hits > 0, (
        "requests from different connections should hit the shared caches"
    )


# -- rejection paths ----------------------------------------------------------


class _EvilServer:
    """A publisher that serves genuine metadata but tampered query answers."""

    def __init__(self, world, tamper):
        self.world = world
        self.tamper = tamper
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()[:2]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            with connection:
                try:
                    while True:
                        request = recv_message(connection)
                        if request is None:
                            break
                        send_message(connection, self._respond(request))
                except OSError:
                    pass

    def _respond(self, request):
        router = self.world.router
        if isinstance(request, ListRelationsRequest):
            return RelationListing(entries=router.listing())
        if isinstance(request, ManifestRequest):
            return ManifestResponse(
                manifest=router.manifest_by_name(request.relation_name)
            )
        if not isinstance(request, QueryRequest):
            return ErrorResponse(
                code="UnknownRequest",
                reason="unsupported",
                message=f"evil server does not serve {type(request).__name__}",
            )
        target = router.route(request.manifest_id)
        result = target.publisher.answer(request.query, role=request.role)
        rows, proof = self.tamper(
            [dict(row) for row in result.rows], result.proof
        )
        return QueryResponse(rows=tuple(rows), proof=proof)

    def close(self):
        self._listener.close()


class _ImpersonatingServer(_EvilServer):
    """A hostile publisher running its own self-consistent world.

    It holds its *own* owner key and serves genuine-looking, internally
    consistent answers — the attack the manifest trust root must stop.  It
    ignores the manifest id in query requests (an honest server would refuse
    an unknown id, which already reveals the impersonation).
    """

    def _respond(self, request):
        router = self.world.router
        if isinstance(request, ListRelationsRequest):
            return RelationListing(entries=router.listing())
        if isinstance(request, ManifestRequest):
            return ManifestResponse(
                manifest=router.manifest_by_name(request.relation_name)
            )
        if not isinstance(request, QueryRequest):
            return ErrorResponse(
                code="UnknownRequest",
                reason="unsupported",
                message=f"imposter does not serve {type(request).__name__}",
            )
        own_id = dict(router.listing())[request.query.relation_name]
        target = router.route(own_id)
        result = target.publisher.answer(request.query, role=request.role)
        return QueryResponse(
            rows=tuple(dict(row) for row in result.rows), proof=result.proof
        )


def test_pinned_client_rejects_impersonating_publisher(demo_world):
    """Manifests are the trust root: pinning them defeats a hostile server."""
    from repro.wire import manifest_id

    imposter = _ImpersonatingServer(
        build_demo_world(key_bits=512, seed=8), tamper=None
    )
    try:
        # Full manifests from the genuine owner's authenticated channel: the
        # imposter's answers are signed under the wrong key and are rejected.
        with VerifyingClient(
            *imposter.address, trusted_manifests=dict(demo_world.manifests)
        ) as active:
            with pytest.raises(VerificationError):
                active.query(SALARY_RANGE)
        # Pinned ids alone already reject at manifest-fetch time.
        pinned = {"employees": manifest_id(demo_world.manifests["employees"])}
        with VerifyingClient(*imposter.address, expected_ids=pinned) as active:
            with pytest.raises(ServiceError):
                active.fetch_manifest("employees")
    finally:
        imposter.close()


@pytest.mark.parametrize(
    "name,tamper",
    [
        ("dropped_row", lambda rows, proof: (rows[:-1], proof)),
        (
            "edited_value",
            lambda rows, proof: (
                [dict(rows[0], salary=rows[0]["salary"] + 1)] + rows[1:],
                proof,
            ),
        ),
        ("missing_proof", lambda rows, proof: (rows, None)),
        (
            "spurious_row",
            lambda rows, proof: (rows + [dict(rows[0], salary=59_999)], proof),
        ),
    ],
)
def test_client_rejects_incomplete_or_tampered_answers(demo_world, name, tamper):
    evil = _EvilServer(demo_world, tamper)
    try:
        with VerifyingClient(*evil.address) as active:
            with pytest.raises(VerificationError):
                active.query(SALARY_RANGE)
    finally:
        evil.close()


def test_client_rejects_bytes_tampered_in_transit(demo_world, live_server, client):
    """Raw protocol exchange with the real server; response bytes flipped."""
    host, port = live_server.address
    employees_id = client.relations()["employees"]
    manifest = client.fetch_manifest("employees")
    from repro.core.verifier import ResultVerifier

    verifier = ResultVerifier({"employees": manifest})
    with socket.create_connection((host, port), timeout=10) as sock:
        send_message(
            sock, QueryRequest(manifest_id=employees_id, query=SALARY_RANGE)
        )
        from repro.service.protocol import recv_frame

        payload = recv_frame(sock)
    assert payload is not None
    genuine = decode(payload)
    verifier.verify(SALARY_RANGE, genuine.rows, genuine.proof)  # sanity

    for offset in range(5, len(payload), max(1, len(payload) // 40)):
        flipped = payload[:offset] + bytes((payload[offset] ^ 0xFF,)) + payload[offset + 1 :]
        try:
            response = decode(flipped)
        except WireFormatError:
            continue
        with pytest.raises((VerificationError, WireFormatError)):
            if not isinstance(response, QueryResponse):
                raise WireFormatError("tampering changed the message type")
            verifier.verify(SALARY_RANGE, response.rows, response.proof)


# -- the acceptance scenario: separate processes ------------------------------


def test_cross_process_server_and_client(tmp_path):
    """A server process serves encoded VOs over a socket to a client process.

    The client accepts the genuine answer, and rejects a tampered variant of
    the same over-the-wire bytes — all against a publisher it shares no
    memory with.
    """
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo_root, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--key-bits", "512"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=repo_root,
    )
    try:
        port_line = process.stdout.readline().strip()
        assert port_line.startswith("PORT "), f"unexpected server output: {port_line!r}"
        port = int(port_line.split()[1])
        relations_line = process.stdout.readline().strip()
        assert relations_line.startswith("RELATIONS ")

        with VerifyingClient("127.0.0.1", port) as active:
            result = active.query(SALARY_RANGE)
            assert result.rows and result.report is not None

            join_result = active.query_join(ORDERS_JOIN)
            assert join_result.rows and join_result.report is not None

            # Tamper with the exact bytes that crossed the socket: re-encode
            # the answer with one salary nudged and verify it is rejected.
            manifest = active.fetch_manifest("employees")
            from repro.core.verifier import ResultVerifier

            verifier = ResultVerifier({"employees": manifest})
            tampered_rows = [dict(row) for row in result.rows]
            tampered_rows[0]["salary"] += 1
            blob = encode(
                QueryResponse(rows=tuple(tampered_rows), proof=result.proof)
            )
            tampered = decode(blob)
            with pytest.raises(VerificationError):
                verifier.verify(SALARY_RANGE, tampered.rows, tampered.proof)

            # An incomplete variant (a dropped row) is rejected as well.
            short = decode(
                encode(QueryResponse(rows=result.rows[:-1], proof=result.proof))
            )
            with pytest.raises(VerificationError):
                verifier.verify(SALARY_RANGE, short.rows, short.proof)
    finally:
        process.terminate()
        process.wait(timeout=10)
