"""Edge cases: proof data structures, reports, empty relations, comparison queries."""

import pytest

from repro.core.errors import VerificationError
from repro.core.proof import (
    BoundaryEntryProof,
    FilteredEntryProof,
    MatchedEntryProof,
    SignatureBundle,
)
from repro.core.publisher import Publisher
from repro.core.report import VerificationReport
from repro.core.verifier import ResultVerifier
from repro.crypto.aggregate import AggregateSignature
from repro.core.digest import BoundaryAssist, EntryAssist
from repro.db.query import (
    ComparisonOperator,
    Conjunction,
    Projection,
    Query,
    RangeCondition,
    comparison_to_ranges,
)
from repro.db.relation import Relation
from repro.db.workload import employee_schema, generate_employees


class TestSignatureBundle:
    def test_requires_exactly_one_transport(self):
        with pytest.raises(ValueError):
            SignatureBundle()
        with pytest.raises(ValueError):
            SignatureBundle(individual=(1,), aggregate=AggregateSignature(1, 1))

    def test_individual_counts(self):
        bundle = SignatureBundle(individual=(1, 2, 3))
        assert not bundle.is_aggregated
        assert bundle.signature_count == 3
        assert bundle.covered_messages == 3

    def test_aggregate_counts(self):
        bundle = SignatureBundle(aggregate=AggregateSignature(value=5, count=7))
        assert bundle.is_aggregated
        assert bundle.signature_count == 1
        assert bundle.covered_messages == 7


class TestProofAccounting:
    def test_boundary_entry_proof_counts(self):
        proof = BoundaryEntryProof(
            side="lower",
            chain_boundary=BoundaryAssist(intermediate_digests=(b"a", b"b")),
            other_chain_digest=b"x",
            attribute_root=b"y",
        )
        assert proof.digest_count == 4

    def test_boundary_side_validated(self):
        with pytest.raises(ValueError):
            BoundaryEntryProof(
                side="middle",
                chain_boundary=BoundaryAssist(intermediate_digests=(b"a",)),
                other_chain_digest=b"x",
                attribute_root=b"y",
            )

    def test_matched_entry_counts(self):
        entry = MatchedEntryProof(
            upper_assist=EntryAssist(mht_root=b"r"),
            lower_assist=EntryAssist(mht_root=b"r"),
            dropped_attribute_digests={"photo": b"d", "dept": b"d"},
        )
        assert entry.digest_count == 4

    def test_filtered_entry_counts(self):
        entry = FilteredEntryProof(
            revealed_attributes={"dept": 2},
            attribute_leaf_digests={"name": b"d"},
            upper_chain_digest=b"u",
            lower_chain_digest=b"l",
        )
        assert entry.digest_count == 3

    def test_range_proof_size_formula(self, figure1_publisher):
        query = Query("employees", Conjunction((RangeCondition("salary", None, 9999),)))
        proof = figure1_publisher.answer(query, role="hr_manager").proof
        assert proof.size_bytes(16, 128) == proof.digest_count * 16 + 128
        assert proof.size_bytes(32, 64) == proof.digest_count * 32 + 64


class TestVerificationReport:
    def test_merge_adds_counters(self):
        left = VerificationReport(checked_messages=2, signature_verifications=1, result_rows=3)
        right = VerificationReport(checked_messages=5, hash_operations=7, details={"a": 1})
        merged = left.merge(right)
        assert merged.checked_messages == 7
        assert merged.signature_verifications == 1
        assert merged.hash_operations == 7
        assert merged.result_rows == 3
        assert merged.details == {"a": 1}

    def test_default_report_is_zeroed(self):
        report = VerificationReport()
        assert report.checked_messages == 0
        assert report.result_rows == 0


class TestEmptyRelation:
    @pytest.fixture(scope="class")
    def empty_world(self, owner):
        relation = Relation(employee_schema())
        signed = owner.publish_relation(relation)
        return (
            Publisher({"employees": signed}),
            ResultVerifier({"employees": signed.manifest}),
        )

    def test_signed_empty_relation_has_only_delimiters(self, owner):
        signed = owner.publish_relation(Relation(employee_schema()))
        assert signed.entry_count() == 2
        assert signed.verify_internal_consistency()

    def test_any_query_is_provably_empty(self, empty_world):
        publisher, verifier = empty_world
        for low, high in ((None, None), (1, 50_000), (99_000, None)):
            query = Query(
                "employees", Conjunction((RangeCondition("salary", low, high),))
            )
            result = publisher.answer(query)
            assert result.rows == []
            report = verifier.verify(query, result.rows, result.proof)
            assert report.checked_messages == 1

    def test_claimed_rows_against_empty_relation_rejected(self, empty_world):
        publisher, verifier = empty_world
        query = Query("employees")
        result = publisher.answer(query)
        fake_row = {
            "salary": 1000,
            "emp_id": "x",
            "name": "X",
            "dept": 1,
            "photo": b"",
        }
        with pytest.raises(VerificationError):
            verifier.verify(query, [fake_row], result.proof)


class TestComparisonQueriesEndToEnd:
    """The Section 4.1 reduction: every comparison operator verifies via ranges."""

    @pytest.fixture(scope="class")
    def world(self, owner):
        relation = generate_employees(30, seed=13, photo_bytes=2)
        signed = owner.publish_relation(relation)
        return (
            relation,
            Publisher({"employees": signed}),
            ResultVerifier({"employees": signed.manifest}),
        )

    @pytest.mark.parametrize(
        "operator",
        [
            ComparisonOperator.EQ,
            ComparisonOperator.LT,
            ComparisonOperator.LE,
            ComparisonOperator.GT,
            ComparisonOperator.GE,
            ComparisonOperator.NE,
        ],
    )
    def test_operator_round_trip(self, world, operator):
        relation, publisher, verifier = world
        pivot = relation.keys()[len(relation) // 2]
        domain = relation.schema.key_domain
        ranges = comparison_to_ranges("salary", operator, pivot, domain)
        collected = []
        for condition in ranges:
            query = Query("employees", Conjunction((condition,)))
            result = publisher.answer(query)
            verifier.verify(query, result.rows, result.proof)
            collected.extend(row["salary"] for row in result.rows)
        expected = {
            ComparisonOperator.EQ: [k for k in relation.keys() if k == pivot],
            ComparisonOperator.LT: [k for k in relation.keys() if k < pivot],
            ComparisonOperator.LE: [k for k in relation.keys() if k <= pivot],
            ComparisonOperator.GT: [k for k in relation.keys() if k > pivot],
            ComparisonOperator.GE: [k for k in relation.keys() if k >= pivot],
            ComparisonOperator.NE: [k for k in relation.keys() if k != pivot],
        }[operator]
        assert sorted(collected) == expected


class TestProjectionEdgeCases:
    def test_projection_of_key_only(self, figure1_publisher, figure1_verifier):
        query = Query(
            "employees",
            Conjunction((RangeCondition("salary", None, 9999),)),
            Projection(attributes=("salary",)),
        )
        result = figure1_publisher.answer(query, role="hr_manager")
        assert all(set(row) == {"salary"} for row in result.rows)
        figure1_verifier.verify(query, result.rows, result.proof, role="hr_manager")

    def test_column_restricted_role(self, owner, figure1_relation):
        from repro.db.access_control import AccessControlPolicy, Role

        policy = AccessControlPolicy()
        policy.add_role(Role("payroll", visible_attributes=("salary", "emp_id")))
        database = owner.publish_database({"employees": figure1_relation})
        publisher = Publisher(database.relations, policy=policy)
        verifier = ResultVerifier(database.manifests, policy=policy)
        query = Query("employees")
        result = publisher.answer(query, role="payroll")
        assert all(set(row) == {"salary", "emp_id"} for row in result.rows)
        verifier.verify(query, result.rows, result.proof, role="payroll")

    def test_verifier_rejects_wrong_projection_shape(
        self, figure1_publisher, figure1_verifier
    ):
        query = Query(
            "employees",
            Conjunction((RangeCondition("salary", None, 9999),)),
            Projection(attributes=("name",)),
        )
        result = figure1_publisher.answer(query, role="hr_manager")
        narrowed = [{"salary": row["salary"]} for row in result.rows]
        with pytest.raises(VerificationError):
            figure1_verifier.verify(query, narrowed, result.proof, role="hr_manager")


class TestMultipleSortOrders:
    def test_second_sort_order_verifies_independently(self, owner):
        from repro.db.workload import generate_customers_and_orders

        customers, orders = generate_customers_and_orders(12, 40, seed=21)
        # orders is already keyed on customer_id; publish it also keyed on amount
        # is impossible (amount lacks a domain), so publish two relations keyed on
        # customer_id under different names to model separate sort orders.
        database = owner.publish_database({"orders_by_fk": orders, "customers": customers})
        publisher = Publisher(database.relations)
        verifier = ResultVerifier(database.manifests)
        pivot = sorted(customers.keys())[6]
        query = Query(
            "orders_by_fk", Conjunction((RangeCondition("customer_id", None, pivot),))
        )
        result = publisher.answer(query)
        verifier.verify(query, result.rows, result.proof)
        assert all(row["customer_id"] <= pivot for row in result.rows)
