"""Tests for the baseline schemes: Devanbu MHT, naive signatures, VB-tree."""

import pytest

from repro.baselines.devanbu import DevanbuMHT, DevanbuVerifier
from repro.baselines.naive import NaiveSignedRelation
from repro.baselines.vbtree import VBTree
from repro.db.workload import figure1_employee_relation, generate_employees


@pytest.fixture(scope="module")
def employees():
    return generate_employees(50, seed=12, photo_bytes=4)


class TestDevanbu:
    @pytest.fixture(scope="class")
    def mht(self, signature_scheme, employees):
        return DevanbuMHT(employees, signature_scheme)

    @pytest.fixture(scope="class")
    def verifier(self, signature_scheme, employees):
        return DevanbuVerifier(
            employees.schema.attribute_names,
            employees.schema.key,
            signature_scheme.verifier,
        )

    def test_range_query_round_trip(self, mht, verifier, employees):
        keys = employees.keys()
        rows, proof = mht.answer_range(keys[10], keys[20])
        assert len(rows) == 11
        assert verifier.verify_range(keys[10], keys[20], rows, proof)

    def test_range_at_table_start(self, mht, verifier, employees):
        keys = employees.keys()
        rows, proof = mht.answer_range(1, keys[5])
        assert proof.left_is_table_start
        assert verifier.verify_range(1, keys[5], rows, proof)

    def test_range_at_table_end(self, mht, verifier, employees):
        keys = employees.keys()
        rows, proof = mht.answer_range(keys[-5], 99_999)
        assert proof.right_is_table_end
        assert verifier.verify_range(keys[-5], 99_999, rows, proof)

    def test_boundary_tuples_are_exposed(self, mht, employees):
        """Limitation (4): the user sees tuples outside the query range."""
        keys = employees.keys()
        rows, proof = mht.answer_range(keys[10], keys[20])
        assert proof.boundary_rows_exposed == 2
        exposed_keys = [row["salary"] for row in proof.expanded_rows]
        assert exposed_keys[0] < keys[10] and exposed_keys[-1] > keys[20]

    def test_all_attributes_are_exposed(self, mht, employees):
        """Limitation (3): projection is impossible; BLOBs travel with the VO."""
        keys = employees.keys()
        _, proof = mht.answer_range(keys[10], keys[12])
        assert all("photo" in row for row in proof.expanded_rows)

    def test_vo_grows_with_table_size(self, signature_scheme):
        """Limitation (2): the VO carries O(log |table|) digests."""
        small = DevanbuMHT(generate_employees(32, seed=1, photo_bytes=2), signature_scheme)
        large = DevanbuMHT(generate_employees(512, seed=1, photo_bytes=2), signature_scheme)
        small_keys = small.relation.keys()
        large_keys = large.relation.keys()
        _, small_proof = small.answer_range(small_keys[10], small_keys[12])
        _, large_proof = large.answer_range(large_keys[10], large_keys[12])
        assert large_proof.digest_count > small_proof.digest_count

    def test_omitted_row_detected(self, mht, verifier, employees):
        keys = employees.keys()
        rows, proof = mht.answer_range(keys[10], keys[20])
        assert not verifier.verify_range(keys[10], keys[20], rows[:-1], proof)

    def test_tampered_row_detected(self, mht, verifier, employees):
        keys = employees.keys()
        rows, proof = mht.answer_range(keys[10], keys[20])
        tampered_expanded = tuple(
            dict(row, name="EVIL") if index == 2 else row
            for index, row in enumerate(proof.expanded_rows)
        )
        forged = type(proof)(
            expanded_rows=tampered_expanded,
            sibling_digests=proof.sibling_digests,
            root_signature=proof.root_signature,
            leaf_range=proof.leaf_range,
            table_size=proof.table_size,
            left_is_table_start=proof.left_is_table_start,
            right_is_table_end=proof.right_is_table_end,
        )
        tampered_rows = [dict(r) for r in rows]
        tampered_rows[1]["name"] = "EVIL"
        assert not verifier.verify_range(keys[10], keys[20], tampered_rows, forged)

    def test_update_propagates_to_root(self, signature_scheme):
        relation = generate_employees(64, seed=6, photo_bytes=2)
        mht = DevanbuMHT(relation, signature_scheme)
        old_root = mht.root
        victim = relation[10]
        hashes, signatures = mht.update_record(victim, victim.replace(name="changed"))
        assert mht.root != old_root
        assert signatures == 1
        assert hashes >= mht.height  # whole root path re-hashed

    def test_figure1_hr_executive_violation(self, signature_scheme):
        """The introduction's point: Devanbu exposes records beyond the policy bound."""
        relation = figure1_employee_relation()
        mht = DevanbuMHT(relation, signature_scheme)
        rows, proof = mht.answer_range(1, 8999)  # the rewritten executive query
        exposed = [row["salary"] for row in proof.expanded_rows]
        assert 12100 in exposed  # a record the executive must not see


class TestNaive:
    @pytest.fixture(scope="class")
    def naive(self, signature_scheme, employees):
        return NaiveSignedRelation(employees, signature_scheme)

    def test_round_trip(self, naive, employees):
        keys = employees.keys()
        rows, proof = naive.answer_range(keys[5], keys[15])
        assert naive.verify(rows, proof)
        assert proof.signature_count == len(rows)

    def test_aggregated_transport(self, naive, employees):
        keys = employees.keys()
        rows, proof = naive.answer_range(keys[5], keys[15], aggregate=True)
        assert proof.signature_count == 1
        assert naive.verify(rows, proof)

    def test_tampering_detected(self, naive, employees):
        keys = employees.keys()
        rows, proof = naive.answer_range(keys[5], keys[15])
        rows[0]["name"] = "EVIL"
        assert not naive.verify(rows, proof)

    def test_omission_is_not_detected(self, naive, employees):
        """The scheme's fundamental gap: dropping rows goes unnoticed."""
        keys = employees.keys()
        rows, proof = naive.answer_range(keys[5], keys[15])
        truncated = rows[:-1]
        truncated_proof = type(proof)(signatures=proof.signatures[:-1])
        assert naive.verify(truncated, truncated_proof)

    def test_update_touches_one_signature(self, naive, employees):
        victim = employees[3]
        hashes, signatures = naive.update_record(victim, victim.replace(name="x"))
        assert signatures == 1


class TestVBTree:
    @pytest.fixture(scope="class")
    def vbtree(self, signature_scheme, employees):
        return VBTree(employees, signature_scheme, fanout=4)

    def test_covering_proof_round_trip(self, vbtree, employees):
        keys = employees.keys()
        rows, proof = vbtree.answer_range(keys[8], keys[24])
        assert len(rows) == 17
        assert proof.signature_count >= 1
        assert proof.digest_count >= 0

    def test_vo_smaller_than_per_tuple_signatures(self, vbtree, employees):
        keys = employees.keys()
        rows, proof = vbtree.answer_range(keys[0], keys[-1])
        # One covering node (the root) suffices for the full table.
        assert proof.signature_count < len(rows)

    def test_update_resigns_root_path(self, signature_scheme):
        relation = generate_employees(64, seed=4, photo_bytes=2)
        tree = VBTree(relation, signature_scheme, fanout=4)
        victim = relation[10]
        hashes, signatures = tree.update_record(victim, victim.replace(name="x"))
        assert signatures == tree.height
        assert signatures > 1  # strictly worse than the chain scheme's 3 flat signatures

    def test_small_fanout_rejected(self, signature_scheme, employees):
        with pytest.raises(ValueError):
            VBTree(employees, signature_scheme, fanout=1)

    def test_empty_relation_supported(self, signature_scheme):
        from repro.db.relation import Relation
        from repro.db.workload import employee_schema

        tree = VBTree(Relation(employee_schema()), signature_scheme)
        rows, proof = tree.answer_range(1, 99_999)
        assert rows == []
