"""The in-path TCP chaos proxy and its fault registry.

An echo server behind a :class:`ChaosProxy` makes every fault's observable
effect testable in isolation: latency delays the echo, ``reset`` turns it
into a connection reset, ``blackhole``/partitions turn it into silence in
the dropped direction, and ``trickle`` drips it one byte at a time.
"""

import socket
import threading
import time

import pytest

from repro.service.chaos import (
    CHAOS_FAULTS,
    ChaosProxy,
    ChaosRegistry,
    chaos_registry_from_env,
)


class _EchoServer:
    def __init__(self) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        threading.Thread(target=self._run, daemon=True).start()

    def _run(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(sock,), daemon=True).start()

    @staticmethod
    def _serve(sock: socket.socket) -> None:
        try:
            while True:
                data = sock.recv(65536)
                if not data:
                    return
                sock.sendall(data)
        except OSError:
            pass
        finally:
            sock.close()

    def close(self) -> None:
        self._listener.close()


@pytest.fixture()
def echo():
    server = _EchoServer()
    yield server
    server.close()


def _roundtrip(address, payload: bytes, timeout: float = 5.0) -> bytes:
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(payload)
        received = b""
        while len(received) < len(payload):
            chunk = sock.recv(65536)
            if not chunk:
                break
            received += chunk
        return received


def test_clean_forwarding(echo):
    payload = b"hello chaos"
    with ChaosProxy("127.0.0.1", echo.port) as proxy:
        assert _roundtrip(proxy.address, payload) == payload
        # The pump thread counts after forwarding; give it a beat.
        deadline = time.perf_counter() + 2.0
        while proxy.bytes_forwarded < 2 * len(payload):
            if time.perf_counter() >= deadline:
                break
            time.sleep(0.005)
        assert proxy.bytes_forwarded >= 2 * len(payload)
        assert proxy.bytes_dropped == 0


def test_latency_delays_the_echo(echo):
    registry = ChaosRegistry()
    registry.arm("latency", 0.15)
    with ChaosProxy("127.0.0.1", echo.port, faults=registry) as proxy:
        start = time.perf_counter()
        assert _roundtrip(proxy.address, b"slow") == b"slow"
        elapsed = time.perf_counter() - start
    # One delay per direction: at least ~0.3s in-path.
    assert elapsed >= 0.25
    assert registry.hits["latency"] > 0


def test_reset_tears_down_the_connection(echo):
    registry = ChaosRegistry()
    registry.arm("reset")
    with ChaosProxy("127.0.0.1", echo.port, faults=registry) as proxy:
        with socket.create_connection(proxy.address, timeout=5.0) as sock:
            sock.sendall(b"doomed")
            with pytest.raises(OSError):
                # The RST surfaces as ECONNRESET on recv (possibly after an
                # empty read on some stacks — treat EOF as reset too).
                if sock.recv(65536) == b"":
                    raise ConnectionResetError("EOF instead of data")
        assert proxy.resets_injected >= 1


def test_blackhole_drops_both_directions(echo):
    registry = ChaosRegistry()
    registry.arm("blackhole")
    with ChaosProxy("127.0.0.1", echo.port, faults=registry) as proxy:
        with socket.create_connection(proxy.address, timeout=0.3) as sock:
            sock.sendall(b"into the void")
            with pytest.raises(socket.timeout):
                sock.recv(65536)
        assert proxy.bytes_dropped >= len(b"into the void")


def test_one_way_partition_up_drops_requests_only(echo):
    registry = ChaosRegistry()
    registry.arm("partition-up")
    with ChaosProxy("127.0.0.1", echo.port, faults=registry) as proxy:
        with socket.create_connection(proxy.address, timeout=0.3) as sock:
            sock.sendall(b"lost request")
            with pytest.raises(socket.timeout):
                sock.recv(65536)
        # Disarm: traffic flows again on a fresh connection.
        registry.disarm("partition-up")
        assert _roundtrip(proxy.address, b"recovered") == b"recovered"


def test_one_way_partition_down_drops_responses_only(echo):
    registry = ChaosRegistry()
    with ChaosProxy("127.0.0.1", echo.port, faults=registry) as proxy:
        with socket.create_connection(proxy.address, timeout=0.3) as sock:
            registry.arm("partition-down")
            sock.sendall(b"request arrives, echo vanishes")
            with pytest.raises(socket.timeout):
                sock.recv(65536)
            registry.clear()


def test_trickle_drips_the_response(echo):
    registry = ChaosRegistry()
    registry.arm("trickle", 0.01)
    payload = b"x" * 20
    with ChaosProxy("127.0.0.1", echo.port, faults=registry) as proxy:
        start = time.perf_counter()
        assert _roundtrip(proxy.address, payload) == payload
        elapsed = time.perf_counter() - start
    assert elapsed >= 0.15  # ~20 bytes x 10ms, scheduler slack allowed


def test_registry_rejects_unknown_faults_and_negative_values():
    registry = ChaosRegistry()
    with pytest.raises(ValueError):
        registry.arm("gremlins")
    with pytest.raises(ValueError):
        registry.arm("latency", -1.0)


def test_registry_from_env():
    registry = chaos_registry_from_env(
        {"REPRO_CHAOS": "latency:0.25, reset"}
    )
    assert registry.armed() == {"latency": 0.25, "reset": 0.0}
    assert chaos_registry_from_env({}).armed() == {}
    with pytest.raises(ValueError):
        chaos_registry_from_env({"REPRO_CHAOS": "latency:fast"})
    with pytest.raises(ValueError):
        chaos_registry_from_env({"REPRO_CHAOS": "gremlins"})


def test_fault_vocabulary_is_closed():
    registry = ChaosRegistry()
    for fault in CHAOS_FAULTS:
        registry.arm(fault)
    assert set(registry.armed()) == set(CHAOS_FAULTS)
