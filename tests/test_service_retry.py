"""Client-side retries and server-side idempotent update resubmission.

The two halves of at-most-once-applied, at-least-once-delivered updates:

* :class:`~repro.service.retry.RetryPolicy` — bounded attempts, jittered
  exponential backoff, narrow retryability (transport breakage and
  explicitly transient server codes only), typed
  :class:`~repro.service.retry.RetriesExhausted` on giving up.
* The router's applied-update registry — a resubmitted, byte-identical
  ``UpdateRequest`` frame is answered with its *original* outcome instead
  of being applied twice, which is what makes resending updates safe.

The integration tests run a live server with the ``conn-mid-frame``
failpoint armed, so the first response is torn mid-frame exactly the way a
crashed or partitioned server would tear it.
"""

from __future__ import annotations

import pytest

from repro.db.query import Conjunction, Query, RangeCondition
from repro.service import (
    OwnerClient,
    PublicationServer,
    VerifyingClient,
    build_demo_world,
)
from repro.service.handler import RequestHandler
from repro.service.owner import build_update_request
from repro.service.protocol import RemoteError, ServiceProtocolError
from repro.service.retry import (
    DEFAULT_RETRYABLE_CODES,
    RetriesExhausted,
    RetryPolicy,
)
from repro.wire import decode, encode
from repro.wire.updates import RecordDelta

SALARY_RANGE = Query(
    "employees", Conjunction((RangeCondition("salary", 20_000, 60_000),))
)

FAST = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


# -- policy construction and classification ------------------------------------


def test_policy_rejects_impossible_parameters():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_retryability_is_narrow():
    policy = RetryPolicy()
    assert policy.retryable(ServiceProtocolError("torn frame"))
    for code in DEFAULT_RETRYABLE_CODES:
        assert policy.retryable(RemoteError(code, "busy", "try again"))
    assert not policy.retryable(RemoteError("StaleUpdate", "stale", "resign"))
    assert not policy.retryable(RemoteError("BadSignature", "forged", "no"))
    assert not policy.retryable(ValueError("not a service failure at all"))


# -- backoff -------------------------------------------------------------------


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0)
    delays = [policy.backoff(attempt) for attempt in range(1, 7)]
    assert delays == [0.0, 0.1, 0.2, 0.4, 0.5, 0.5]


def test_backoff_jitter_stays_inside_the_declared_window():
    policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5)
    assert policy.backoff(2, rand=lambda: 0.0) == pytest.approx(0.1)
    assert policy.backoff(2, rand=lambda: 1.0) == pytest.approx(0.05)


# -- run() ---------------------------------------------------------------------


def test_run_returns_the_first_success():
    calls = []
    result = FAST.run(lambda: calls.append(1) or "answer", sleep=lambda _: None)
    assert result == "answer"
    assert len(calls) == 1


def test_run_retries_transient_failures_then_succeeds():
    attempts = []
    slept = []

    def operation():
        attempts.append(1)
        if len(attempts) < 3:
            raise ServiceProtocolError("connection reset")
        return "recovered"

    assert FAST.run(operation, sleep=slept.append) == "recovered"
    assert len(attempts) == 3
    assert len(slept) == 2 and all(delay > 0 for delay in slept)


def test_run_wraps_exhaustion_in_a_typed_error():
    failure = ServiceProtocolError("the network stayed down")

    def operation():
        raise failure

    with pytest.raises(RetriesExhausted) as excinfo:
        FAST.run(operation, sleep=lambda _: None)
    assert excinfo.value.attempts == FAST.max_attempts
    assert excinfo.value.last_error is failure
    assert excinfo.value.__cause__ is failure


def test_run_propagates_semantic_errors_unchanged():
    failure = RemoteError("StaleUpdate", "stale", "re-fetch and re-sign")

    def operation():
        raise failure

    with pytest.raises(RemoteError) as excinfo:
        FAST.run(operation, sleep=lambda _: None)
    assert excinfo.value is failure


# -- the applied-update registry (server half of safe resends) -----------------


@pytest.fixture()
def world():
    return build_demo_world(key_bits=512, seed=11)


def _signed_insert(world, index: int) -> bytes:
    manifest = world.router.manifest_by_name("employees")
    delta = RecordDelta(
        kind="insert",
        values={
            "emp_id": f"retry-{index}",
            "name": f"Resubmitted {index}",
            "salary": 45_000 + index,
            "dept": 1,
            "photo": b"\x07" * 4,
        },
    )
    return encode(
        build_update_request(world.owner.signature_scheme, manifest, (delta,))
    )


def test_resubmitted_update_returns_the_original_outcome(world):
    handler = RequestHandler(world.router, response_cache=False)
    frame = _signed_insert(world, 0)
    first = handler.handle_frame(frame)
    assert not first.is_error, decode(first.payload)
    assert handler.updates_applied == 1
    again = handler.handle_frame(frame)
    assert again.payload == first.payload
    assert again.broadcast is False, "a replayed hit must not re-broadcast"
    assert handler.updates_applied == 1, "the batch must not apply twice"


# -- live-wire integration: torn responses and transparent resends -------------


def test_query_retries_through_a_torn_response(world):
    from repro.storage.faults import FaultRegistry

    faults = FaultRegistry()
    with PublicationServer(world.router, faults=faults) as server:
        host, port = server.address
        with VerifyingClient(
            host,
            port,
            trusted_manifests=dict(world.manifests),
            retry_policy=FAST,
        ) as client:
            baseline = client.query(SALARY_RANGE)
            faults.arm("conn-mid-frame", "drop")
            retried = client.query(SALARY_RANGE)
            assert retried.rows == baseline.rows
            assert faults.hits.get("conn-mid-frame", 0) >= 1


def test_query_without_a_policy_surfaces_the_torn_response(world):
    from repro.storage.faults import FaultRegistry

    faults = FaultRegistry()
    with PublicationServer(world.router, faults=faults) as server:
        host, port = server.address
        with VerifyingClient(
            host, port, trusted_manifests=dict(world.manifests)
        ) as client:
            client.query(SALARY_RANGE)
            faults.arm("conn-mid-frame", "drop")
            with pytest.raises(ServiceProtocolError):
                client.query(SALARY_RANGE)


def test_update_resend_after_lost_ack_applies_once(world):
    """The full at-most-once story over a real socket.

    The server applies the insert, then the response frame is torn mid-send.
    The owner's retry reconnects and resends the byte-identical frame; the
    registry answers with the original outcome, and the relation holds the
    row exactly once.
    """
    from repro.storage.faults import FaultRegistry

    faults = FaultRegistry()
    with PublicationServer(world.router, faults=faults) as server:
        host, port = server.address
        with OwnerClient(
            host,
            port,
            signature_scheme=world.owner.signature_scheme,
            retry_policy=FAST,
        ) as owner_client:
            faults.arm("conn-mid-frame", "drop")
            receipt = owner_client.insert(
                "employees",
                {
                    "emp_id": "resend-1",
                    "name": "sent twice, applied once",
                    "salary": 41_000,
                    "dept": 3,
                    "photo": b"\x01" * 4,
                },
            )
            assert receipt.entries_affected
        assert server.handler.updates_applied == 1
        assert faults.hits.get("conn-mid-frame", 0) >= 1
        with VerifyingClient(
            host, port, trusted_manifests=dict(world.manifests)
        ) as client:
            rows = client.query(
                Query(
                    "employees",
                    Conjunction((RangeCondition("salary", 41_000, 41_000),)),
                )
            ).rows
        assert [row["emp_id"] for row in rows] == ["resend-1"]


def test_stalled_server_times_out_into_a_bounded_retry(world, monkeypatch):
    """A silent half-open stream costs one stall window, not forever.

    The server freezes mid-frame, so the client's read is governed by the
    protocol's mid-frame stall bound (shrunk here so the test is fast)
    rather than the between-frames socket timeout; once it trips, the retry
    reconnects and completes.
    """
    from repro.service import protocol
    from repro.storage.faults import FaultRegistry

    monkeypatch.setattr(protocol, "MID_FRAME_STALL_SECONDS", 0.3)
    faults = FaultRegistry()
    policy = RetryPolicy(max_attempts=2, base_delay=0.01, attempt_timeout=0.5)
    with PublicationServer(world.router, faults=faults) as server:
        host, port = server.address
        with VerifyingClient(
            host,
            port,
            trusted_manifests=dict(world.manifests),
            retry_policy=policy,
        ) as client:
            baseline = client.query(SALARY_RANGE)
            faults.arm("conn-mid-frame", "stall")
            retried = client.query(SALARY_RANGE)
            assert retried.rows == baseline.rows
