"""Backend equivalence: memory-checkpoint and sqlite relation-store roots.

The disk-backed relation store must be *invisible* on the wire: the same
pre-signed update stream pushed into a memory-backed root and a sqlite-backed
root has to produce byte-identical acknowledgements, listings, rotation
frames and query-answer frames — for every registered proof scheme, before
and after a close/recover cycle.  FDH-RSA determinism makes the comparison
exact instead of merely structural.

The second contract is the reason the sqlite backend exists at all: recovery
of a stored chain must *not* materialise the relation's rows in RAM.  The
bounded-memory tests attach tracemalloc around recovery and compare the
sqlite peak against the memory-backend peak on the same data; the
``REPRO_SCALE``-gated variant runs the same assertion at the 10^5-row tier.
"""

from __future__ import annotations

import os
import tracemalloc

import pytest

from repro.core.publisher import Publisher
from repro.core.relational import SignedRelation
from repro.db import workload
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.schema import KeyDomain
from repro.schemes import available_schemes, get_scheme
from repro.service.handler import RequestHandler
from repro.service.owner import build_update_request
from repro.service.protocol import (
    ListRelationsRequest,
    QueryRequest,
    RotationRequest,
)
from repro.service.router import ShardRouter
from repro.storage import (
    PublicationStorage,
    open_publication_storage,
    recover_router,
)
from repro.storage.relstore import StoredSignedRelation
from repro.wire import decode, encode
from repro.wire.updates import RecordDelta

FULL_RANGE = Query(
    "employees", Conjunction((RangeCondition("salary", None, None),))
)
UPDATES = 5


def _build_router(scheme_tag: str, signature_scheme) -> ShardRouter:
    relation = workload.generate_employees(12, seed=31, photo_bytes=8)
    if scheme_tag == "chain":
        publisher = Publisher(
            {"employees": SignedRelation(relation, signature_scheme)}
        )
    else:
        scheme = get_scheme(scheme_tag)
        publisher = scheme.make_publisher(
            {"employees": scheme.publish(relation, signature_scheme)}
        )
    return ShardRouter({"hr": publisher})


def _insert_frame(signature_scheme, router: ShardRouter, index: int) -> bytes:
    manifest = router.manifest_by_name("employees")
    delta = RecordDelta(
        kind="insert",
        values={
            "emp_id": f"twin-{index}",
            "name": f"Twin {index}",
            "salary": 71_000 + index,
            "dept": 3,
            "photo": bytes([50 + index]) * 8,
        },
    )
    return encode(build_update_request(signature_scheme, manifest, (delta,)))


def _serving_frames(router: ShardRouter, storage=None) -> dict:
    """Raw response bytes for the comparison surface, via the live handler."""
    handler = RequestHandler(router, response_cache=False, storage=storage)
    frames = {}
    frames["listing"] = handler.handle_frame(encode(ListRelationsRequest())).payload
    frames["rotation"] = handler.handle_frame(
        encode(RotationRequest("employees"))
    ).payload
    frames["answer"] = handler.handle_frame(
        encode(
            QueryRequest(
                manifest_id=router.current_id("employees"), query=FULL_RANGE
            )
        )
    ).payload
    return frames


@pytest.mark.parametrize("scheme_tag", sorted(available_schemes()))
def test_backends_serve_byte_identical_frames(
    tmp_path, signature_scheme, scheme_tag
):
    """One signed stream, two backends, identical bytes everywhere."""
    signed_stream = []
    results = {}
    for backend in ("memory", "sqlite"):
        router = _build_router(scheme_tag, signature_scheme)
        root = str(tmp_path / backend)
        storage = PublicationStorage.create(
            root, router, checkpoint_every=2, backend=backend
        )
        handler = RequestHandler(router, response_cache=False, storage=storage)
        acks = []
        for index in range(UPDATES):
            if backend == "memory":
                # Sign against the live manifest; the sqlite run replays the
                # identical bytes (its manifests evolve identically).
                signed_stream.append(
                    _insert_frame(signature_scheme, router, index)
                )
            handled = handler.handle_frame(signed_stream[index])
            assert not handled.is_error, decode(handled.payload)
            acks.append(handled.payload)
        live = _serving_frames(router, storage=storage)
        storage.close()
        recovered_router, recovered_storage = open_publication_storage(
            root, lambda: pytest.fail("must recover, not rebuild")
        )
        recovered = _serving_frames(recovered_router, storage=recovered_storage)
        recovered_storage.close()
        assert live == recovered, (
            f"{backend}: recovery changed the serving bytes"
        )
        results[backend] = {"acks": acks, "frames": live}

    assert results["memory"]["acks"] == results["sqlite"]["acks"], (
        "the two backends acknowledged the same signed stream differently"
    )
    assert results["memory"]["frames"] == results["sqlite"]["frames"], (
        "the two backends serve different bytes for the same state"
    )


def test_sqlite_resubmission_survives_checkpoint_compaction(
    tmp_path, signature_scheme
):
    """The durable applied-update registry outlives WAL compaction.

    With ``checkpoint_every=2`` the WAL is compacted mid-stream, so the
    memory backend forgets pre-checkpoint acknowledgements across recovery.
    The sqlite backend's registry lives in the relation store and must hand
    every resubmitted frame its original, byte-identical acknowledgement.
    """
    router = _build_router("chain", signature_scheme)
    root = str(tmp_path / "pub")
    storage = PublicationStorage.create(
        root, router, checkpoint_every=2, backend="sqlite"
    )
    handler = RequestHandler(router, response_cache=False, storage=storage)
    outcomes = []
    for index in range(UPDATES):
        frame = _insert_frame(signature_scheme, router, index)
        handled = handler.handle_frame(frame)
        assert not handled.is_error, decode(handled.payload)
        outcomes.append((frame, handled.payload))
    storage.close()

    recovered_router, recovered_storage = open_publication_storage(
        root, lambda: pytest.fail("must recover, not rebuild")
    )
    try:
        recovered_handler = RequestHandler(
            recovered_router, response_cache=False, storage=recovered_storage
        )
        for frame, payload in outcomes:
            handled = recovered_handler.handle_frame(frame)
            assert handled.payload == payload, (
                "a resubmitted pre-checkpoint batch lost its original outcome"
            )
    finally:
        recovered_storage.close()


# -- bounded-memory recovery ---------------------------------------------------


def _bootstrap_rows(tmp_path, signature_scheme, rows: int, backend: str) -> str:
    # Widen the salary domain with the tier: the default domain has fewer
    # than 10^5 distinct keys.
    relation = workload.generate_employees(
        rows, seed=47, photo_bytes=64, salary_domain=KeyDomain(0, 4 * rows + 1)
    )
    router = ShardRouter(
        {"hr": Publisher({"employees": SignedRelation(relation, signature_scheme)})}
    )
    root = str(tmp_path / backend)
    PublicationStorage.create(root, router, backend=backend).close()
    return root


def _recovery_peak(root: str) -> tuple:
    tracemalloc.start()
    storage = PublicationStorage.open(root)
    router = recover_router(storage)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # The recovered router must actually serve before the peak counts.
    target = router.route(router.current_id("employees"))
    result = target.publisher.answer(FULL_RANGE)
    storage.close()
    return peak, len(result.rows)


def test_stored_recovery_does_not_materialize_rows(tmp_path, signature_scheme):
    """sqlite recovery attaches to the stored chain instead of loading rows.

    The memory backend rebuilds the relation (every row, digest and
    signature in RAM); the stored chain loads keys and fingerprints only and
    faults rows in lazily — its recovery peak must be well under the
    memory-backend peak on identical data.
    """
    rows = 1_500
    memory_root = _bootstrap_rows(tmp_path, signature_scheme, rows, "memory")
    sqlite_root = _bootstrap_rows(tmp_path, signature_scheme, rows, "sqlite")
    memory_peak, memory_rows = _recovery_peak(memory_root)
    sqlite_peak, sqlite_rows = _recovery_peak(sqlite_root)
    assert memory_rows == rows and sqlite_rows == rows
    assert sqlite_peak < memory_peak * 0.6, (
        f"stored recovery peaked at {sqlite_peak} bytes vs {memory_peak} for "
        "the memory backend — the store is materialising rows"
    )


@pytest.mark.scale
@pytest.mark.skipif(
    not os.environ.get("REPRO_SCALE"),
    reason="set REPRO_SCALE=1 to run the 10^5-row recovery tier",
)
def test_hundred_thousand_row_recovery_is_bounded(tmp_path, signature_scheme):
    """ISSUE acceptance: 10^5-row sqlite recovery has O(batch) peak memory."""
    rows = int(os.environ.get("REPRO_SCALE_ROWS", "100000"))
    sqlite_root = _bootstrap_rows(tmp_path, signature_scheme, rows, "sqlite")

    tracemalloc.start()
    storage = PublicationStorage.open(sqlite_root)
    router = recover_router(storage)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    try:
        signed = router.route(router.current_id("employees")).publisher
        publication = signed.signed_relation("employees")
        assert isinstance(publication, StoredSignedRelation)
        # Recovery is allowed the identity index (key + 32-byte fingerprint
        # tuples), the chain-entry skeletons and the lazy-column placeholder
        # slots — measured ~290 bytes/row; rows, digests and signatures must
        # stay on disk (materialising them costs multiple KB per row and
        # previously peaked >510 bytes/row with eager digests alone).
        assert peak < rows * 200 + 16 * 1024 * 1024, (
            f"recovery of {rows} rows peaked at {peak} bytes"
        )
    finally:
        storage.close()
