"""Unit tests for schemas, key domains and records."""

import pytest

from repro.db.records import Record
from repro.db.schema import Attribute, AttributeType, KeyDomain, Schema
from repro.db.workload import employee_schema


class TestKeyDomain:
    def test_width(self):
        assert KeyDomain(0, 100).width == 100

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            KeyDomain(10, 10)
        with pytest.raises(ValueError):
            KeyDomain(10, 5)

    def test_contains_is_open_interval(self):
        domain = KeyDomain(0, 10)
        assert domain.contains(1)
        assert domain.contains(9)
        assert not domain.contains(0)
        assert not domain.contains(10)

    def test_require_rejects_bounds_and_non_integers(self):
        domain = KeyDomain(0, 10)
        with pytest.raises(ValueError):
            domain.require(0)
        with pytest.raises(ValueError):
            domain.require(10)
        with pytest.raises(ValueError):
            domain.require(True)
        with pytest.raises(ValueError):
            domain.require("5")
        assert domain.require(5) == 5

    def test_distances(self):
        domain = KeyDomain(0, 100)
        assert domain.distance_to_upper(60) == 39
        assert domain.distance_to_lower(60) == 59
        assert domain.distance_to_upper(99) == 0
        assert domain.distance_to_lower(1) == 0

    def test_clamp_range(self):
        domain = KeyDomain(0, 100)
        assert domain.clamp_range(None, None) == (1, 99)
        assert domain.clamp_range(-5, 200) == (1, 99)
        assert domain.clamp_range(10, 20) == (10, 20)


class TestAttributeTypes:
    def test_integer_validation(self):
        assert AttributeType.INTEGER.validate(5)
        assert not AttributeType.INTEGER.validate(True)
        assert not AttributeType.INTEGER.validate("5")
        assert AttributeType.INTEGER.validate(None)

    def test_boolean_validation(self):
        assert AttributeType.BOOLEAN.validate(True)
        assert not AttributeType.BOOLEAN.validate(1)

    def test_blob_validation(self):
        assert AttributeType.BLOB.validate(b"abc")
        assert AttributeType.BLOB.validate(bytearray(b"abc"))
        assert not AttributeType.BLOB.validate("abc")

    def test_float_accepts_int(self):
        assert AttributeType.FLOAT.validate(3)
        assert AttributeType.FLOAT.validate(3.5)

    def test_attribute_validate_with_domain(self):
        attribute = Attribute("salary", AttributeType.INTEGER, domain=KeyDomain(0, 100))
        attribute.validate(50)
        with pytest.raises(ValueError):
            attribute.validate(150)


class TestSchema:
    def test_key_must_be_integer_with_domain(self):
        with pytest.raises(ValueError):
            Schema.build("t", [Attribute("k", AttributeType.STRING)], key="k")
        with pytest.raises(ValueError):
            Schema.build("t", [Attribute("k", AttributeType.INTEGER)], key="k")

    def test_duplicate_attribute_names_rejected(self):
        attributes = [
            Attribute("k", AttributeType.INTEGER, domain=KeyDomain(0, 10)),
            Attribute("k", AttributeType.STRING),
        ]
        with pytest.raises(ValueError):
            Schema.build("t", attributes, key="k")

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            Schema.build(
                "t",
                [Attribute("k", AttributeType.INTEGER, domain=KeyDomain(0, 10))],
                key="missing",
            )

    def test_non_key_attributes_order(self):
        schema = employee_schema()
        assert [a.name for a in schema.non_key_attributes] == [
            "emp_id",
            "name",
            "dept",
            "photo",
        ]

    def test_validate_values_detects_missing_and_unknown(self):
        schema = employee_schema()
        with pytest.raises(ValueError):
            schema.validate_values({"salary": 10})
        values = {
            "salary": 10,
            "emp_id": "1",
            "name": "x",
            "dept": 1,
            "photo": b"",
            "extra": 1,
        }
        with pytest.raises(ValueError):
            schema.validate_values(values)

    def test_record_size_bytes_uses_hints(self):
        schema = employee_schema(photo_bytes=100)
        assert schema.record_size_bytes() == 4 + 8 + 24 + 4 + 100

    def test_with_key_requires_domain_on_new_key(self):
        schema = employee_schema()
        # dept has no KeyDomain, so re-keying on it must fail immediately.
        with pytest.raises(ValueError):
            schema.with_key("dept")

    def test_with_extra_attributes(self):
        schema = employee_schema()
        extended = schema.with_extra_attributes(
            [Attribute("flag", AttributeType.BOOLEAN)]
        )
        assert extended.has_attribute("flag")
        assert not schema.has_attribute("flag")


class TestRecord:
    @pytest.fixture
    def record(self):
        schema = employee_schema()
        return Record(
            schema,
            {"salary": 2000, "emp_id": "005", "name": "A", "dept": 1, "photo": b"p"},
        )

    def test_key_property(self, record):
        assert record.key == 2000

    def test_values_are_read_only(self, record):
        with pytest.raises(TypeError):
            record.values["salary"] = 1  # type: ignore[index]

    def test_getitem_and_get(self, record):
        assert record["name"] == "A"
        assert record.get("missing", 7) == 7

    def test_invalid_values_rejected(self):
        schema = employee_schema()
        with pytest.raises(ValueError):
            Record(schema, {"salary": "high", "emp_id": "1", "name": "x", "dept": 1, "photo": b""})

    def test_project(self, record):
        assert record.project(["name", "salary"]) == {"name": "A", "salary": 2000}
        with pytest.raises(KeyError):
            record.project(["nope"])

    def test_replace_returns_new_record(self, record):
        updated = record.replace(name="Z")
        assert updated["name"] == "Z"
        assert record["name"] == "A"

    def test_attribute_root_changes_with_any_attribute(self, record):
        baseline = record.attribute_root()
        assert record.replace(name="Z").attribute_root() != baseline
        assert record.replace(photo=b"other").attribute_root() != baseline

    def test_attribute_root_detects_swapped_columns(self, record):
        # The introduction's authenticity example: swapping two values between
        # columns must change the digest.
        swapped = record.replace(emp_id="A", name="005")
        assert swapped.attribute_root() != record.attribute_root()

    def test_attribute_root_independent_of_key(self, record):
        # The key is covered by the hash chains, not by MHT(r.A).
        assert record.replace(salary=3000).attribute_root() == record.attribute_root()

    def test_fingerprint_distinguishes_same_key_records(self, record):
        other = record.replace(name="B")
        assert record.fingerprint() != other.fingerprint()

    def test_attribute_leaves_align_with_schema(self, record):
        assert len(record.attribute_leaves()) == len(record.schema.non_key_attributes)

    def test_as_dict_round_trip(self, record):
        clone = Record(record.schema, record.as_dict())
        assert clone.fingerprint() == record.fingerprint()
