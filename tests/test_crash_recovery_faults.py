"""The SIGKILL crash/restart matrix over the durable demo server.

For every registered failpoint, a real server process is killed mid-flight
(``os._exit(137)`` at the hook — no atexit, no flushing, the honest crash),
restarted on the same storage directory, and then driven to the end of the
same pre-signed update stream.  The recovered server must be byte-identical
— relation listing, latest owner-signed rotation, raw query answer frames —
to a *shadow* server that served the identical stream uninterrupted, and no
update that was acknowledged before the kill may be missing after restart.

The update frames are pre-signed once against the bootstrapped state (the
owner key persisted in the shard's ``keys.json``), so the crashed run, the
resubmission and the shadow run all push the *same bytes* — which is also
what makes resubmission after a lost acknowledgement exercise the
applied-update registry rather than re-signing around it.

The whole matrix runs twice — once per storage backend (``memory`` rebuilds
rows from checkpoints, ``sqlite`` streams them from the relation store) — and
the sqlite lane adds its own failpoint inside the store's transaction commit.
"""

from __future__ import annotations

import os
import shutil
import signal
import socket
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.db.query import Conjunction, Query, RangeCondition
from repro.service import VerifyingClient
from repro.service.owner import build_update_request
from repro.service.protocol import (
    ErrorResponse,
    QueryRequest,
    RotationRequest,
    ServiceError,
    recv_frame,
    recv_message,
    send_message,
)
from repro.storage import PublicationStorage, recover_router
from repro.storage.checkpoint import load_keys
from repro.storage.faults import FAILPOINTS, KILL_EXIT_STATUS
from repro.wire.updates import RecordDelta, UpdateResponse

pytestmark = [
    pytest.mark.faults,
    pytest.mark.skipif(
        not (sys.platform.startswith("linux") or sys.platform == "darwin"),
        reason="the crash matrix drives POSIX signals and exit codes",
    ),
]

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
UPDATES = 4
FULL_RANGE = Query(
    "employees", Conjunction((RangeCondition("salary", None, None),))
)

#: failpoint -> (REPRO_FAULTS spec, --checkpoint-every for the crashed run).
#: The ``@hit`` offsets are chosen to land in the middle of the stream: the
#: WAL appends twice per update (the request frame, then the rotation), the
#: other hooks fire once per update or per response flush.
CRASH_MATRIX = {
    "wal-before-fsync": ("wal-before-fsync:kill@3", 0),
    "wal-mid-record": ("wal-mid-record:kill@2", 0),
    "update-after-apply": ("update-after-apply:kill@2", 0),
    "conn-mid-frame": ("conn-mid-frame:kill", 0),
    "checkpoint-before-swap": ("checkpoint-before-swap:kill", 1),
}

#: Failpoints that only fire when rows live in the sqlite relation store.
#: ``relstore-before-commit`` fires once per applied update (the whole
#: update commits in one outer store transaction), so ``@2`` kills the
#: server with update 1 fully durable and update 2 rolled back to the WAL —
#: recovery must re-apply exactly the rolled-back half.
SQLITE_ONLY = {
    "relstore-before-commit": ("relstore-before-commit:kill@2", 0),
}


def test_every_registered_failpoint_is_in_the_matrix():
    assert set(CRASH_MATRIX) | set(SQLITE_ONLY) == set(FAILPOINTS)


# -- driving real server processes ---------------------------------------------


def _spawn(
    storage_dir: str,
    fault: str = "",
    checkpoint_every: int = 0,
    backend: str = "memory",
):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env.pop("REPRO_FAULTS", None)
    if fault:
        env["REPRO_FAULTS"] = fault
    command = [
        sys.executable,
        "-m",
        "repro.service",
        "--key-bits",
        "512",
        "--storage-dir",
        storage_dir,
    ]
    if checkpoint_every:
        command += ["--checkpoint-every", str(checkpoint_every)]
    if backend != "memory":
        # Only a *fresh* root consults the flag; an existing root keeps the
        # backend it was bootstrapped with, so re-spawns are backend-stable.
        command += ["--storage-backend", backend]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=REPO_ROOT,
    )
    port_line = process.stdout.readline().strip()
    assert port_line.startswith("PORT "), f"unexpected server output: {port_line!r}"
    port = int(port_line.split()[1])
    assert process.stdout.readline().startswith("RELATIONS ")
    storage_line = process.stdout.readline().strip()
    assert storage_line.startswith("STORAGE ")
    return process, port, storage_line.split()[1]


def _terminate(process) -> str:
    process.send_signal(signal.SIGTERM)
    _, stderr = process.communicate(timeout=30)
    assert process.returncode == 0, (
        f"graceful shutdown exited {process.returncode}: {stderr}"
    )
    return stderr


def _push(port: int, requests):
    """Send pre-signed update frames until the stream ends or the peer dies."""
    acked = 0
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            for request in requests:
                send_message(sock, request)
                response = recv_message(sock)
                if response is None or isinstance(response, ErrorResponse):
                    break
                assert isinstance(response, UpdateResponse)
                acked += 1
    except (ServiceError, OSError):
        pass
    return acked


def _capture_state(port: int):
    """The recovered-vs-shadow comparison surface, as raw wire bytes."""
    with VerifyingClient("127.0.0.1", port) as client:
        listing = client.relations()
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        send_message(sock, RotationRequest("employees"))
        rotation_frame = recv_frame(sock)
        send_message(
            sock,
            QueryRequest(manifest_id=listing["employees"], query=FULL_RANGE),
        )
        answer_frame = recv_frame(sock)
    return {
        "listing": listing,
        "rotation": rotation_frame,
        "answer": answer_frame,
    }


def _crash_row_count(port: int) -> int:
    """How many of the stream's inserts a live server currently holds."""
    with VerifyingClient("127.0.0.1", port) as client:
        rows = client.query(FULL_RANGE).rows
    return sum(1 for row in rows if str(row["emp_id"]).startswith("crash-"))


# -- the shared fixtures: one bootstrap, one pre-signed stream, one shadow -----


@pytest.fixture(scope="module", params=["memory", "sqlite"])
def backend(request):
    """The whole matrix runs once per storage backend."""
    return request.param


@pytest.fixture(scope="module")
def seed_dir(backend, tmp_path_factory):
    """A storage root bootstrapped by a real server run, shut down cleanly."""
    root = tmp_path_factory.mktemp(f"crash-seed-{backend}") / "pub"
    process, _, origin = _spawn(str(root), backend=backend)
    assert origin == "bootstrapped"
    _terminate(process)
    return root


@pytest.fixture(scope="module")
def signed_requests(seed_dir, tmp_path_factory):
    """UPDATES pre-signed insert frames against the bootstrapped manifests."""
    probe = tmp_path_factory.mktemp("crash-probe") / "pub"
    shutil.copytree(seed_dir, probe)
    storage = PublicationStorage.open(str(probe))
    router = recover_router(storage)
    storage.close()
    scheme = load_keys(str(probe / "shards" / "hr" / "keys.json"))["employees"]
    manifest = router.manifest_by_name("employees")
    requests = []
    for index in range(UPDATES):
        delta = RecordDelta(
            kind="insert",
            values={
                "emp_id": f"crash-{index}",
                "name": f"Survivor {index}",
                "salary": 60_000 + index,
                "dept": 5,
                "photo": bytes([40 + index]) * 16,
            },
        )
        requests.append(build_update_request(scheme, manifest, (delta,)))
        manifest = replace(manifest, sequence=manifest.sequence + 1)
    return requests


@pytest.fixture(scope="module")
def shadow_state(seed_dir, signed_requests, tmp_path_factory):
    """The uninterrupted run every crashed-and-recovered run must equal."""
    root = tmp_path_factory.mktemp("crash-shadow") / "pub"
    shutil.copytree(seed_dir, root)
    process, port, origin = _spawn(str(root))
    try:
        assert origin == "recovered"
        assert _push(port, signed_requests) == UPDATES
        return _capture_state(port)
    finally:
        _terminate(process)


# -- the matrix ----------------------------------------------------------------


@pytest.mark.parametrize("failpoint", sorted({**CRASH_MATRIX, **SQLITE_ONLY}))
def test_sigkill_at_failpoint_recovers_byte_identically(
    failpoint, backend, seed_dir, signed_requests, shadow_state, tmp_path
):
    if failpoint in SQLITE_ONLY and backend != "sqlite":
        pytest.skip("failpoint lives inside the sqlite relation store")
    fault, checkpoint_every = {**CRASH_MATRIX, **SQLITE_ONLY}[failpoint]
    root = tmp_path / "pub"
    shutil.copytree(seed_dir, root)

    # Run 1: crash mid-stream at the armed failpoint.
    process, port, origin = _spawn(str(root), fault=fault, checkpoint_every=checkpoint_every)
    assert origin == "recovered"
    acked = _push(port, signed_requests)
    process.communicate(timeout=30)
    assert process.returncode == KILL_EXIT_STATUS, (
        f"{failpoint}: the failpoint did not kill the server "
        f"(exit {process.returncode}, {acked} update(s) acked)"
    )
    assert acked < UPDATES, f"{failpoint}: the kill landed after the whole stream"

    # Run 2: restart on the crashed directory.
    process, port, origin = _spawn(str(root))
    try:
        assert origin == "recovered"
        # No acknowledged update may be lost (fsync=always acks are durable).
        assert _crash_row_count(port) >= acked, (
            f"{failpoint}: an acknowledged update vanished across the crash"
        )
        # Resubmitting the identical stream completes it: already-applied
        # frames answer from the applied-update registry, the rest apply.
        assert _push(port, signed_requests) == UPDATES
        assert _capture_state(port) == shadow_state, (
            f"{failpoint}: recovered state diverges from the uninterrupted run"
        )
    finally:
        _terminate(process)


# -- graceful shutdown (the satellite the matrix leans on) ---------------------


def test_sigterm_shuts_down_gracefully_and_preserves_state(
    seed_dir, signed_requests, shadow_state, tmp_path
):
    """SIGTERM mid-service: exit 0, stats on stderr, durable state intact."""
    root = tmp_path / "pub"
    shutil.copytree(seed_dir, root)
    process, port, _ = _spawn(str(root))
    assert _push(port, signed_requests) == UPDATES
    stderr = _terminate(process)
    assert "CACHE_STATS " in stderr

    process, port, origin = _spawn(str(root))
    try:
        assert origin == "recovered"
        assert _capture_state(port) == shadow_state
    finally:
        _terminate(process)


def test_sigint_is_graceful_too(seed_dir, tmp_path):
    root = tmp_path / "pub"
    shutil.copytree(seed_dir, root)
    process, _, _ = _spawn(str(root))
    process.send_signal(signal.SIGINT)
    _, stderr = process.communicate(timeout=30)
    assert process.returncode == 0, stderr
    assert "CACHE_STATS " in stderr
