"""Batch (accumulated) RSA-FDH verification: agreement, tampering, fallback.

:func:`repro.crypto.aggregate.batch_verify_signatures` must agree with
per-signature verification on genuine batches and reject every *single*
tampered signature (byte-flip sweep) in both the screening (weights = 1) and
the random-small-exponent-weights modes;
:func:`~repro.crypto.aggregate.find_invalid_signature` must localise the
broken entry.  The screening mode's guarantee is the set-level one of
condensed-RSA (Bellare-Garay-Rabin: every *message* in an accepted batch was
signed by the owner, provided messages are pairwise distinct) — the explicit
compensating-tamper test documents exactly that boundary.
"""

from __future__ import annotations

import pytest

from repro.crypto.aggregate import (
    batch_verify_signatures,
    find_invalid_signature,
)
from repro.crypto.primes import modular_inverse


@pytest.fixture(scope="module")
def batch(signature_scheme):
    messages = [b"chain|%04d" % index for index in range(24)]
    signatures = signature_scheme.sign_batch(messages)
    return messages, signatures, signature_scheme.verifier


def test_agrees_with_serial_on_genuine_batches(batch, signature_scheme):
    messages, signatures, public_key = batch
    assert all(
        public_key.verify(m, s) for m, s in zip(messages, signatures)
    )
    assert batch_verify_signatures(messages, signatures, public_key)
    assert batch_verify_signatures(
        messages, signatures, public_key, weight_bits=16
    )
    assert signature_scheme.verify_batch(messages, signatures)


@pytest.mark.parametrize("weight_bits", [0, 16])
def test_single_tampered_signature_always_rejected(batch, weight_bits):
    """Byte-flip sweep: every single-signature corruption fails the batch."""
    messages, signatures, public_key = batch
    for index in range(len(signatures)):
        genuine = signatures[index]
        width = max(1, (genuine.bit_length() + 7) // 8)
        for bit in range(0, width * 8, max(1, width * 8 // 16)):
            tampered = list(signatures)
            tampered[index] = genuine ^ (1 << bit)
            assert not batch_verify_signatures(
                messages, tampered, public_key, weight_bits=weight_bits
            ), f"flipping bit {bit} of signature {index} was not caught"
        assert find_invalid_signature(messages, tampered, public_key) == index


def test_out_of_range_signature_rejected(batch):
    messages, signatures, public_key = batch
    for bogus in (0, -1, public_key.modulus, public_key.modulus + 7):
        tampered = list(signatures)
        tampered[3] = bogus
        assert not batch_verify_signatures(messages, tampered, public_key)


def test_duplicate_messages_fall_back_to_serial(batch):
    """Screening needs distinct messages; duplicates stay correct (serial)."""
    messages, signatures, public_key = batch
    doubled_messages = list(messages) + [messages[0]]
    doubled_signatures = list(signatures) + [signatures[0]]
    assert batch_verify_signatures(doubled_messages, doubled_signatures, public_key)
    tampered = list(doubled_signatures)
    tampered[-1] ^= 1
    assert not batch_verify_signatures(doubled_messages, tampered, public_key)


def test_screening_is_a_set_level_guarantee(batch):
    """Compensating tampering passes screening but forges no message.

    Multiplying one signature by t and another by t^-1 keeps the product —
    the screening test accepts, exactly like the condensed aggregate would
    (it *is* the product).  The guarantee that matters for chain
    verification is untouched: every message in the batch was genuinely
    signed by the owner; no fabricated data gains a signature this way.  The
    random-weights mode rejects even this perturbation (with probability
    1 - 2^-16 per run).
    """
    messages, signatures, public_key = batch
    modulus = public_key.modulus
    t = 0x1234567
    perturbed = list(signatures)
    perturbed[0] = (perturbed[0] * t) % modulus
    perturbed[1] = (perturbed[1] * modular_inverse(t, modulus)) % modulus
    assert not public_key.verify(messages[0], perturbed[0])
    assert batch_verify_signatures(messages, perturbed, public_key)
    assert not batch_verify_signatures(
        messages, perturbed, public_key, weight_bits=16
    )


def test_empty_and_mismatched_inputs_are_errors(batch):
    messages, signatures, public_key = batch
    with pytest.raises(ValueError):
        batch_verify_signatures([], [], public_key)
    with pytest.raises(ValueError):
        batch_verify_signatures(messages, signatures[:-1], public_key)
