"""Owner-signed freshness epochs close the stale-snapshot hole, end to end.

The headline test reproduces the attack the attestations exist to stop: an
in-path adversary captures a correctly-signed pre-rotation answer and
replays it — re-stamped to the *current* manifest id — after the owner has
deleted rows.  Chain signatures never bind the manifest sequence, so the
replay **verifies** against a client that checks signatures only; a client
configured with a :class:`FreshnessPolicy` refuses it with a typed
:class:`StaleAnswerError`.

Around the headline: the owner push/fetch/re-stamp lifecycle, every refusal
reason (missing, mismatched, forged, expired, stale, regressed), the
deterministic injected clock (no verification path reads the wall clock),
the superseded-manifest eviction cap, recovery resuming the freshness chain
byte-identically (in-process and after a real SIGKILL), and ``walctl
verify`` covering persisted attestation signatures.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
from dataclasses import replace

import pytest

from repro.core.publisher import Publisher
from repro.db import workload
from repro.core.relational import SignedRelation
from repro.db.query import Conjunction, JoinQuery, Query, RangeCondition
from repro.service import (
    AttestationAck,
    AttestationPush,
    FreshnessPolicy,
    OwnerClient,
    PublicationServer,
    RemoteError,
    ServerConfig,
    ShardRouter,
    StaleAnswerError,
    VerifyingClient,
    build_attestation,
    build_update_request,
)
from repro.service.protocol import (
    ErrorResponse,
    QueryRequest,
    QueryResponse,
    recv_frame,
    send_message,
)
from repro.service.router import MAX_SUPERSEDED_PER_RELATION
from repro.service.handler import RequestHandler
from repro.storage import (
    PublicationStorage,
    open_publication_storage,
    recover_router,
)
from repro.storage import walctl
from repro.storage.checkpoint import load_keys
from repro.storage.wal import WriteAheadLog
from repro.wire import decode, encode, manifest_id
from repro.wire.updates import FreshnessAttestation, RecordDelta

ALL_SALARIES = Query(
    "employees", Conjunction((RangeCondition("salary", 0, 10_000_000),))
)

#: A base instant far from the real wall clock: if any verification path
#: consulted ``time.time()`` instead of the injected clock, every
#: freshness-accepting assertion below would fail on expiry.
T0 = 4_102_444_800.0  # 2100-01-01T00:00:00Z


class _Clock:
    """A deterministic, manually-advanced clock shared by owner and client."""

    def __init__(self, now: float = T0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return _Clock()


@pytest.fixture()
def world(owner):
    """A fresh signed relation behind a live server, torn down per test."""
    relation = workload.generate_employees(12, seed=19, photo_bytes=8)
    database = owner.publish_database({"employees": relation})
    router = ShardRouter({"hr": Publisher(database.relations)})
    with PublicationServer(router, config=ServerConfig(max_workers=6)) as server:
        yield {
            "owner": owner,
            "manifests": database.manifests,
            "router": router,
            "address": server.address,
        }


def _owner_client(world, clock=None):
    host, port = world["address"]
    kwargs = {} if clock is None else {"clock": clock}
    return OwnerClient(host, port, world["owner"].signature_scheme, **kwargs)


def _verifying_client(world, freshness=None):
    host, port = world["address"]
    return VerifyingClient(
        host,
        port,
        trusted_manifests=dict(world["manifests"]),
        freshness=freshness,
    )


def _row(salary, tag):
    return {
        "salary": salary,
        "emp_id": f"f-{tag}",
        "name": str(tag),
        "dept": 2,
        "photo": bytes([salary % 251]) * 8,
    }


def _exchange(address, request):
    """One raw request/response exchange; returns the decoded response."""
    with socket.create_connection(address, timeout=10) as sock:
        send_message(sock, request)
        return decode(recv_frame(sock))


# -- the in-path replay adversary ---------------------------------------------


class _ReplayProxy(threading.Thread):
    """A man-in-the-middle that forwards every frame to the real server but
    substitutes a captured stale answer for every query response."""

    def __init__(self, upstream, stale_frame: bytes) -> None:
        super().__init__(daemon=True)
        self.upstream = upstream
        self.stale_frame = stale_frame
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.listener.settimeout(0.2)
        self.address = self.listener.getsockname()
        self._stopping = threading.Event()

    def run(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                with conn, socket.create_connection(
                    self.upstream, timeout=10
                ) as up:
                    while True:
                        frame = _read_frame(conn)
                        if frame is None:
                            break
                        up.sendall(len(frame).to_bytes(4, "big") + frame)
                        reply = _read_frame(up)
                        if reply is None:
                            break
                        if isinstance(decode(reply), QueryResponse):
                            reply = self.stale_frame
                        conn.sendall(len(reply).to_bytes(4, "big") + reply)
            except OSError:
                continue

    def stop(self) -> None:
        self._stopping.set()
        self.join(timeout=5)
        self.listener.close()


def _read_frame(sock):
    header = _read_exact(sock, 4)
    if header is None:
        return None
    return _read_exact(sock, int.from_bytes(header, "big"))


def _read_exact(sock, count):
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _capture_stale_answer(world):
    """Capture a genuine pre-rotation answer, rotate the relation away from
    it, and return the captured response doctored to the *current* id."""
    captured = _exchange(
        world["address"],
        QueryRequest(
            manifest_id=world["router"].current_id("employees"),
            query=ALL_SALARIES,
        ),
    )
    assert isinstance(captured, QueryResponse)
    victim = max(captured.rows, key=lambda row: row["salary"])
    with _owner_client(world) as owner_client:
        owner_client.delete("employees", dict(victim))
    current_id = world["router"].current_id("employees")
    doctored = replace(captured, manifest_id=current_id)
    return victim, current_id, doctored


def test_stale_replay_exploit_verifies_without_freshness(world):
    """The reproduced attack: without a freshness policy the replayed
    pre-rotation answer VERIFIES — chain signatures never bind the manifest
    sequence, so signature checking alone cannot tell the snapshots apart."""
    victim, _, doctored = _capture_stale_answer(world)
    proxy = _ReplayProxy(world["address"], encode(doctored))
    proxy.start()
    try:
        host, port = proxy.address
        with VerifyingClient(
            host, port, trusted_manifests=dict(world["manifests"])
        ) as client:
            result = client.query(ALL_SALARIES)
        assert result.report is not None  # verification passed — the hole
        assert any(
            row["emp_id"] == victim["emp_id"] for row in result.rows
        ), "the replay should have resurrected the deleted row"
    finally:
        proxy.stop()


def test_stale_replay_raises_typed_stale_answer_error(world, clock):
    """The fix: the same replayed answer is refused by a freshness-enforcing
    client, because the stale frame cannot carry a current attestation."""
    _, _, doctored = _capture_stale_answer(world)
    with _owner_client(world, clock) as owner_client:
        owner_client.attest("employees", lifetime=60.0)
    proxy = _ReplayProxy(world["address"], encode(doctored))
    proxy.start()
    try:
        host, port = proxy.address
        policy = FreshnessPolicy(max_staleness=30.0, clock=clock)
        with VerifyingClient(
            host,
            port,
            trusted_manifests=dict(world["manifests"]),
            freshness=policy,
        ) as client:
            with pytest.raises(StaleAnswerError) as excinfo:
                client.query(ALL_SALARIES)
        assert excinfo.value.reason == "no-attestation"
    finally:
        proxy.stop()


def test_replayed_old_attestation_is_a_mismatch(world, clock):
    """A smarter adversary replays the captured *attestation* too — but it
    binds the pre-rotation manifest id, so the client sees the splice."""
    with _owner_client(world, clock) as owner_client:
        old_attestation = owner_client.attest("employees", lifetime=60.0)
    _, _, doctored = _capture_stale_answer(world)
    with _owner_client(world, clock) as owner_client:
        owner_client.attest("employees", lifetime=60.0)
    doctored = replace(doctored, attestation=old_attestation)
    proxy = _ReplayProxy(world["address"], encode(doctored))
    proxy.start()
    try:
        host, port = proxy.address
        policy = FreshnessPolicy(max_staleness=30.0, clock=clock)
        with VerifyingClient(
            host,
            port,
            trusted_manifests=dict(world["manifests"]),
            freshness=policy,
        ) as client:
            with pytest.raises(StaleAnswerError) as excinfo:
                client.query(ALL_SALARIES)
        assert excinfo.value.reason == "attestation-mismatch"
    finally:
        proxy.stop()


# -- the owner lifecycle ------------------------------------------------------


def test_attested_answers_verify_and_carry_the_attestation(world, clock):
    with _owner_client(world, clock) as owner_client:
        pushed = owner_client.attest("employees", lifetime=60.0)
    assert pushed.epoch == 1
    policy = FreshnessPolicy(max_staleness=30.0, clock=clock)
    with _verifying_client(world, freshness=policy) as client:
        result = client.query(ALL_SALARIES)
    assert result.report is not None
    assert result.attestation is not None
    assert encode(result.attestation) == encode(pushed)


def test_unattested_relation_refused_under_policy(world, clock):
    policy = FreshnessPolicy(max_staleness=30.0, clock=clock)
    with _verifying_client(world, freshness=policy) as client:
        with pytest.raises(StaleAnswerError) as excinfo:
            client.query(ALL_SALARIES)
    assert excinfo.value.reason == "no-attestation"
    # The same relation without a policy keeps the paper's original
    # advisory-freshness behaviour: the answer verifies.
    with _verifying_client(world) as client:
        assert client.query(ALL_SALARIES).rows


def test_fetch_attestation_roundtrip(world, clock):
    with _owner_client(world, clock) as owner_client:
        assert owner_client.fetch_attestation("employees") is None
        pushed = owner_client.attest("employees", lifetime=60.0)
        fetched = owner_client.fetch_attestation("employees")
    assert encode(fetched) == encode(pushed)


def test_rotation_restamps_the_attestation(world, clock):
    """An update between owner refreshes re-signs the in-force attestation
    onto the new manifest: same epoch and validity window, new binding."""
    with _owner_client(world, clock) as owner_client:
        pushed = owner_client.attest("employees", lifetime=60.0)
        owner_client.insert("employees", _row(70_001, "restamp"))
        stamped = owner_client.fetch_attestation("employees")
    manifest = world["router"].manifest_by_name("employees")
    assert stamped.sequence == manifest.sequence > pushed.sequence
    assert bytes(stamped.manifest_id) == manifest_id(manifest)
    assert (stamped.epoch, stamped.issued_at_ms, stamped.not_after_ms) == (
        pushed.epoch,
        pushed.issued_at_ms,
        pushed.not_after_ms,
    )
    # The re-stamp keeps freshness-enforcing clients working across the
    # rotation without waiting for the owner's next refresh.
    policy = FreshnessPolicy(max_staleness=30.0, clock=clock)
    with _verifying_client(world, freshness=policy) as client:
        result = client.query(ALL_SALARIES)
    assert encode(result.attestation) == encode(stamped)


def test_epoch_advances_across_refreshes(world, clock):
    with _owner_client(world, clock) as owner_client:
        first = owner_client.attest("employees", lifetime=60.0)
        clock.advance(10.0)
        second = owner_client.attest("employees", lifetime=60.0)
    assert (first.epoch, second.epoch) == (1, 2)
    assert second.issued_at_ms - first.issued_at_ms == 10_000


def test_joins_enforce_freshness_on_both_sides(owner, clock):
    customers, orders = workload.generate_customers_and_orders(6, 10, seed=3)
    database = owner.publish_database(
        {"customers": customers, "orders": orders}
    )
    router = ShardRouter({"sales": Publisher(database.relations)})
    with PublicationServer(router, config=ServerConfig(max_workers=4)) as server:
        host, port = server.address
        policy = FreshnessPolicy(max_staleness=30.0, clock=clock)
        join = JoinQuery("orders", "customers", "customer_id", "customer_id")
        with OwnerClient(
            host, port, owner.signature_scheme, clock=clock
        ) as owner_client, VerifyingClient(
            host,
            port,
            trusted_manifests=dict(database.manifests),
            freshness=policy,
        ) as client:
            owner_client.attest("orders", lifetime=60.0)
            with pytest.raises(StaleAnswerError) as excinfo:
                client.query_join(join)
            assert excinfo.value.reason == "no-attestation"
            owner_client.attest("customers", lifetime=60.0)
            result = client.query_join(join)
            assert result.left_attestation.epoch == 1
            assert result.right_attestation.epoch == 1


# -- the injected clock: expiry, staleness, rollback, forgery -----------------


def test_expired_attestation_refused_by_injected_clock(world, clock):
    with _owner_client(world, clock) as owner_client:
        owner_client.attest("employees", lifetime=30.0)
    policy = FreshnessPolicy(max_staleness=120.0, clock=clock)
    with _verifying_client(world, freshness=policy) as client:
        assert client.query(ALL_SALARIES).rows
        clock.advance(31.0)
        with pytest.raises(StaleAnswerError) as excinfo:
            client.query(ALL_SALARIES)
    assert excinfo.value.reason == "attestation-expired"


def test_staleness_bound_is_the_clients_policy(world, clock):
    """A client may demand a bound tighter than the owner's lifetime."""
    with _owner_client(world, clock) as owner_client:
        owner_client.attest("employees", lifetime=300.0)
    policy = FreshnessPolicy(max_staleness=5.0, clock=clock)
    with _verifying_client(world, freshness=policy) as client:
        assert client.query(ALL_SALARIES).rows
        clock.advance(6.0)  # inside the owner window, outside the bound
        with pytest.raises(StaleAnswerError) as excinfo:
            client.query(ALL_SALARIES)
    assert excinfo.value.reason == "attestation-stale"


def test_client_never_accepts_a_regressed_epoch(world, clock):
    scheme = world["owner"].signature_scheme
    manifest = world["router"].manifest_by_name("employees")
    identifier = world["router"].current_id("employees")
    now_ms = int(clock() * 1000)
    newer = build_attestation(scheme, manifest, 2, now_ms, 60_000)
    older = build_attestation(scheme, manifest, 1, now_ms, 60_000)
    policy = FreshnessPolicy(max_staleness=30.0, clock=clock)
    with _verifying_client(world, freshness=policy) as client:
        client._check_freshness("employees", manifest, identifier, newer)
        with pytest.raises(StaleAnswerError) as excinfo:
            client._check_freshness("employees", manifest, identifier, older)
    assert excinfo.value.reason == "attestation-regressed"


def test_forged_attestation_refused_client_side(world, clock, forged_scheme):
    manifest = world["router"].manifest_by_name("employees")
    identifier = world["router"].current_id("employees")
    forged = build_attestation(
        forged_scheme, manifest, 1, int(clock() * 1000), 60_000
    )
    policy = FreshnessPolicy(max_staleness=30.0, clock=clock)
    with _verifying_client(world, freshness=policy) as client:
        with pytest.raises(StaleAnswerError) as excinfo:
            client._check_freshness("employees", manifest, identifier, forged)
    assert excinfo.value.reason == "attestation-forged"


# -- server-side push validation ----------------------------------------------


def test_server_refuses_forged_pushes(world, clock, forged_scheme):
    manifest = world["router"].manifest_by_name("employees")
    forged = build_attestation(
        forged_scheme, manifest, 1, int(clock() * 1000), 60_000
    )
    response = _exchange(world["address"], AttestationPush(forged))
    assert isinstance(response, ErrorResponse)
    assert response.reason == "bad-attestation-signature"
    # Nothing got stored: a fetch still reports no attestation.
    with _owner_client(world, clock) as owner_client:
        assert owner_client.fetch_attestation("employees") is None


def test_server_refuses_stale_and_regressed_pushes(world, clock):
    scheme = world["owner"].signature_scheme
    stale_manifest = world["router"].manifest_by_name("employees")
    with _owner_client(world, clock) as owner_client:
        owner_client.insert("employees", _row(70_002, "rotate"))
    stale = build_attestation(
        scheme, stale_manifest, 1, int(clock() * 1000), 60_000
    )
    response = _exchange(world["address"], AttestationPush(stale))
    assert isinstance(response, ErrorResponse)
    assert response.reason == "stale-attestation"

    current = world["router"].manifest_by_name("employees")
    now_ms = int(clock() * 1000)
    second = build_attestation(scheme, current, 2, now_ms, 60_000)
    first = build_attestation(scheme, current, 1, now_ms, 60_000)
    ack = _exchange(world["address"], AttestationPush(second))
    assert isinstance(ack, AttestationAck)
    response = _exchange(world["address"], AttestationPush(first))
    assert isinstance(response, ErrorResponse)
    assert response.reason == "attestation-regressed"


def test_identical_repush_is_idempotent(world, clock):
    scheme = world["owner"].signature_scheme
    manifest = world["router"].manifest_by_name("employees")
    attestation = build_attestation(
        scheme, manifest, 1, int(clock() * 1000), 60_000
    )
    for _ in range(2):  # an owner retrying an unacknowledged push
        ack = _exchange(world["address"], AttestationPush(attestation))
        assert isinstance(ack, AttestationAck)
        assert (ack.sequence, ack.epoch) == (attestation.sequence, 1)


def test_owner_attest_recovers_from_rotation_race(world, clock):
    """``attest`` re-signs transparently when the relation rotated under it."""
    with _owner_client(world, clock) as owner_client:
        owner_client.attest("employees", lifetime=60.0)
        # Rotate behind this owner client's tracked manifest.
        with _owner_client(world, clock) as other:
            other.insert("employees", _row(70_003, "race"))
        refreshed = owner_client.attest("employees", lifetime=60.0)
    assert refreshed.sequence == (
        world["router"].manifest_by_name("employees").sequence
    )
    assert refreshed.epoch == 2


def test_pooled_workers_serve_attested_answers(owner, clock):
    relation = workload.generate_employees(10, seed=23, photo_bytes=8)
    database = owner.publish_database({"employees": relation})
    router = ShardRouter({"hr": Publisher(database.relations)})
    config = ServerConfig(max_workers=4, worker_processes=2)
    with PublicationServer(router, config=config) as server:
        host, port = server.address
        policy = FreshnessPolicy(max_staleness=30.0, clock=clock)
        with OwnerClient(
            host, port, owner.signature_scheme, clock=clock
        ) as owner_client, VerifyingClient(
            host,
            port,
            trusted_manifests=dict(database.manifests),
            freshness=policy,
        ) as client:
            owner_client.attest("employees", lifetime=60.0)
            assert client.query(ALL_SALARIES).rows
            owner_client.insert("employees", _row(70_004, "pooled"))
            result = client.query(ALL_SALARIES)
            assert result.attestation.epoch == 1


# -- superseded-manifest eviction (regression for the typed error) ------------


def test_rotating_past_the_cap_evicts_with_a_typed_error(world):
    genesis_id = world["router"].current_id("employees")
    with _owner_client(world) as owner_client:
        batches = [
            (RecordDelta(kind="insert", values=_row(50_000 + step, f"cap-{step}")),)
            for step in range(MAX_SUPERSEDED_PER_RELATION + 2)
        ]
        owner_client.push_many("employees", batches)
    response = _exchange(
        world["address"],
        QueryRequest(manifest_id=genesis_id, query=ALL_SALARIES),
    )
    assert isinstance(response, ErrorResponse)
    assert response.reason == "superseded-evicted"
    # The current id still serves.
    current = _exchange(
        world["address"],
        QueryRequest(
            manifest_id=world["router"].current_id("employees"),
            query=ALL_SALARIES,
        ),
    )
    assert isinstance(current, QueryResponse)


# -- durability: recovery resumes the freshness chain -------------------------


def _storage_world(tmp_path, signature_scheme, backend, checkpoint_every=0):
    relation = workload.generate_employees(8, seed=29, photo_bytes=8)
    publisher = Publisher(
        {"employees": SignedRelation(relation, signature_scheme)}
    )
    router = ShardRouter({"hr": publisher})
    root = str(tmp_path / f"root-{backend}-{checkpoint_every}")
    storage = PublicationStorage.create(
        root, router, checkpoint_every=checkpoint_every, backend=backend
    )
    handler = RequestHandler(router, response_cache=False, storage=storage)
    return root, router, storage, handler


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
@pytest.mark.parametrize("checkpoint_every", [0, 1])
def test_recovery_resumes_the_freshness_chain_byte_identically(
    tmp_path, signature_scheme, backend, checkpoint_every, capsys
):
    root, router, storage, handler = _storage_world(
        tmp_path, signature_scheme, backend, checkpoint_every
    )
    manifest = router.manifest_by_name("employees")
    attestation = build_attestation(
        signature_scheme, manifest, 1, int(T0 * 1000), 60_000
    )
    handled = handler.handle_frame(encode(AttestationPush(attestation)))
    assert not handled.is_error, decode(handled.payload)
    # An update after the push: the durable state must carry the re-stamp.
    frame = encode(
        build_update_request(
            signature_scheme,
            router.manifest_by_name("employees"),
            (RecordDelta(kind="insert", values=_row(61_000, "durable")),),
        )
    )
    handled = handler.handle_frame(frame)
    assert not handled.is_error, decode(handled.payload)
    live = encode(router.attestation_for("employees"))
    assert decode(live).sequence == router.manifest_by_name("employees").sequence
    storage.close()

    recovered_router, recovered_storage = open_publication_storage(
        root, lambda: pytest.fail("must recover, not rebuild")
    )
    recovered = encode(recovered_router.attestation_for("employees"))
    recovered_storage.close()
    assert recovered == live, (
        f"{backend}/checkpoint_every={checkpoint_every}: recovery changed "
        "the freshness chain"
    )

    # ``walctl verify`` re-checks every persisted attestation signature.
    assert walctl.main(["verify", root]) == 0
    assert "OK" in capsys.readouterr().out


def test_walctl_flags_a_forged_persisted_attestation(
    tmp_path, signature_scheme, forged_scheme, capsys
):
    root, router, storage, handler = _storage_world(
        tmp_path, signature_scheme, "memory"
    )
    manifest = router.manifest_by_name("employees")
    genuine = build_attestation(
        signature_scheme, manifest, 1, int(T0 * 1000), 60_000
    )
    handled = handler.handle_frame(encode(AttestationPush(genuine)))
    assert not handled.is_error
    storage.close()
    # Append a validly-framed but forged attestation record behind the
    # server's back — offline verification must catch the bad signature.
    forged = build_attestation(
        forged_scheme, manifest, 2, int(T0 * 1000), 60_000
    )
    wal = WriteAheadLog(PublicationStorage(root).wal_path("hr", "employees"))
    wal.append(encode(forged))
    wal.close()
    assert walctl.main(["verify", root]) == 1
    out = capsys.readouterr().out
    assert "attestation signature does not verify" in out


# -- the honest cross-check: a real SIGKILL ----------------------------------

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _spawn_demo(storage_dir: str, backend: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env.pop("REPRO_FAULTS", None)
    command = [
        sys.executable,
        "-m",
        "repro.service",
        "--key-bits",
        "512",
        "--storage-dir",
        storage_dir,
    ]
    if backend != "memory":
        command += ["--storage-backend", backend]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=REPO_ROOT,
    )
    port_line = process.stdout.readline().strip()
    assert port_line.startswith("PORT "), f"unexpected output: {port_line!r}"
    port = int(port_line.split()[1])
    assert process.stdout.readline().startswith("RELATIONS ")
    storage_line = process.stdout.readline().strip()
    assert storage_line.startswith("STORAGE ")
    return process, port, storage_line.split()[1]


@pytest.mark.faults
@pytest.mark.skipif(
    not (sys.platform.startswith("linux") or sys.platform == "darwin"),
    reason="drives POSIX signals",
)
@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_sigkill_preserves_the_freshness_chain(tmp_path, backend):
    """Attest, update, SIGKILL the real server — the restarted process must
    serve the identical attestation bytes and keep satisfying a
    freshness-enforcing client."""
    root = str(tmp_path / "pub")
    process, port, origin = _spawn_demo(root, backend)
    assert origin == "bootstrapped"
    try:
        scheme = load_keys(os.path.join(root, "shards", "hr", "keys.json"))[
            "employees"
        ]
        with OwnerClient("127.0.0.1", port, scheme) as owner_client:
            owner_client.attest("employees", lifetime=3600.0)
            owner_client.insert(
                "employees",
                {
                    "emp_id": "kill-0",
                    "name": "Survivor",
                    "salary": 61_500,
                    "dept": 5,
                    "photo": bytes([7]) * 16,
                },
            )
            before = encode(owner_client.fetch_attestation("employees"))
    finally:
        process.kill()
        process.wait(timeout=30)
    assert process.returncode == -signal.SIGKILL

    revived, port, origin = _spawn_demo(root, backend)
    try:
        assert origin == "recovered"
        with OwnerClient("127.0.0.1", port, scheme) as owner_client:
            after = encode(owner_client.fetch_attestation("employees"))
        assert after == before, (
            f"{backend}: SIGKILL recovery changed the freshness chain"
        )
        policy = FreshnessPolicy(max_staleness=3600.0)
        with VerifyingClient("127.0.0.1", port, freshness=policy) as client:
            result = client.query(ALL_SALARIES)
        assert encode(result.attestation) == before
    finally:
        revived.send_signal(signal.SIGTERM)
        revived.wait(timeout=30)
