"""Verifiable replica groups, in-process: bootstrap, catch-up, observability.

A replica needs no trust establishment — it replays the primary's
owner-signed WAL frames through the same signature-verified pipeline crash
recovery uses, so these suites check the replication *mechanics*: snapshot
bootstrap, continuous catch-up of updates and freshness attestations,
byte-identical served answers, the read-only write fence, the
compaction-gap resync signal, and the ``walctl inspect --replication``
offline view of the applied mark.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import socket
import stat
import time
from contextlib import redirect_stdout

import pytest

from repro.core.publisher import Publisher
from repro.db import workload
from repro.db.query import Conjunction, Query, RangeCondition
from repro.service import (
    FreshnessPolicy,
    OwnerClient,
    PublicationServer,
    RemoteError,
    ReplicationStatus,
    ReplicationStatusRequest,
    ServerConfig,
    ShardRouter,
    VerifyingClient,
)
from repro.service.protocol import QueryRequest, recv_frame, send_message
from repro.service.replication import (
    ReplicationError,
    ReplicationFollower,
    bootstrap_replica_root,
)
from repro.storage import open_publication_storage, walctl

FULL_RANGE = Query(
    "employees", Conjunction((RangeCondition("salary", 0, 10_000_000),))
)


def _refuse_bootstrap() -> ShardRouter:
    raise AssertionError(
        "a replica root must exist after bootstrap; the factory must not run"
    )


def _wait(predicate, timeout: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _raw_answer(address, identifier: bytes) -> bytes:
    """The raw full-range answer frame — the byte-identity comparison surface."""
    with socket.create_connection(address, timeout=10) as sock:
        send_message(sock, QueryRequest(manifest_id=identifier, query=FULL_RANGE))
        frame = recv_frame(sock)
    assert frame is not None
    return frame


def _status(address, name: str = "employees") -> ReplicationStatus:
    with socket.create_connection(address, timeout=10) as sock:
        send_message(sock, ReplicationStatusRequest(relation_name=name))
        reply = recv_frame(sock)
    from repro.wire import decode

    status = decode(reply)
    assert isinstance(status, ReplicationStatus)
    return status


@pytest.fixture()
def primary(owner, tmp_path):
    """A durable primary server over a fresh employees relation."""
    relation = workload.generate_employees(12, seed=23, photo_bytes=8)

    def build() -> ShardRouter:
        database = owner.publish_database({"employees": relation})
        return ShardRouter({"hr": Publisher(database.relations)})

    router, storage = open_publication_storage(
        str(tmp_path / "primary"), build, fsync="off"
    )
    server = PublicationServer(
        router,
        storage=storage,
        config=ServerConfig(max_workers=16, serve_replication=True),
    )
    host, port = server.start()
    yield {
        "router": router,
        "storage": storage,
        "server": server,
        "address": (host, port),
        "root": str(tmp_path / "primary"),
        "scheme": owner.signature_scheme,
    }
    server.stop()
    storage.close()


def _spawn_replica(primary_world, root: str, poll_interval: float = 0.02):
    host, port = primary_world["address"]
    bootstrap_replica_root(host, port, root, keys_from=primary_world["root"])
    router, storage = open_publication_storage(root, _refuse_bootstrap, fsync="off")
    server = PublicationServer(
        router, storage=storage, config=ServerConfig(max_workers=16, read_only=True)
    )
    server.start()
    follower = ReplicationFollower(
        server, host, port, poll_interval=poll_interval
    ).start()
    return {
        "router": router,
        "storage": storage,
        "server": server,
        "address": server.address,
        "root": root,
        "follower": follower,
    }


def _stop_replica(replica) -> None:
    replica["follower"].stop()
    replica["server"].stop()
    replica["storage"].close()


def _sequences_match(primary_world, replica) -> bool:
    return (
        replica["router"].manifest_by_name("employees").sequence
        == primary_world["router"].manifest_by_name("employees").sequence
    )


def _row(salary: int, tag: str):
    return {
        "salary": salary,
        "emp_id": f"rep-{tag}",
        "name": str(tag),
        "dept": 3,
        "photo": bytes([salary % 251]) * 8,
    }


def test_bootstrap_recovers_and_serves_byte_identical(primary, tmp_path):
    replica = _spawn_replica(primary, str(tmp_path / "replica"))
    try:
        # Same manifest id on both sides: recovery re-derived the primary's
        # signed state from the shipped root, signatures re-checked.
        identifier = primary["router"].current_id("employees")
        assert replica["router"].current_id("employees") == identifier
        assert _raw_answer(replica["address"], identifier) == _raw_answer(
            primary["address"], identifier
        )
    finally:
        _stop_replica(replica)


def test_bootstrap_is_idempotent_on_an_existing_root(primary, tmp_path):
    root = str(tmp_path / "replica")
    host, port = primary["address"]
    assert bootstrap_replica_root(host, port, root, keys_from=primary["root"]) is True
    # An existing root returns False without touching the network, so the
    # out-of-band keys are not needed again.
    assert bootstrap_replica_root(host, port, root) is False


def test_snapshot_never_ships_signing_keys(primary, tmp_path):
    """The snapshot answer must not contain ``keys.json`` — the private
    owner signing keys would let any network peer forge owner updates — and
    a bootstrapped replica gets its keys from the trusted ``keys_from``
    path instead, installed with mode 0600."""
    from repro.service.replication import answer_replica_snapshot

    snapshot = answer_replica_snapshot(primary["router"], primary["storage"])
    assert snapshot.files  # the snapshot still ships the data files
    assert all(
        os.path.basename(relative) != "keys.json"
        for relative, _ in snapshot.files
    )
    root = str(tmp_path / "replica")
    host, port = primary["address"]
    assert bootstrap_replica_root(host, port, root, keys_from=primary["root"])
    key_path = os.path.join(root, "shards", "hr", "keys.json")
    source_path = os.path.join(primary["root"], "shards", "hr", "keys.json")
    with open(source_path, "rb") as handle:
        expected = handle.read()
    with open(key_path, "rb") as handle:
        assert handle.read() == expected
    assert stat.S_IMODE(os.stat(key_path).st_mode) == 0o600


def test_bootstrap_requires_out_of_band_keys(primary, tmp_path):
    host, port = primary["address"]
    with pytest.raises(ReplicationError) as excinfo:
        bootstrap_replica_root(host, port, str(tmp_path / "replica"))
    assert excinfo.value.reason == "keys-required"


def test_bootstrap_refuses_a_snapshot_that_delivers_keys(
    primary, tmp_path, monkeypatch
):
    """A primary (or an impostor answering as one) that ships a key file in
    its snapshot is refused — replica keys arrive out-of-band only."""
    from repro.service import replication
    from repro.service.protocol import ReplicaSnapshot

    monkeypatch.setattr(
        replication.ServiceConnection,
        "_request",
        lambda self, message, expect: ReplicaSnapshot(
            files=(("shards/hr/keys.json", b"{}"),)
        ),
    )
    host, port = primary["address"]
    with pytest.raises(ReplicationError) as excinfo:
        bootstrap_replica_root(
            host, port, str(tmp_path / "replica"), keys_from=primary["root"]
        )
    assert excinfo.value.reason == "snapshot-delivers-keys"


def test_replication_feed_is_an_explicit_opt_in(primary, tmp_path):
    """A server not started with ``serve_replication=True`` refuses frame
    and snapshot requests (replicas qualify: they serve reads, not the
    feed), while the observability-only status request still answers."""
    from repro.service.protocol import (
        ReplicaFramesRequest,
        ReplicaSnapshotRequest,
    )
    from repro.wire import decode

    replica = _spawn_replica(primary, str(tmp_path / "replica"))
    try:
        for request in (
            ReplicaFramesRequest(relation_name="employees", after_sequence=0),
            ReplicaSnapshotRequest(),
        ):
            with socket.create_connection(replica["address"], timeout=10) as sock:
                send_message(sock, request)
                reply = decode(recv_frame(sock))
            assert reply.code == "ReplicationError"
            assert reply.reason == "replication-disabled"
        assert _status(replica["address"]).relation_name == "employees"
    finally:
        _stop_replica(replica)


def test_live_updates_replicate_and_answers_stay_byte_identical(
    primary, tmp_path
):
    replica = _spawn_replica(primary, str(tmp_path / "replica"))
    host, port = primary["address"]
    try:
        with OwnerClient(host, port, primary["scheme"]) as owner_client:
            for index in range(5):
                owner_client.insert("employees", _row(5_000 + index, f"u{index}"))
        assert _wait(lambda: _sequences_match(primary, replica))
        assert replica["follower"].applied_frames >= 5
        assert replica["follower"].last_error is None
        identifier = primary["router"].current_id("employees")
        assert _raw_answer(replica["address"], identifier) == _raw_answer(
            primary["address"], identifier
        )
        # The replicated rows are served verified to a real client.
        with VerifyingClient(*replica["address"]) as client:
            rows = client.query(FULL_RANGE).rows
        assert any(row["emp_id"] == "rep-u4" for row in rows)
    finally:
        _stop_replica(replica)


def test_replication_status_is_observable_over_the_wire(primary, tmp_path):
    replica = _spawn_replica(primary, str(tmp_path / "replica"))
    host, port = primary["address"]
    try:
        before = _status(replica["address"])
        assert before.epoch == 0
        with OwnerClient(host, port, primary["scheme"]) as owner_client:
            owner_client.insert("employees", _row(7_500, "status"))
            owner_client.attest("employees", lifetime=3600.0)
        assert _wait(
            lambda: _status(replica["address"])
            == _status(primary["address"])
        )
        after = _status(replica["address"])
        assert after.sequence > before.sequence
        assert after.epoch == 1
        assert replica["follower"].status()["employees"] == (
            after.sequence,
            after.epoch,
        )
    finally:
        _stop_replica(replica)


def test_replicated_attestations_satisfy_freshness_clients(primary, tmp_path):
    replica = _spawn_replica(primary, str(tmp_path / "replica"))
    host, port = primary["address"]
    try:
        with OwnerClient(host, port, primary["scheme"]) as owner_client:
            owner_client.attest("employees", lifetime=3600.0)
        assert _wait(lambda: _status(replica["address"]).epoch == 1)
        policy = FreshnessPolicy(max_staleness=3600.0)
        with VerifyingClient(*replica["address"], freshness=policy) as client:
            result = client.query(FULL_RANGE)
        assert result.attestation is not None
        assert result.attestation.epoch == 1
    finally:
        _stop_replica(replica)


def test_replica_refuses_direct_writes(primary, tmp_path):
    replica = _spawn_replica(primary, str(tmp_path / "replica"))
    try:
        with OwnerClient(
            *replica["address"], signature_scheme=primary["scheme"]
        ) as owner_client:
            with pytest.raises(RemoteError) as excinfo:
                owner_client.insert("employees", _row(9_999, "fenced"))
            assert excinfo.value.code == "ReadOnlyReplica"
            with pytest.raises(RemoteError) as excinfo:
                owner_client.attest("employees", retry_stale=False)
            assert excinfo.value.code == "ReadOnlyReplica"
    finally:
        _stop_replica(replica)


def test_catchup_after_follower_disconnect(primary, tmp_path):
    replica = _spawn_replica(primary, str(tmp_path / "replica"))
    host, port = primary["address"]
    try:
        replica["follower"].stop()  # the replica goes dark
        with OwnerClient(host, port, primary["scheme"]) as owner_client:
            for index in range(4):
                owner_client.insert("employees", _row(6_000 + index, f"d{index}"))
        assert not _sequences_match(primary, replica)
        # A fresh follower catches up from where the replica stopped — no
        # special mode, catch-up IS the poll loop.
        replica["follower"] = ReplicationFollower(
            replica["server"], host, port, poll_interval=0.02
        ).start()
        assert _wait(lambda: _sequences_match(primary, replica))
        identifier = primary["router"].current_id("employees")
        assert _raw_answer(replica["address"], identifier) == _raw_answer(
            primary["address"], identifier
        )
    finally:
        _stop_replica(replica)


def test_compaction_gap_demands_resync(primary, tmp_path):
    replica = _spawn_replica(primary, str(tmp_path / "replica"))
    host, port = primary["address"]
    router, storage = primary["router"], primary["storage"]
    try:
        replica["follower"].stop()
        with OwnerClient(host, port, primary["scheme"]) as owner_client:
            for index in range(3):
                owner_client.insert("employees", _row(8_000 + index, f"g{index}"))
        # Checkpoint + compact the primary's WAL: the update frames the
        # stalled replica still needs are gone.
        # rotation()/attestation_for() take target.lock themselves — fetch
        # them before holding it (the lock is not reentrant).
        rotation = router.rotation("employees")
        attestation = router.attestation_for("employees")
        target = router.route(router.current_id("employees"))
        with target.lock:
            storage.checkpoint_now(target, rotation, attestation)
        follower = ReplicationFollower(
            replica["server"], host, port, poll_interval=0.02
        )
        replica["follower"] = follower
        follower.start()
        assert _wait(lambda: follower.needs_resync)
        assert isinstance(follower.last_error, ReplicationError)
        assert follower.last_error.reason == "replication-gap"
        # The operator's remedy: re-bootstrap from a fresh snapshot.
        follower.stop()
        replica["server"].stop()
        replica["storage"].close()
        shutil.rmtree(replica["root"])
        fresh = _spawn_replica(primary, replica["root"])
        replica.update(fresh)
        assert _wait(lambda: _sequences_match(primary, replica))
    finally:
        _stop_replica(replica)


def test_walctl_inspect_reports_the_replication_mark(primary, tmp_path):
    host, port = primary["address"]
    with OwnerClient(host, port, primary["scheme"]) as owner_client:
        owner_client.insert("employees", _row(4_321, "mark"))
        owner_client.attest("employees", lifetime=3600.0)
    primary["storage"].sync()
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = walctl.main(["inspect", primary["root"], "--replication"])
    assert code == 0
    report = json.loads(buffer.getvalue())
    mark = report["shards"]["hr"]["employees"]["replication"]
    assert mark["applied_sequence"] == (
        primary["router"].manifest_by_name("employees").sequence
    )
    assert mark["epoch"] == 1
    # Without the flag the key is absent — the report shape is unchanged.
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        walctl.main(["inspect", primary["root"]])
    assert "replication" not in json.loads(buffer.getvalue())["shards"]["hr"]["employees"]
