"""Tier-1 smoke mode of the wire/service benchmark (``benchmarks/bench_wire_service.py``).

Runs the serialized-VO-size sweep, the codec throughput loop and the live
client/server throughput workload at scaled-down sizes, so every ordinary
``pytest`` run re-checks that the harness works and that the Figure 9 trend
(the VO/result overhead ratio falls as selectivity rises) still holds.
"""

from repro.bench.wire import SMOKE_WIRE_CONFIG, run_wire_benchmarks


def test_wire_smoke_benchmark_report():
    report = run_wire_benchmarks(SMOKE_WIRE_CONFIG)
    workloads = report["workloads"]
    assert {
        "wire_vo_sizes",
        "wire_codec_throughput",
        "service_throughput",
    } <= set(workloads)

    sizes = workloads["wire_vo_sizes"]
    points = sizes["points"]
    assert len(points) == len(SMOKE_WIRE_CONFIG.selectivities)
    for point in points:
        assert point["vo_bytes"] > 0
        assert point["vo_analytic_bytes"] > 0
    # Figure 9 trend: larger results amortise the authentication traffic.
    assert points[-1]["overhead_ratio"] < points[0]["overhead_ratio"]

    codec = workloads["wire_codec_throughput"]
    assert codec["encode_ops_per_sec"] > 0
    assert codec["decode_ops_per_sec"] > 0

    service = workloads["service_throughput"]
    assert service["requests_per_sec_raw"] > 0
    assert service["requests_per_sec_verified"] > 0
