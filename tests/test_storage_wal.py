"""Unit and fuzz tests for the write-ahead log and checkpoint files.

Covers the on-disk framing (length + CRC-32 + payload), the three fsync
policies, torn-tail truncation on open, the torn-vs-corrupt classification
(a partial final record is silently dropped; damaged bytes before the tail
are a typed error that only an explicit repair may truncate), atomic
compaction, and the checkpoint/key files that share the framing.

The fuzz sections are deterministic (seeded ``random.Random``): every
truncation point and every single-byte flip over a multi-record log must
leave the reader yielding an exact *prefix* of the original payloads or
refusing with a typed error — never garbage, never records past damage.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.storage import (
    WalCorruptError,
    WriteAheadLog,
    iter_wal_records,
    load_checkpoint,
    load_keys,
    save_keys,
    scan_wal,
)
from repro.storage.errors import CheckpointCorruptError
from repro.storage.faults import FaultInjected, FaultRegistry
from repro.storage.wal import BATCH_FSYNC_EVERY, encode_record

PAYLOADS = [b"alpha", b"beta-beta", b"gamma" * 40, b"\x00\xff" * 17, b"z"]


def _write_log(path, payloads=PAYLOADS, fsync="always"):
    with WriteAheadLog(str(path), fsync=fsync) as wal:
        for payload in payloads:
            wal.append(payload)
    return str(path)


# -- framing and replay --------------------------------------------------------


def test_append_replay_roundtrip(tmp_path):
    path = _write_log(tmp_path / "a.wal")
    with WriteAheadLog(path) as wal:
        assert wal.records == len(PAYLOADS)
        assert wal.replay() == PAYLOADS
    assert list(iter_wal_records(path)) == PAYLOADS


def test_record_framing_is_length_crc_payload(tmp_path):
    record = encode_record(b"hello")
    assert len(record) == 8 + 5
    assert int.from_bytes(record[:4], "big") == 5
    assert record[8:] == b"hello"
    with pytest.raises(ValueError):
        encode_record(b"")


def test_empty_and_missing_logs_open_clean(tmp_path):
    scan = scan_wal(str(tmp_path / "missing.wal"))
    assert (scan.records, scan.valid_end, scan.corrupt_at) == (0, 0, None)
    with WriteAheadLog(str(tmp_path / "fresh.wal")) as wal:
        assert wal.records == 0
        assert wal.replay() == []


# -- fsync policies ------------------------------------------------------------


def test_fsync_always_syncs_every_append(tmp_path):
    with WriteAheadLog(str(tmp_path / "a.wal"), fsync="always") as wal:
        for payload in PAYLOADS:
            wal.append(payload)
        assert wal.syncs == len(PAYLOADS)


def test_fsync_batch_syncs_on_the_batch_boundary(tmp_path):
    with WriteAheadLog(str(tmp_path / "b.wal"), fsync="batch") as wal:
        for index in range(BATCH_FSYNC_EVERY - 1):
            wal.append(b"r%d" % index)
        assert wal.syncs == 0
        wal.append(b"boundary")
        assert wal.syncs == 1
        wal.append(b"tail")
        wal.sync()  # graceful-shutdown path flushes the partial batch
        assert wal.syncs == 2


def test_fsync_off_only_syncs_explicitly(tmp_path):
    with WriteAheadLog(str(tmp_path / "c.wal"), fsync="off") as wal:
        for payload in PAYLOADS:
            wal.append(payload)
        assert wal.syncs == 0
        wal.sync()
        assert wal.syncs == 1


def test_unknown_fsync_policy_is_rejected(tmp_path):
    with pytest.raises(ValueError):
        WriteAheadLog(str(tmp_path / "d.wal"), fsync="sometimes")


# -- torn tails vs corruption --------------------------------------------------


def test_torn_tail_is_truncated_on_open(tmp_path):
    path = _write_log(tmp_path / "torn.wal")
    whole = os.path.getsize(path)
    with open(path, "ab") as handle:
        handle.write(encode_record(b"never-finished")[:11])
    with WriteAheadLog(path) as wal:
        assert wal.records == len(PAYLOADS)
        assert wal.truncated_tail_bytes == 11
        assert wal.replay() == PAYLOADS
        wal.append(b"after-recovery")  # appends land where the tail was cut
        assert wal.replay() == PAYLOADS + [b"after-recovery"]
    assert os.path.getsize(path) == whole + len(encode_record(b"after-recovery"))


def test_midfile_corruption_refuses_to_open(tmp_path):
    path = _write_log(tmp_path / "corrupt.wal")
    with open(path, "r+b") as handle:
        handle.seek(8 + len(PAYLOADS[0]) + 8 + 2)  # inside the second payload
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([byte[0] ^ 0x40]))
    scan = scan_wal(path)
    assert scan.corrupt_at == 8 + len(PAYLOADS[0])
    assert scan.records == 1
    with pytest.raises(WalCorruptError) as excinfo:
        WriteAheadLog(path)
    assert excinfo.value.offset == scan.corrupt_at
    with pytest.raises(WalCorruptError):
        list(iter_wal_records(path))


def test_impossible_length_is_corruption_not_a_tail(tmp_path):
    path = str(tmp_path / "length.wal")
    with open(path, "wb") as handle:
        handle.write(encode_record(b"fine"))
        handle.write((0).to_bytes(4, "big") + (0).to_bytes(4, "big"))
    scan = scan_wal(path)
    assert scan.corrupt_at == 8 + 4
    assert "announces 0 bytes" in scan.corrupt_detail


def test_every_truncation_point_yields_a_prefix(tmp_path):
    """Torn-tail fuzz: cutting the file anywhere must recover a clean prefix."""
    path = _write_log(tmp_path / "cut.wal")
    original = open(path, "rb").read()
    boundaries = []
    offset = 0
    for payload in PAYLOADS:
        offset += 8 + len(payload)
        boundaries.append(offset)
    for cut in range(len(original) + 1):
        with open(path, "wb") as handle:
            handle.write(original[:cut])
        expected = sum(1 for b in boundaries if b <= cut)
        with WriteAheadLog(path) as wal:
            assert wal.replay() == PAYLOADS[:expected], f"cut at byte {cut}"


def test_single_byte_flips_never_yield_forged_records(tmp_path):
    """Bit-flip fuzz: any one-byte change is caught as corruption or a torn
    tail — the reader yields a strict prefix of the true history or refuses."""
    path = _write_log(tmp_path / "flip.wal")
    original = open(path, "rb").read()
    rng = random.Random(0xC0FFEE)
    for _ in range(200):
        position = rng.randrange(len(original))
        mutation = bytearray(original)
        mutation[position] ^= 1 << rng.randrange(8)
        with open(path, "wb") as handle:
            handle.write(bytes(mutation))
        scan = scan_wal(path)
        if scan.corrupt_at is not None:
            with pytest.raises(WalCorruptError):
                list(iter_wal_records(path))
            continue
        recovered = list(iter_wal_records(path))
        assert recovered == PAYLOADS[: len(recovered)], (
            f"flip at byte {position} produced non-prefix records"
        )


# -- compaction ----------------------------------------------------------------


def test_rewrite_replaces_contents_atomically(tmp_path):
    path = _write_log(tmp_path / "compact.wal")
    with WriteAheadLog(path) as wal:
        wal.rewrite([b"only-survivor"])
        assert wal.records == 1
        wal.append(b"post-compaction")
        assert wal.replay() == [b"only-survivor", b"post-compaction"]
    assert not os.path.exists(path + ".tmp")
    with WriteAheadLog(path) as wal:
        assert wal.replay() == [b"only-survivor", b"post-compaction"]


# -- failpoints in the append path ---------------------------------------------


def test_mid_record_error_failpoint_backs_out_the_partial_write(tmp_path):
    faults = FaultRegistry()
    with WriteAheadLog(str(tmp_path / "f.wal"), faults=faults) as wal:
        wal.append(b"before")
        faults.arm("wal-mid-record", "error")
        with pytest.raises(FaultInjected):
            wal.append(b"doomed-record")
        # The half-written record was backed out; the log stays clean and
        # appendable in-process.
        wal.append(b"after")
        assert wal.replay() == [b"before", b"after"]


def test_before_fsync_error_failpoint_fires_once(tmp_path):
    faults = FaultRegistry()
    faults.arm("wal-before-fsync", "error", at_hit=2)
    with WriteAheadLog(str(tmp_path / "g.wal"), faults=faults) as wal:
        wal.append(b"one")
        with pytest.raises(FaultInjected):
            wal.append(b"two")
        wal.append(b"three")  # disarmed after firing
    # The record that hit the failpoint was fully written (the crash window
    # is *after* the write, before durability) — replay sees all three.
    assert list(iter_wal_records(str(tmp_path / "g.wal"))) == [b"one", b"two", b"three"]


# -- checkpoints and keys ------------------------------------------------------


@pytest.fixture(scope="module")
def small_world(signature_scheme):
    from repro.core.publisher import Publisher
    from repro.core.relational import SignedRelation
    from repro.db import workload
    from repro.service.router import ShardRouter

    relation = workload.generate_employees(12, seed=3, photo_bytes=8)
    signed = SignedRelation(relation, signature_scheme)
    router = ShardRouter({"hr": Publisher({"employees": signed})})
    return router, signed


def test_checkpoint_roundtrip(tmp_path, small_world, signature_scheme):
    from repro.storage.checkpoint import write_checkpoint

    router, signed = small_world
    rotation = router.rotation("employees")
    rows = [dict(record.values) for record in signed.relation]
    path = str(tmp_path / "employees.ckpt")
    write_checkpoint(path, "employees", rotation, rows)
    checkpoint = load_checkpoint(path)
    assert checkpoint.relation_name == "employees"
    assert checkpoint.sequence == signed.version
    assert list(checkpoint.rows) == rows
    assert checkpoint.rotation == rotation


def test_checkpoint_with_forged_rotation_is_refused(tmp_path, small_world):
    from dataclasses import replace

    from repro.storage.checkpoint import write_checkpoint

    router, signed = small_world
    rotation = router.rotation("employees")
    forged = replace(rotation, owner_signature=rotation.owner_signature + 1)
    path = str(tmp_path / "forged.ckpt")
    write_checkpoint(path, "employees", forged, [])
    with pytest.raises(CheckpointCorruptError) as excinfo:
        load_checkpoint(path)
    assert "not signed by the owner key" in str(excinfo.value)


def test_truncated_checkpoint_is_refused(tmp_path, small_world, signature_scheme):
    from repro.storage.checkpoint import write_checkpoint

    router, signed = small_world
    rotation = router.rotation("employees")
    rows = [dict(record.values) for record in signed.relation]
    path = str(tmp_path / "short.ckpt")
    write_checkpoint(path, "employees", rotation, rows)
    # Drop the last row record: the advertised row count no longer matches.
    records = list(iter_wal_records(path))
    with open(path, "wb") as handle:
        for record in records[:-1]:
            handle.write(encode_record(record))
    with pytest.raises(CheckpointCorruptError) as excinfo:
        load_checkpoint(path)
    assert "advertises" in str(excinfo.value)


def test_keys_roundtrip_preserves_signatures(tmp_path, signature_scheme):
    path = str(tmp_path / "keys.json")
    save_keys(path, {"employees": signature_scheme})
    assert (os.stat(path).st_mode & 0o777) == 0o600
    loaded = load_keys(path)["employees"]
    message = b"key-roundtrip-probe"
    assert loaded.sign(message) == signature_scheme.sign(message)
    assert loaded.verifier == signature_scheme.verifier
