"""Unit tests for prime generation and the RSA implementation."""

import pytest

from repro.crypto.primes import (
    SMALL_PRIMES,
    extended_gcd,
    generate_prime,
    is_probable_prime,
    modular_inverse,
)
from repro.crypto.rsa import RSAPublicKey, full_domain_hash, generate_keypair
from repro.crypto.signature import rsa_scheme, scheme_from_keypair


class TestPrimality:
    def test_small_primes_table(self):
        assert SMALL_PRIMES[:5] == [2, 3, 5, 7, 11]
        assert 1999 in SMALL_PRIMES
        assert all(p < 2000 for p in SMALL_PRIMES)

    def test_known_primes(self):
        for prime in (2, 3, 5, 97, 7919, 104729, 2**31 - 1):
            assert is_probable_prime(prime)

    def test_known_composites(self):
        for composite in (0, 1, 4, 9, 561, 8911, 2**31, 7919 * 104729):
            assert not is_probable_prime(composite)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat's test but not Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601, 8911, 62745):
            assert not is_probable_prime(carmichael)

    def test_large_prime_accepted(self):
        # 2^89 - 1 is a Mersenne prime.
        assert is_probable_prime(2**89 - 1)

    def test_generated_prime_has_requested_bits(self):
        for bits in (16, 32, 64, 128):
            prime = generate_prime(bits)
            assert prime.bit_length() == bits
            assert is_probable_prime(prime)

    def test_tiny_prime_request_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(4)


class TestModularArithmetic:
    def test_extended_gcd(self):
        g, x, y = extended_gcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_modular_inverse(self):
        assert (3 * modular_inverse(3, 11)) % 11 == 1
        assert (65537 * modular_inverse(65537, 99991 * 99989)) % (99991 * 99989) != 0

    def test_modular_inverse_missing(self):
        with pytest.raises(ValueError):
            modular_inverse(6, 9)


class TestFullDomainHash:
    def test_output_below_modulus(self):
        modulus = 2**512 + 1
        assert 0 <= full_domain_hash(b"hello", modulus) < modulus

    def test_deterministic(self):
        modulus = 2**256 + 5
        assert full_domain_hash(b"m", modulus) == full_domain_hash(b"m", modulus)

    def test_message_sensitivity(self):
        modulus = 2**256 + 5
        assert full_domain_hash(b"m1", modulus) != full_domain_hash(b"m2", modulus)

    def test_modulus_sensitivity(self):
        assert full_domain_hash(b"m", 2**256 + 5) != full_domain_hash(b"m", 2**255 + 9)


class TestRSA:
    def test_sign_verify_round_trip(self, signature_scheme):
        message = b"the quick brown fox"
        signature = signature_scheme.sign(message)
        assert signature_scheme.verify(message, signature)

    def test_verification_rejects_tampered_message(self, signature_scheme):
        signature = signature_scheme.sign(b"original")
        assert not signature_scheme.verify(b"tampered", signature)

    def test_verification_rejects_tampered_signature(self, signature_scheme):
        signature = signature_scheme.sign(b"m")
        assert not signature_scheme.verify(b"m", signature + 1)

    def test_signature_in_range(self, signature_scheme):
        signature = signature_scheme.sign(b"m")
        assert 0 < signature < signature_scheme.verifier.modulus

    def test_sign_accepts_buffer_types(self, signature_scheme):
        # bytearray/memoryview messages must keep working despite the memo.
        reference = signature_scheme.sign(b"buffer-msg")
        assert signature_scheme.sign(bytearray(b"buffer-msg")) == reference
        assert signature_scheme.sign(memoryview(b"buffer-msg")) == reference
        assert signature_scheme.verify(bytearray(b"buffer-msg"), reference)

    def test_repeated_signing_is_deterministic_and_memoized(self, signature_scheme):
        from repro.crypto.rsa import SIGN_COUNTER

        first = signature_scheme.sign(b"memo-msg")
        hits_before = SIGN_COUNTER.cache_hits
        assert signature_scheme.sign(b"memo-msg") == first
        assert SIGN_COUNTER.cache_hits == hits_before + 1

    def test_out_of_range_signature_rejected(self, signature_scheme):
        public = signature_scheme.verifier
        assert not public.verify(b"m", 0)
        assert not public.verify(b"m", public.modulus + 5)

    def test_key_sizes(self):
        keypair = generate_keypair(bits=512)
        assert keypair.public_key.bits in (511, 512)
        assert keypair.public_key.signature_bytes == 64

    def test_too_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=128)

    def test_keys_are_distinct_across_generations(self):
        first = generate_keypair(bits=512)
        second = generate_keypair(bits=512)
        assert first.public_key.modulus != second.public_key.modulus

    def test_cross_key_verification_fails(self, signature_scheme):
        other = rsa_scheme(bits=512)
        signature = signature_scheme.sign(b"m")
        assert not other.verify(b"m", signature)

    def test_scheme_from_keypair(self):
        keypair = generate_keypair(bits=512)
        scheme = scheme_from_keypair(keypair)
        assert scheme.verify(b"x", scheme.sign(b"x"))

    def test_public_key_is_dataclass_with_expected_fields(self, signature_scheme):
        public = signature_scheme.verifier
        assert isinstance(public, RSAPublicKey)
        assert public.exponent == 65537
