"""Pipelined frames: in-order answers, atomic snapshots under live updates.

The event-loop server answers each connection's frames strictly in request
order; these tests drive many frames per round trip through
:meth:`VerifyingClient.query_many` / :meth:`OwnerClient.push_many` and
interleave them with owner mutations: every answer must still verify as an
atomic snapshot attributed to exactly one manifest id, with sequences
non-decreasing along one connection.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.db.query import Conjunction, Query, RangeCondition
from repro.service import (
    OwnerClient,
    PublicationServer,
    RecordDelta,
    RemoteError,
    ServerConfig,
    VerifyingClient,
    build_demo_world,
)

pytestmark = pytest.mark.concurrency

#: CI runs the stress lane with reduced iterations (see ci.yml).
STRESS_DELTAS = int(os.environ.get("REPRO_STRESS_DELTAS", "40"))

SALARY_RANGE = Query(
    "employees", Conjunction((RangeCondition("salary", 10_000, 90_000),))
)
FULL_RANGE = Query("employees", Conjunction())


@pytest.fixture()
def world():
    return build_demo_world(key_bits=512, seed=13)


@pytest.fixture()
def server(world):
    with PublicationServer(
        world.router, config=ServerConfig(max_workers=16)
    ) as live:
        yield live


def test_query_many_orders_and_verifies(world, server):
    host, port = server.address
    queries = [SALARY_RANGE, FULL_RANGE, SALARY_RANGE, FULL_RANGE]
    with VerifyingClient(
        host, port, trusted_manifests=dict(world.manifests)
    ) as client:
        results = client.query_many(queries)
        assert len(results) == 4
        assert all(result.report is not None for result in results)
        assert results[0].rows == results[2].rows
        assert results[1].rows == results[3].rows
        # Pipelined and lockstep answers are the same answers.
        assert client.query(SALARY_RANGE).rows == results[0].rows


def test_error_mid_pipeline_keeps_connection_usable(world, server):
    host, port = server.address
    # Resolves client-side (known relation) but the server's proof engine
    # rejects the unknown attribute with a typed ErrorResponse.
    bad = Query(
        "employees", Conjunction((RangeCondition("no_such_attribute", 1, 2),))
    )
    with VerifyingClient(host, port) as client:
        client.fetch_manifest("employees")
        with pytest.raises(RemoteError):
            client.query_many([SALARY_RANGE, bad, SALARY_RANGE])
        # The whole exchange was drained, so the stream is still in sync.
        result = client.query(SALARY_RANGE)
        assert result.rows and result.report is not None


def test_push_many_applies_all_batches_in_order(world, server):
    host, port = server.address
    batches = [
        (
            RecordDelta(
                kind="insert",
                values={
                    "salary": 55_000 + index,
                    "emp_id": f"pm-{index}",
                    "name": f"pipelined {index}",
                    "dept": 2,
                    "photo": b"\x05" * 16,
                },
            ),
        )
        for index in range(6)
    ]
    with OwnerClient(
        host, port, signature_scheme=world.owner.signature_scheme
    ) as owner_client:
        responses = owner_client.push_many("employees", batches)
        assert len(responses) == 6
        sequences = [r.rotation.manifest.sequence for r in responses]
        assert sequences == sorted(sequences)
        assert all(r.receipt.signatures_recomputed >= 1 for r in responses)
    with VerifyingClient(
        host, port, trusted_manifests=dict(world.manifests)
    ) as client:
        result = client.query(
            Query(
                "employees",
                Conjunction((RangeCondition("salary", 55_000, 55_005),)),
            )
        )
        assert result.report is not None
        assert {row["emp_id"] for row in result.rows} >= {
            f"pm-{index}" for index in range(6)
        }


def test_backpressure_pauses_and_resumes(world, monkeypatch):
    """Floods beyond the pipeline cap are parked, not dropped or ballooned."""
    from repro.service import server as server_module

    monkeypatch.setattr(server_module, "MAX_PIPELINED_FRAMES", 4)
    with PublicationServer(world.router) as live:
        host, port = live.address
        with VerifyingClient(
            host, port, trusted_manifests=dict(world.manifests), timeout=60
        ) as client:
            results = client.query_many([SALARY_RANGE] * 20)
            assert len(results) == 20
            assert all(result.report is not None for result in results)


def test_mid_frame_stall_drops_connection(world, monkeypatch):
    """A peer stalled mid-frame is swept, not allowed to pin a buffer forever."""
    import socket as socket_module

    from repro.service import server as server_module

    monkeypatch.setattr(server_module, "MID_FRAME_STALL_SECONDS", 0.3)
    with PublicationServer(world.router) as live:
        host, port = live.address
        with socket_module.create_connection((host, port), timeout=30) as sock:
            sock.sendall((100).to_bytes(4, "big") + b"\x00" * 10)  # partial frame
            sock.settimeout(30)
            assert sock.recv(4096) == b"", "the stalled connection should be closed"


def test_pipelined_queries_interleaved_with_updates(world, server):
    """Readers pipeline batches while the owner streams deltas.

    Every answer must verify (atomic snapshot, correct manifest id), and the
    sequence an answer is attributed to must never go backwards along one
    connection (the server answers frames in order).
    """
    host, port = server.address
    errors = []
    done = threading.Event()

    def reader():
        try:
            with VerifyingClient(
                host,
                port,
                trusted_manifests=dict(world.manifests),
                timeout=60,
            ) as client:
                last_sequence = -1
                while not done.is_set():
                    for result in client.query_many([FULL_RANGE, SALARY_RANGE]):
                        assert result.report is not None
                        assert result.manifest_id, "answers must be attributed"
                        assert result.manifest_sequence >= last_sequence
                        last_sequence = result.manifest_sequence
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        with OwnerClient(
            host, port, signature_scheme=world.owner.signature_scheme, timeout=60
        ) as owner_client:
            for index in range(STRESS_DELTAS):
                owner_client.insert(
                    "employees",
                    {
                        "salary": 30_000 + index,
                        "emp_id": f"stream-{index}",
                        "name": "streamed",
                        "dept": 1,
                        "photo": b"\x09" * 16,
                    },
                )
    finally:
        done.set()
        for thread in threads:
            thread.join(timeout=120)
    assert not errors, errors
    assert server.updates_applied >= STRESS_DELTAS
