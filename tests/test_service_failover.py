"""Health-checked failover and hedged reads over a verifiable replica group.

The pool is a plain circuit breaker, so its unit suites drive it with an
injected clock.  The client suites run real servers: a dead endpoint fails
over to a live replica, a *provably stale* replica is treated exactly like a
dead one (the satellite scenario — ``StaleAnswerError`` opens the circuit,
the repaired replica is re-admitted through a half-open probe), semantic
errors never fail over, and a trickle-fed read is hedged to a healthy
replica that wins the race.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.core.publisher import Publisher
from repro.db import workload
from repro.db.query import Conjunction, Query, RangeCondition
from repro.service import (
    AttestationAck,
    AttestationPush,
    EndpointPool,
    FailoverClient,
    FailoverExhausted,
    FreshnessPolicy,
    OwnerClient,
    PublicationServer,
    ServerConfig,
    ServiceError,
    ShardRouter,
    build_attestation,
)
from repro.service.chaos import ChaosProxy, ChaosRegistry
from repro.service.protocol import recv_frame, send_message
from repro.wire import decode

ALL_SALARIES = Query(
    "employees", Conjunction((RangeCondition("salary", 0, 10_000_000),))
)

#: Deterministic base instant, far from the wall clock (see
#: tests/test_service_freshness.py).
T0 = 4_102_444_800.0


class _Clock:
    def __init__(self, now: float = T0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _dead_port() -> int:
    """A port that was just bound and released — nothing listens on it."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# -- the pool, under an injected clock ----------------------------------------


def test_pool_validation():
    with pytest.raises(ValueError):
        EndpointPool([])
    with pytest.raises(ValueError):
        EndpointPool([("h", 1)], failure_threshold=0)
    with pytest.raises(ValueError):
        EndpointPool([("h", 1)], open_seconds=0.0)


def test_pool_opens_at_the_threshold_and_half_opens_after_the_window():
    clock = _Clock(0.0)
    pool = EndpointPool(
        [("a", 1), ("b", 2)], failure_threshold=3, open_seconds=5.0, clock=clock
    )
    pool.record_failure(0)
    pool.record_failure(0)
    assert pool.state(0) == "closed"  # two strikes are not an outage
    pool.record_failure(0)
    assert pool.state(0) == "open"
    clock.advance(4.9)
    assert pool.state(0) == "open"
    clock.advance(0.2)
    assert pool.state(0) == "half-open"
    pool.record_success(0)
    assert pool.state(0) == "closed"


def test_pool_success_resets_the_failure_count():
    clock = _Clock(0.0)
    pool = EndpointPool([("a", 1)], failure_threshold=2, clock=clock)
    pool.record_failure(0)
    pool.record_success(0)
    pool.record_failure(0)
    # The earlier failure was wiped: still below the threshold.
    assert pool.state(0) == "closed"


def test_pool_candidates_probe_half_open_endpoints_first():
    clock = _Clock(0.0)
    pool = EndpointPool(
        [("a", 1), ("b", 2), ("c", 3)],
        failure_threshold=1,
        open_seconds=5.0,
        clock=clock,
    )
    pool.record_failure(1)
    # Inside the window the open endpoint is skipped entirely.
    assert 1 not in pool.candidates()
    clock.advance(5.0)
    assert pool.candidates()[0] == 1  # the probe goes first


def test_pool_round_robins_closed_endpoints():
    pool = EndpointPool([("a", 1), ("b", 2), ("c", 3)], clock=_Clock(0.0))
    first = [pool.candidates()[0] for _ in range(3)]
    assert first == [0, 1, 2]  # each call rotates the lead endpoint


def test_pool_returns_everything_when_all_circuits_are_open():
    clock = _Clock(0.0)
    pool = EndpointPool(
        [("a", 1), ("b", 2)], failure_threshold=1, open_seconds=60.0, clock=clock
    )
    pool.record_failure(0)
    pool.record_failure(1)
    # Refusing to try at all would turn a transient outage into an outage
    # of the pool's own making.
    assert pool.candidates() == [0, 1]


def test_pool_half_open_probe_is_single_flight():
    """One caller claims the half-open probe; concurrent callers skip the
    still-suspect endpoint instead of stampeding it."""
    clock = _Clock(0.0)
    pool = EndpointPool(
        [("a", 1), ("b", 2)], failure_threshold=1, open_seconds=5.0, clock=clock
    )
    pool.record_failure(0)
    clock.advance(5.0)
    assert pool.candidates()[0] == 0  # the first caller claims the probe
    assert pool.candidates() == [1]  # concurrent callers leave it alone
    pool.record_failure(0)  # the probe failed: the circuit re-opens...
    clock.advance(5.0)
    assert pool.candidates()[0] == 0  # ...and the claim was released


def test_pool_abandoned_probe_claim_expires():
    """A racer that never reports an outcome (an abandoned hedge losing its
    race) must not wedge the endpoint out of rotation forever: the claim
    ages out after another open window."""
    clock = _Clock(0.0)
    pool = EndpointPool(
        [("a", 1), ("b", 2)], failure_threshold=1, open_seconds=5.0, clock=clock
    )
    pool.record_failure(0)
    clock.advance(5.0)
    assert pool.candidates()[0] == 0
    clock.advance(5.0)  # the claim expires with no recorded outcome
    assert pool.candidates()[0] == 0


# -- the failover client over live servers ------------------------------------


@pytest.fixture()
def group(owner):
    """Two live servers publishing the same signed relation.

    Separate routers mean separate attestation state: the pair can model a
    fresh primary next to a stale (or repaired) replica.
    """
    relation = workload.generate_employees(12, seed=31, photo_bytes=8)
    database = owner.publish_database({"employees": relation})
    servers = []
    routers = []
    for _ in range(2):
        router = ShardRouter({"hr": Publisher(database.relations)})
        server = PublicationServer(router, config=ServerConfig(max_workers=6))
        server.start()
        routers.append(router)
        servers.append(server)
    yield {
        "owner": owner,
        "manifests": database.manifests,
        "routers": routers,
        "addresses": [server.address for server in servers],
    }
    for server in servers:
        server.stop()


def _push_attestation(address, scheme, manifest, epoch, clock):
    """Push an owner-signed attestation straight to one endpoint."""
    attestation = build_attestation(
        scheme, manifest, epoch, int(clock() * 1000), 3_600_000
    )
    with socket.create_connection(address, timeout=10) as sock:
        send_message(sock, AttestationPush(attestation))
        ack = decode(recv_frame(sock))
    assert isinstance(ack, AttestationAck)
    return attestation


def test_reads_fail_over_from_a_dead_endpoint(group):
    dead = ("127.0.0.1", _dead_port())
    with FailoverClient(
        [dead, group["addresses"][0]],
        trusted_manifests=dict(group["manifests"]),
        failure_threshold=1,
    ) as client:
        result = client.query(ALL_SALARIES)
        assert result.report is not None
        assert len(result.rows) == 12
        stats = client.stats()
        assert stats["failovers"] == 1
        assert stats["endpoint_states"][dead] == "open"
        # With the dead endpoint's circuit open, the next read goes straight
        # to the live replica: no new failover is recorded.
        client.query(ALL_SALARIES)
        assert client.stats()["failovers"] == 1


def test_exhaustion_reports_every_endpoint_failure():
    endpoints = [("127.0.0.1", _dead_port()), ("127.0.0.1", _dead_port())]
    with FailoverClient(endpoints, failure_threshold=1) as client:
        with pytest.raises(FailoverExhausted) as excinfo:
            client.relations()
    assert [address for address, _ in excinfo.value.failures] == endpoints


def test_semantic_errors_propagate_without_failover(group):
    with FailoverClient(
        group["addresses"], trusted_manifests=dict(group["manifests"])
    ) as client:
        with pytest.raises(ServiceError, match="does not list"):
            client.fetch_manifest("no-such-relation")
        stats = client.stats()
        assert stats["failovers"] == 0
        # The endpoint answered (with a refusal): it is healthy.
        assert set(stats["endpoint_states"].values()) == {"closed"}


def test_stale_replica_drives_failover_then_half_open_readmission(group):
    """The satellite scenario: freshness failure == endpoint failure.

    Endpoint A serves no attestation, B a fresh one.  A freshness-enforcing
    read fails over A → B (opening A's circuit), the owner repairs A, the
    open window expires, and the next read re-admits A via its half-open
    probe — all under one injected clock.
    """
    clock = _Clock()
    scheme = group["owner"].signature_scheme
    stale_address, fresh_address = group["addresses"]
    manifest = group["routers"][1].manifest_by_name("employees")
    host, port = fresh_address
    with OwnerClient(host, port, scheme, clock=clock) as owner_client:
        assert owner_client.attest("employees", lifetime=3600.0).epoch == 1

    policy = FreshnessPolicy(max_staleness=3600.0, clock=clock)
    with FailoverClient(
        [stale_address, fresh_address],
        trusted_manifests=dict(group["manifests"]),
        freshness=policy,
        failure_threshold=1,
        open_seconds=30.0,
        clock=clock,
    ) as client:
        result = client.query(ALL_SALARIES)
        assert result.attestation is not None
        assert result.attestation.epoch == 1
        assert client.stats()["failovers"] == 1
        assert client.pool.state(0) == "open"

        # The owner repairs the stale endpoint (a later epoch clears the
        # group-wide anti-rollback floor), and the open window runs out.
        _push_attestation(stale_address, scheme, manifest, 2, clock)
        clock.advance(31.0)
        assert client.pool.state(0) == "half-open"

        result = client.query(ALL_SALARIES)
        assert result.attestation.epoch == 2  # the probe answered
        assert client.pool.state(0) == "closed"
        assert client.stats()["failovers"] == 1  # no new failure recorded


def test_hedged_read_wins_on_a_slow_endpoint(group):
    """A trickle-fed endpoint outlives the hedge deadline; the healthy
    replica's answer wins the race and both answers stay verified."""
    registry = ChaosRegistry()
    registry.arm("latency", 0.4)
    slow_host, slow_port = group["addresses"][0]
    with ChaosProxy(slow_host, slow_port, faults=registry) as proxy:
        with FailoverClient(
            [proxy.address, group["addresses"][1]],
            trusted_manifests=dict(group["manifests"]),
            hedge=True,
            hedge_after=0.05,
        ) as client:
            started = time.perf_counter()
            result = client.query(ALL_SALARIES)
            elapsed = time.perf_counter() - started
            assert result.report is not None
            assert len(result.rows) == 12
            stats = client.stats()
            assert stats["hedges_fired"] >= 1
            assert stats["hedge_wins"] >= 1
            # The win is the point: the read returned well before the slow
            # endpoint could have answered (>= 2 x 0.4s of injected latency).
            assert elapsed < 0.8
            # Wait out the slow racer before tearing the proxy down, so its
            # connection teardown is orderly.
            time.sleep(1.0)


def test_endpoint_clients_share_one_freshness_floor_and_lock(group):
    """Every per-endpoint client advances the same anti-rollback floor under
    the same lock — hedged racers on two endpoints cannot interleave the
    check-then-set and roll an accepted ``(sequence, epoch)`` backwards."""
    with FailoverClient(group["addresses"]) as client:
        first = client._client(0)
        second = client._client(1)
        assert first._freshness_seen is second._freshness_seen
        assert first._freshness_lock is second._freshness_lock
        assert first._freshness_lock is client._freshness_lock


def test_writes_stay_pinned_to_the_primary(group):
    with FailoverClient(group["addresses"]) as client:
        assert client.primary_address == group["addresses"][0]
        with client.owner_client(group["owner"].signature_scheme) as owner_client:
            assert (owner_client.host, owner_client.port) == group["addresses"][0]
