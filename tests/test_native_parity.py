"""Cross-backend parity: pure Python vs the native (gmpy2) arithmetic backend.

The backend contract (:mod:`repro.crypto.backend`) is that every public
artifact — signatures, FDH representatives, aggregates, chain digests, wire
frames — is byte-identical regardless of which arithmetic implementation
computed it.  These tests run the same workloads under
``force_backend(pure_backend())`` and under the import-selected backend and
compare the results exactly.  On a machine without gmpy2 the two coincide
and the suite degenerates to (still useful) self-consistency plus the
fixed-window/powmod algebraic properties; in the CI native lane the active
backend is gmpy2 and every comparison is a true cross-implementation check.

A tamper sweep runs under the *active* backend so the native lane proves
that acceleration never widens what verifies, and a subprocess test pins the
``REPRO_NATIVE=0`` escape hatch.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.aggregate import (
    aggregate_signatures,
    batch_verify_signatures,
    verify_aggregate,
)
from repro.crypto.backend import (
    active_backend,
    backend_name,
    backend_stats,
    exponent_schedule,
    fixed_window_pow,
    force_backend,
    key_context,
    powmod,
    pure_backend,
)
from repro.crypto.rsa import full_domain_hash, full_domain_hash_many
from repro.wire import decode, encode


def _src_path() -> str:
    return os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


# ---------------------------------------------------------------------------
# Backend selection and reporting
# ---------------------------------------------------------------------------


def test_backend_identity_is_reported():
    stats = backend_stats()
    assert stats["backend"] == backend_name()
    assert stats["backend"] in ("python", "gmpy2")
    assert stats["native"] == active_backend().native
    assert 0 <= stats["key_contexts"] <= stats["key_context_capacity"]


def test_repro_native_zero_forces_pure_python_in_a_fresh_process():
    """``REPRO_NATIVE=0`` must select the pure backend even with gmpy2 present."""
    env = dict(os.environ, REPRO_NATIVE="0", PYTHONPATH=_src_path())
    output = subprocess.check_output(
        [
            sys.executable,
            "-c",
            "from repro.crypto.backend import backend_name, active_backend; "
            "print(backend_name(), active_backend().native)",
        ],
        env=env,
        text=True,
    )
    assert output.split() == ["python", "False"]


def test_default_selection_matches_gmpy2_importability():
    """Without the override, the backend is gmpy2 iff gmpy2 imports cleanly."""
    env = dict(os.environ, PYTHONPATH=_src_path())
    env.pop("REPRO_NATIVE", None)
    output = subprocess.check_output(
        [
            sys.executable,
            "-c",
            "from repro.crypto.backend import backend_name\n"
            "try:\n"
            "    import gmpy2  # noqa: F401\n"
            "    expected = 'gmpy2'\n"
            "except Exception:\n"
            "    expected = 'python'\n"
            "print(backend_name(), expected)",
        ],
        env=env,
        text=True,
    )
    name, expected = output.split()
    assert name == expected


# ---------------------------------------------------------------------------
# Arithmetic-level parity
# ---------------------------------------------------------------------------


@given(
    base=st.integers(min_value=0, max_value=2**521),
    exponent=st.integers(min_value=0, max_value=2**521),
    modulus=st.integers(min_value=2, max_value=2**521),
)
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_powmod_matches_builtin_pow_on_both_backends(base, exponent, modulus):
    expected = pow(base, exponent, modulus)
    assert powmod(base, exponent, modulus) == expected
    with force_backend(pure_backend()):
        assert powmod(base, exponent, modulus) == expected


@given(
    base=st.integers(min_value=0, max_value=2**521),
    exponent=st.integers(min_value=0, max_value=2**521),
    modulus=st.integers(min_value=2, max_value=2**521),
    window=st.one_of(st.none(), st.integers(min_value=1, max_value=7)),
)
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_fixed_window_pow_matches_builtin_pow(base, exponent, modulus, window):
    schedule = exponent_schedule(exponent, window)
    assert fixed_window_pow(base, schedule, modulus) == pow(base, exponent, modulus)


@given(
    exponent=st.integers(min_value=0, max_value=2**521),
    window=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=100)
def test_exponent_schedule_reconstructs_the_exponent(exponent, window):
    window_bits, digits = exponent_schedule(exponent, window)
    assert window_bits == window
    value = 0
    for digit in digits:
        assert 0 <= digit < (1 << window)
        value = (value << window) | digit
    assert value == exponent
    if digits:
        assert digits[0] != 0  # no leading zero digits


@given(value=st.integers(min_value=0, max_value=2**600))
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_key_context_pow_verify_matches_pow_on_both_backends(
    value, signature_scheme
):
    public_key = signature_scheme.verifier
    expected = pow(value, public_key.exponent, public_key.modulus)
    assert key_context(public_key.modulus, public_key.exponent).pow_verify(
        value
    ) == expected
    with force_backend(pure_backend()):
        assert key_context(public_key.modulus, public_key.exponent).pow_verify(
            value
        ) == expected


# ---------------------------------------------------------------------------
# Artifact-level parity: signatures, FDH, aggregates, wire frames
# ---------------------------------------------------------------------------


@given(messages=st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=8))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_fdh_is_byte_identical_across_backends(messages, signature_scheme):
    modulus = signature_scheme.verifier.modulus
    active = full_domain_hash_many(messages, modulus)
    singles = [full_domain_hash(message, modulus) for message in messages]
    with force_backend(pure_backend()):
        pure = full_domain_hash_many(messages, modulus)
    assert active == singles == pure


@given(messages=st.lists(st.binary(min_size=0, max_size=48), min_size=1, max_size=6))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_signatures_are_byte_identical_across_backends(messages, signature_scheme):
    signer = signature_scheme.signer
    active_signatures = signature_scheme.sign_batch(messages)
    with force_backend(pure_backend()):
        pure_signatures = [signer.sign(message) for message in messages]
        # Cross-check: pure-backend verification accepts the active batch.
        assert all(
            signature_scheme.verifier.verify(message, signature)
            for message, signature in zip(messages, active_signatures)
        )
    assert active_signatures == pure_signatures
    assert all(
        signature_scheme.verifier.verify(message, signature)
        for message, signature in zip(messages, pure_signatures)
    )


def test_aggregates_and_batch_verify_are_identical_across_backends(
    signature_scheme,
):
    messages = [b"parity-agg|%04d" % index for index in range(16)]
    signatures = signature_scheme.sign_batch(messages)
    public_key = signature_scheme.verifier
    active_aggregate = aggregate_signatures(signatures, public_key, messages)
    assert verify_aggregate(active_aggregate, messages, public_key)
    assert batch_verify_signatures(messages, signatures, public_key)
    assert batch_verify_signatures(
        messages, signatures, public_key, weight_bits=16
    )
    with force_backend(pure_backend()):
        pure_aggregate = aggregate_signatures(signatures, public_key, messages)
        assert pure_aggregate.value == active_aggregate.value
        assert verify_aggregate(pure_aggregate, messages, public_key)
        assert batch_verify_signatures(messages, signatures, public_key)
        assert batch_verify_signatures(
            messages, signatures, public_key, weight_bits=16
        )


def test_answer_frames_are_byte_identical_across_backends(signature_scheme):
    from repro.core.publisher import Publisher
    from repro.core.relational import SignedRelation
    from repro.core.verifier import ResultVerifier
    from repro.db import workload
    from repro.db.query import Conjunction, Query, RangeCondition

    query = Query(
        "employees",
        Conjunction((RangeCondition("salary", 20_000, 80_000),)),
    )

    def build_answer():
        relation = workload.generate_employees(24, seed=11, photo_bytes=8)
        signed = SignedRelation(relation, signature_scheme)
        publisher = Publisher({"employees": signed})
        verifier = ResultVerifier({"employees": signed.manifest})
        answer = publisher.answer(query)
        verifier.verify(query, answer.rows, answer.proof)
        return answer

    active_answer = build_answer()
    active_frame = encode(active_answer.proof)
    with force_backend(pure_backend()):
        pure_answer = build_answer()
        pure_frame = encode(pure_answer.proof)
        assert decode(pure_frame) == pure_answer.proof
    assert pure_frame == active_frame
    assert decode(active_frame) == active_answer.proof
    assert pure_answer.rows == active_answer.rows


# ---------------------------------------------------------------------------
# Tamper sweep under the active backend
# ---------------------------------------------------------------------------


def test_tampering_is_rejected_under_the_active_backend(signature_scheme):
    """Acceleration must never widen what verifies: every single-bit/byte
    perturbation of a genuine signature (and a swapped-message pairing) is
    rejected through the per-key fast path and the batch screening test."""
    messages = [b"parity-tamper|%04d" % index for index in range(12)]
    signatures = signature_scheme.sign_batch(messages)
    public_key = signature_scheme.verifier

    for index in range(len(messages)):
        flipped = list(signatures)
        flipped[index] ^= 1 << (index % 64)
        assert not public_key.verify(messages[index], flipped[index])
        assert not batch_verify_signatures(messages, flipped, public_key)
        assert not batch_verify_signatures(
            messages, flipped, public_key, weight_bits=16
        )

    # Message/signature pairings must not be interchangeable either.
    assert not public_key.verify(messages[0], signatures[1])
    swapped = [signatures[1], signatures[0], *signatures[2:]]
    assert not batch_verify_signatures(
        messages, swapped, public_key, weight_bits=16
    )

    # Out-of-range and degenerate values.
    assert not public_key.verify(messages[0], signatures[0] + public_key.modulus)
    for bogus in (0, 1, public_key.modulus - 1):
        assert not public_key.verify(messages[0], bogus)


def test_force_backend_restores_the_previous_backend():
    before = active_backend()
    with force_backend(pure_backend()) as pinned:
        assert active_backend() is pinned is pure_backend()
    assert active_backend() is before


@pytest.mark.skipif(
    not active_backend().native, reason="gmpy2 backend not active"
)
def test_native_backend_is_actually_native():
    """In the CI native lane this pins that the fast path is really gmpy2."""
    assert backend_name() == "gmpy2"
    assert backend_stats()["native"] is True
