"""Typed transport errors and the retry budget.

Failover needs to know *why* an exchange failed: a refused connection means
nobody is listening (fail over now, retrying is pointless), a reset means the
peer died mid-exchange (a retry may land on a recovered server), and a
timeout means the peer accepted work it never answered.  These suites pin the
classification on real sockets and the :class:`RetryPolicy` deadline that
turns "bounded attempts" into "bounded wall-clock".
"""

import errno
import socket
import threading

import pytest

from repro.service.client import ServiceConnection
from repro.service.protocol import (
    ConnectionRefusedTransportError,
    ListRelationsRequest,
    RelationListing,
    ResetTransportError,
    ServiceProtocolError,
    TimeoutTransportError,
    TransportError,
    UnreachableTransportError,
)
from repro.service.retry import RetriesExhausted, RetryPolicy


def _dead_port() -> int:
    """A port that was just bound and released — nothing listens on it."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _Acceptor:
    """A server that accepts connections and then follows one behaviour."""

    def __init__(self, behaviour: str) -> None:
        self.behaviour = behaviour
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._accepted = []
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            if self.behaviour == "close-after-request":
                try:
                    sock.recv(65536)  # consume the request, answer nothing
                except OSError:
                    pass
                sock.close()
            else:  # "silent": accept, read, never answer
                self._accepted.append(sock)

    def close(self) -> None:
        self._listener.close()
        for sock in self._accepted:
            try:
                sock.close()
            except OSError:
                pass


def test_refused_connection_is_typed():
    connection = ServiceConnection("127.0.0.1", _dead_port(), timeout=2.0)
    with pytest.raises(ConnectionRefusedTransportError) as excinfo:
        connection._request(ListRelationsRequest(), RelationListing)
    # The subclass hierarchy is part of the contract: existing handlers that
    # catch ServiceProtocolError keep working.
    assert isinstance(excinfo.value, TransportError)
    assert isinstance(excinfo.value, ServiceProtocolError)


def test_timeout_is_typed():
    acceptor = _Acceptor("silent")
    try:
        connection = ServiceConnection("127.0.0.1", acceptor.port, timeout=0.2)
        with pytest.raises(TimeoutTransportError) as excinfo:
            connection._request(ListRelationsRequest(), RelationListing)
        assert isinstance(excinfo.value, TransportError)
        connection.close()
    finally:
        acceptor.close()


def test_peer_close_mid_exchange_is_typed_reset():
    acceptor = _Acceptor("close-after-request")
    try:
        connection = ServiceConnection("127.0.0.1", acceptor.port, timeout=2.0)
        with pytest.raises(ResetTransportError):
            connection._request(ListRelationsRequest(), RelationListing)
        connection.close()
    finally:
        acceptor.close()


@pytest.mark.parametrize(
    "raised",
    [
        socket.gaierror(socket.EAI_NONAME, "Name or service not known"),
        OSError(errno.ENETUNREACH, "Network is unreachable"),
    ],
    ids=["dns-failure", "network-unreachable"],
)
def test_never_reached_endpoints_are_typed_unreachable(monkeypatch, raised):
    """DNS failures and unroutable networks mean the endpoint was never
    *reached* — a different (and possibly transient) condition than a live
    host refusing, so they get their own retryable type instead of
    masquerading as ``ConnectionRefusedTransportError``."""

    def never_reached(address, timeout=None):
        raise raised

    monkeypatch.setattr(socket, "create_connection", never_reached)
    connection = ServiceConnection("no-such-host.invalid", 9, timeout=2.0)
    with pytest.raises(UnreachableTransportError) as excinfo:
        connection._request(ListRelationsRequest(), RelationListing)
    assert isinstance(excinfo.value, TransportError)
    assert not isinstance(excinfo.value, ConnectionRefusedTransportError)
    # Under a refused-excluding policy (the FailoverClient default) the
    # unreachable endpoint still earns its retries.
    policy = RetryPolicy(no_retry_errors=(ConnectionRefusedTransportError,))
    assert policy.retryable(excinfo.value)


def test_transport_errors_are_retryable_by_default():
    policy = RetryPolicy()
    for error in (
        ConnectionRefusedTransportError("x"),
        ResetTransportError("x"),
        TimeoutTransportError("x"),
    ):
        assert policy.retryable(error)


def test_no_retry_errors_skip_the_backoff_loop():
    policy = RetryPolicy(
        max_attempts=5, no_retry_errors=(ConnectionRefusedTransportError,)
    )
    calls = []

    def refused():
        calls.append(1)
        raise ConnectionRefusedTransportError("nobody home")

    # Propagates unchanged after exactly one attempt — not RetriesExhausted.
    with pytest.raises(ConnectionRefusedTransportError):
        policy.run(refused, sleep=lambda _: None)
    assert len(calls) == 1
    # Sibling transport errors still retry to exhaustion.
    assert policy.retryable(ResetTransportError("x"))


def test_deadline_bounds_wall_clock_not_just_attempts():
    clock = {"now": 0.0}
    slept = []

    def fake_sleep(seconds: float) -> None:
        slept.append(seconds)
        clock["now"] += seconds

    attempts = []

    def always_reset():
        attempts.append(1)
        clock["now"] += 0.4  # each attempt burns 0.4s of budget
        raise ResetTransportError("boom")

    policy = RetryPolicy(
        max_attempts=10,
        base_delay=0.1,
        multiplier=1.0,
        jitter=0.0,
        deadline=1.0,
        clock=lambda: clock["now"],
    )
    with pytest.raises(RetriesExhausted) as excinfo:
        policy.run(always_reset, sleep=fake_sleep)
    # Attempt 1 at t=0 -> 0.4; backoff 0.1 fits (0.5), attempt 2 -> 0.9.
    # The next backoff would end at 1.0 >= deadline, so the policy stops at
    # 2 attempts despite max_attempts=10.
    assert len(attempts) == 2
    assert excinfo.value.attempts == 2
    assert "retry budget" in str(excinfo.value)
    assert isinstance(excinfo.value.last_error, ResetTransportError)


def test_deadline_untouched_message_when_attempts_exhaust_first():
    policy = RetryPolicy(
        max_attempts=2, base_delay=0.0, jitter=0.0, deadline=60.0
    )
    with pytest.raises(RetriesExhausted) as excinfo:
        policy.run(
            lambda: (_ for _ in ()).throw(ResetTransportError("boom")),
            sleep=lambda _: None,
        )
    # Attempts ran out inside the budget: the message stays the historical
    # attempts-only text.
    assert "retry budget" not in str(excinfo.value)
    assert excinfo.value.attempts == 2


def test_deadline_validation():
    with pytest.raises(ValueError):
        RetryPolicy(deadline=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(clock="not-callable")  # type: ignore[arg-type]
