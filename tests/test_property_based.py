"""Property-based tests (hypothesis) for the core data structures and invariants.

Signature operations are too slow for hypothesis's example counts, so these
properties target the signature-free layers: polynomial representations, chain
digests, Merkle trees, encodings, the B+-tree and the relation/engine layer.
End-to-end properties over the full (signed) pipeline live in
``test_integration_end_to_end.py`` with hand-picked example counts.
"""

import string

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core import polynomial
from repro.core.digest import ConceptualChainScheme, OptimizedChainScheme
from repro.crypto.encoding import bytes_to_int, encode_many, int_to_bytes
from repro.crypto.merkle import MerkleTree
from repro.db.btree import BPlusTree
from repro.db.relation import Relation
from repro.db.schema import Attribute, AttributeType, KeyDomain, Schema


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


@given(st.integers(min_value=-(2**128), max_value=2**128))
def test_int_encoding_round_trips(value):
    assert bytes_to_int(int_to_bytes(value)) == value


@given(
    st.lists(
        st.one_of(
            st.integers(min_value=-(2**64), max_value=2**64),
            st.text(max_size=20),
            st.binary(max_size=20),
            st.booleans(),
            st.none(),
        ),
        max_size=8,
    ),
    st.lists(
        st.one_of(
            st.integers(min_value=-(2**64), max_value=2**64),
            st.text(max_size=20),
            st.binary(max_size=20),
            st.booleans(),
            st.none(),
        ),
        max_size=8,
    ),
)
def test_encode_many_is_injective(left, right):
    assume(left != right)
    assert encode_many(left) != encode_many(right)


# ---------------------------------------------------------------------------
# Polynomial representations (Section 5.1)
# ---------------------------------------------------------------------------


@given(
    value=st.integers(min_value=0, max_value=10**6),
    base=st.integers(min_value=2, max_value=16),
)
def test_canonical_digits_round_trip(value, base):
    num_digits = polynomial.num_digits_for(value + 1, base)
    digits = polynomial.to_canonical_digits(value, base, num_digits)
    assert polynomial.digits_to_value(digits, base) == value
    assert all(0 <= d < base for d in digits)


@given(
    value=st.integers(min_value=0, max_value=10**6),
    base=st.integers(min_value=2, max_value=12),
)
def test_preferred_representations_preserve_value(value, base):
    num_digits = polynomial.num_digits_for(10**6 + 1, base)
    for representation in polynomial.all_preferred_representations(value, base, num_digits):
        if representation.is_valid:
            assert representation.value(base) == value


@given(
    delta_t=st.integers(min_value=0, max_value=10**6),
    delta_c=st.integers(min_value=0, max_value=10**6),
    base=st.integers(min_value=2, max_value=12),
)
def test_boundary_selection_lemma(delta_t, delta_c, base):
    """For any delta_c <= delta_t a representation with digit-wise slack exists."""
    assume(delta_c <= delta_t)
    num_digits = polynomial.num_digits_for(10**6 + 1, base)
    selected = polynomial.select_boundary_representation(delta_t, delta_c, base, num_digits)
    c_digits = polynomial.to_canonical_digits(delta_c, base, num_digits)
    delta_e = polynomial.subtract_digitwise(selected.digits, c_digits)
    assert all(d >= 0 for d in delta_e)
    assert polynomial.digits_to_value(selected.digits, base) == delta_t


# ---------------------------------------------------------------------------
# Chain digest schemes
# ---------------------------------------------------------------------------

_WIDTH = 4096


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(
    value=st.integers(min_value=0, max_value=_WIDTH - 2),
    alpha=st.integers(min_value=1, max_value=_WIDTH - 1),
    base=st.sampled_from([2, 3, 8]),
)
def test_optimized_boundary_proof_round_trips(value, alpha, base):
    assume(value < alpha)
    scheme = OptimizedChainScheme(_WIDTH, "upper", base=base)
    total = _WIDTH - value - 1
    delta_c = _WIDTH - alpha
    assist = scheme.boundary_proof(value, total, delta_c)
    assert scheme.recompute_from_boundary(delta_c, assist) == scheme.commitment(value, total)


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(
    value=st.integers(min_value=0, max_value=250),
    alpha=st.integers(min_value=1, max_value=255),
)
def test_conceptual_and_optimized_agree_on_provability(value, alpha):
    """Both schemes accept exactly the claims that are true."""
    width = 256
    conceptual = ConceptualChainScheme(width, "upper")
    optimized = OptimizedChainScheme(width, "upper", base=2)
    total = width - value - 1
    delta_c = width - alpha
    claim_true = value < alpha
    for scheme in (conceptual, optimized):
        if claim_true:
            assist = scheme.boundary_proof(value, total, delta_c)
            assert scheme.recompute_from_boundary(delta_c, assist) == (
                scheme.commitment(value, total)
            )
        else:
            try:
                scheme.boundary_proof(value, total, delta_c)
                raised = False
            except Exception:
                raised = True
            assert raised


# ---------------------------------------------------------------------------
# Merkle trees
# ---------------------------------------------------------------------------


@settings(max_examples=50)
@given(st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=40))
def test_merkle_every_leaf_has_valid_proof(leaves):
    tree = MerkleTree(leaves)
    for index, payload in enumerate(leaves):
        proof = tree.prove(index)
        assert MerkleTree.verify_against_root(payload, proof, tree.root)
        assert MerkleTree.root_from_payload(payload, proof) == tree.root


@settings(max_examples=50)
@given(
    st.lists(st.binary(min_size=0, max_size=32), min_size=1, max_size=30),
    st.integers(min_value=0, max_value=29),
    st.binary(min_size=1, max_size=32),
)
def test_merkle_tampered_leaf_never_verifies(leaves, index, replacement):
    assume(index < len(leaves))
    assume(replacement != leaves[index])
    tree = MerkleTree(leaves)
    proof = tree.prove(index)
    assert not MerkleTree.verify_against_root(replacement, proof, tree.root)


@settings(max_examples=50)
@given(st.lists(st.binary(min_size=0, max_size=32), min_size=1, max_size=40))
def test_merkle_root_from_leaf_digests_matches(leaves):
    tree = MerkleTree(leaves)
    digests = [MerkleTree.leaf_digest_of(payload) for payload in leaves]
    assert MerkleTree.root_from_leaf_digests(digests) == tree.root


# ---------------------------------------------------------------------------
# B+-tree
# ---------------------------------------------------------------------------


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10_000), unique=True, max_size=300),
    fanout=st.integers(min_value=3, max_value=32),
)
def test_btree_iterates_in_sorted_order(keys, fanout):
    tree = BPlusTree(fanout=fanout)
    for key in keys:
        tree.insert(key, key * 3)
    assert tree.keys() == sorted(keys)
    assert len(tree) == len(keys)
    for key in keys:
        assert tree.search(key) == key * 3


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=5_000), unique=True, min_size=1, max_size=200
    ),
    bounds=st.tuples(
        st.integers(min_value=0, max_value=5_000), st.integers(min_value=0, max_value=5_000)
    ),
)
def test_btree_range_search_matches_filter(keys, bounds):
    low, high = min(bounds), max(bounds)
    tree = BPlusTree(fanout=16)
    for key in keys:
        tree.insert(key, None)
    expected = sorted(k for k in keys if low <= k <= high)
    assert [k for k, _ in tree.range_search(low, high)] == expected


# ---------------------------------------------------------------------------
# Relations
# ---------------------------------------------------------------------------

_SCHEMA = Schema.build(
    "items",
    [
        Attribute("key", AttributeType.INTEGER, domain=KeyDomain(0, 100_000)),
        Attribute("payload", AttributeType.STRING),
    ],
    key="key",
)


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.lists(
        st.integers(min_value=1, max_value=99_999), unique=True, min_size=1, max_size=100
    ),
    bounds=st.tuples(
        st.integers(min_value=1, max_value=99_999),
        st.integers(min_value=1, max_value=99_999),
    ),
)
def test_relation_range_scan_matches_filter(keys, bounds):
    low, high = min(bounds), max(bounds)
    relation = Relation.from_rows(
        _SCHEMA, [{"key": key, "payload": f"p{key}"} for key in keys]
    )
    expected = sorted(k for k in keys if low <= k <= high)
    assert [record.key for record in relation.range_scan(low, high)] == expected


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.lists(
        st.integers(min_value=1, max_value=99_999), unique=True, min_size=2, max_size=60
    ),
    data=st.data(),
)
def test_relation_insert_delete_preserves_order(keys, data):
    relation = Relation.from_rows(
        _SCHEMA, [{"key": key, "payload": "x"} for key in keys[:-1]]
    )
    relation.insert({"key": keys[-1], "payload": "x"})
    victim_key = data.draw(st.sampled_from(keys))
    victim = next(record for record in relation if record.key == victim_key)
    relation.delete(victim)
    assert relation.keys() == sorted(set(keys) - {victim_key})
