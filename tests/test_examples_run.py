"""Every example under ``examples/`` must run to completion.

The examples are the project's executable documentation; each is run as a
real subprocess (the way a reader would run it) and must exit 0 without
writing to stderr.  The examples insert ``src`` into ``sys.path`` themselves,
so no environment setup is required.
"""

import os
import subprocess
import sys

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_EXAMPLES_DIR = os.path.join(_REPO_ROOT, "examples")

EXAMPLES = sorted(
    name for name in os.listdir(_EXAMPLES_DIR) if name.endswith(".py")
)


def test_examples_exist():
    assert "quickstart.py" in EXAMPLES
    assert "client_server.py" in EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_cleanly(example):
    completed = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, example)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=_REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"{example} exited with {completed.returncode}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{example} produced no output"
    assert not completed.stderr.strip(), (
        f"{example} wrote to stderr:\n{completed.stderr}"
    )
