"""Unit tests for the Section 5.1 base-B representations of chain exponents."""

import pytest

from repro.core import polynomial


class TestDigits:
    def test_num_digits_for_powers(self):
        assert polynomial.num_digits_for(2**32, 2) == 32
        assert polynomial.num_digits_for(1000, 10) == 3
        assert polynomial.num_digits_for(1001, 10) == 4
        assert polynomial.num_digits_for(2, 2) == 1

    def test_num_digits_invalid_inputs(self):
        with pytest.raises(ValueError):
            polynomial.num_digits_for(100, 1)
        with pytest.raises(ValueError):
            polynomial.num_digits_for(0, 2)

    def test_canonical_digits_round_trip(self):
        for base in (2, 3, 10, 16):
            for value in (0, 1, 7, 255, 12345):
                digits = polynomial.to_canonical_digits(value, base, 20)
                assert polynomial.digits_to_value(digits, base) == value
                assert all(0 <= digit < base for digit in digits)

    def test_canonical_digits_overflow_rejected(self):
        with pytest.raises(ValueError):
            polynomial.to_canonical_digits(1000, 10, 3)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            polynomial.to_canonical_digits(-1, 10, 3)

    def test_paper_example_5555(self):
        # Section 5.1's running example: delta_t = 5555 in base 10.
        digits = polynomial.to_canonical_digits(5555, 10, 4)
        assert digits == (5, 5, 5, 5)


class TestRepresentations:
    def test_canonical_representation(self):
        rep = polynomial.canonical_representation(5555, 10, 4)
        assert rep.is_canonical and rep.is_valid
        assert rep.value(10) == 5555

    def test_preferred_representations_preserve_value(self):
        for value in (5555, 905, 1, 999, 100):
            for index in range(3):
                rep = polynomial.preferred_representation(value, 10, 4, index)
                if rep.is_valid:
                    assert rep.value(10) == value

    def test_preferred_representation_digit_shape(self):
        # The paper's example: delta_e = 7 + 12*10 + 6*100 + 2*1000 corresponds
        # to representation 1 of delta_t = 5555 minus delta_c = 2828.
        rep = polynomial.preferred_representation(5555, 10, 4, 1)
        assert rep.digits == (15, 14, 4, 5)
        assert rep.value(10) == 5555

    def test_invalid_representation_detected(self):
        # delta_t = 3 + 2*B + 0*B^2 + 3*B^3: representation 1 needs digit 2 - 1 < 0.
        base = 10
        value = 3 + 2 * base + 0 * base**2 + 3 * base**3
        rep = polynomial.preferred_representation(value, base, 4, 1)
        assert not rep.is_valid
        assert rep.dropped_position == 2
        assert 2 not in rep.included_positions()

    def test_all_preferred_representations_count(self):
        reps = polynomial.all_preferred_representations(5555, 10, 4)
        assert len(reps) == 3
        assert all(not rep.is_canonical for rep in reps)

    def test_single_digit_has_no_preferred_representations(self):
        assert polynomial.all_preferred_representations(5, 10, 1) == []

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            polynomial.preferred_representation(5555, 10, 4, 3)


class TestSubtraction:
    def test_digitwise_subtraction(self):
        assert polynomial.subtract_digitwise((5, 5, 5), (1, 2, 3)) == (4, 3, 2)

    def test_negative_digit_rejected(self):
        with pytest.raises(ValueError):
            polynomial.subtract_digitwise((1, 0), (2, 0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            polynomial.subtract_digitwise((1, 2), (1,))


class TestBoundarySelection:
    def test_canonical_selected_when_digits_dominate(self):
        # delta_t = 5555, delta_c = 4321: digit-wise 5 >= each of 1,2,3,4.
        rep = polynomial.select_boundary_representation(5555, 4321, 10, 4)
        assert rep.is_canonical

    def test_paper_example_needs_non_canonical(self):
        # delta_t = 5555, delta_c = 2828: digit 1 of delta_t (5) < digit 1 of
        # delta_c (2)?  No — the borrow is triggered at positions where the
        # prefix comparison fails; the selected representation must allow a
        # non-negative digit-wise subtraction.
        rep = polynomial.select_boundary_representation(5555, 2828, 10, 4)
        c_digits = polynomial.to_canonical_digits(2828, 10, 4)
        delta_e = polynomial.subtract_digitwise(rep.digits, c_digits)
        assert all(d >= 0 for d in delta_e)
        assert polynomial.digits_to_value(rep.digits, 10) == 5555

    def test_delta_t_smaller_than_delta_c_rejected(self):
        with pytest.raises(ValueError):
            polynomial.select_boundary_representation(10, 20, 10, 4)

    @pytest.mark.parametrize("base", [2, 3, 5, 10])
    def test_selection_lemma_exhaustive_small_domain(self, base):
        """Exhaustively validate the Section 5.1 lemma on a small domain."""
        num_digits = polynomial.num_digits_for(200, base)
        for delta_t in range(0, 200, 7):
            for delta_c in range(0, delta_t + 1, 5):
                rep = polynomial.select_boundary_representation(
                    delta_t, delta_c, base, num_digits
                )
                assert rep.is_valid
                c_digits = polynomial.to_canonical_digits(delta_c, base, num_digits)
                delta_e = polynomial.subtract_digitwise(rep.digits, c_digits)
                # Reconstruction: adding delta_c digit-wise recovers delta_t's digits.
                reconstructed = tuple(e + c for e, c in zip(delta_e, c_digits))
                assert reconstructed == rep.digits
                assert polynomial.digits_to_value(rep.digits, base) == delta_t

    def test_equal_deltas_select_canonical(self):
        rep = polynomial.select_boundary_representation(999, 999, 10, 4)
        assert rep.is_canonical

    def test_zero_delta_c(self):
        rep = polynomial.select_boundary_representation(123, 0, 10, 4)
        assert rep.is_canonical
