"""Scheme-polymorphic serving: every registered scheme, one serving stack.

The matrix lane (``pytest -m schemes``) parameterizes the same end-to-end
story over every registered :class:`~repro.schemes.ProofScheme`:

* publish a relation under the scheme, host it on a real
  :class:`~repro.service.PublicationServer`, query it over TCP with a
  :class:`~repro.service.VerifyingClient`, and verify the honest answer under
  the scheme tag of the pinned manifest;
* a shared tamper set (modified row value, forged signature material, dropped
  row) is rejected by every scheme that claims to catch it — and the naive
  scheme's *inability* to catch omissions is asserted explicitly, as is the
  typed :class:`~repro.schemes.CompletenessUnsupported` opt-in gate;
* live owner updates rotate scheme-tagged manifests for every scheme, and a
  rotation that swaps the scheme is refused with a typed
  :class:`~repro.schemes.SchemeMismatchError` even when correctly signed.
"""

import dataclasses

import pytest

from repro.core.errors import (
    ProofConstructionError,
    VerificationError,
)
from repro.db import workload
from repro.db.query import Conjunction, Projection, Query, RangeCondition
from repro.schemes import (
    CompletenessUnsupported,
    PublisherProtocol,
    SchemeMismatchError,
    UnknownSchemeError,
    available_schemes,
    get_scheme,
    scheme_of,
)
from repro.service import (
    OwnerClient,
    PublicationServer,
    RemoteError,
    ServerConfig,
    ShardRouter,
    VerifyingClient,
)
from repro.wire import decode, encode, manifest_id
from repro.wire.updates import ManifestRotated, manifest_signing_message

pytestmark = pytest.mark.schemes

ROWS = 40
RANGE_QUERY = Query(
    "employees", Conjunction((RangeCondition("salary", 20_000, 60_000),))
)

#: Schemes that prove completeness (dropping a qualifying row must be caught).
COMPLETE = tuple(
    name for name in available_schemes() if get_scheme(name).proves_completeness
)


def _fresh_relation(seed=42):
    return workload.generate_employees(ROWS, seed=seed, photo_bytes=8)


def _publish(scheme_name, signature_scheme, seed=42):
    scheme = get_scheme(scheme_name)
    relation = _fresh_relation(seed)
    publication = scheme.publish(relation, signature_scheme)
    publisher = scheme.make_publisher({"employees": publication})
    return publication, publisher


@pytest.fixture(scope="module", params=available_schemes())
def scheme_world(request, signature_scheme):
    """One live server per scheme, hosting the same employee workload."""
    publication, publisher = _publish(request.param, signature_scheme)
    router = ShardRouter({"shard": publisher})
    with PublicationServer(router, config=ServerConfig(max_workers=4)) as server:
        host, port = server.address
        yield request.param, publication, publisher, server, host, port


@pytest.fixture()
def scheme_client(scheme_world):
    _, _, _, _, host, port = scheme_world
    with VerifyingClient(host, port) as client:
        yield client


# -- registry ------------------------------------------------------------------


def test_all_expected_schemes_registered():
    assert available_schemes() == ["chain", "devanbu", "naive", "vbtree"]


def test_unknown_scheme_is_typed():
    with pytest.raises(UnknownSchemeError):
        get_scheme("aggregation-5.2")


def test_scheme_capabilities():
    assert get_scheme("chain").proves_completeness
    assert get_scheme("chain").supports_joins
    assert get_scheme("devanbu").proves_completeness
    assert not get_scheme("devanbu").supports_joins
    assert not get_scheme("naive").proves_completeness
    assert not get_scheme("vbtree").proves_completeness


@pytest.mark.parametrize("scheme_name", available_schemes())
def test_every_scheme_publisher_satisfies_publisher_protocol(
    scheme_name, signature_scheme
):
    """Conformance: the surface the service duck-types against is explicit.

    ``handler.py`` / ``pool.py`` / ``router.py`` consume shard publishers
    through :class:`~repro.schemes.PublisherProtocol` exactly; every
    registered scheme's publisher must satisfy it (the protocol is
    ``runtime_checkable``, so ``isinstance`` checks member presence).
    """
    _, publisher = _publish(scheme_name, signature_scheme)
    assert isinstance(publisher, PublisherProtocol)
    # Spot-check the members actually bind (presence, not just annotation).
    assert "employees" in publisher.database
    assert publisher.signed_relation("employees") is not None
    assert isinstance(publisher.cache_stats(), dict)


def test_publisher_protocol_rejects_partial_surfaces():
    class _NotAPublisher:
        database = {}

        def answer(self, query, role=None):  # pragma: no cover - never called
            raise NotImplementedError

    assert not isinstance(_NotAPublisher(), PublisherProtocol)


def test_manifests_carry_their_scheme_tag(signature_scheme):
    for name in available_schemes():
        publication, _ = _publish(name, signature_scheme)
        manifest = publication.manifest
        assert manifest.scheme == name
        assert scheme_of(manifest) is get_scheme(name)
        # the tag is inside the canonical bytes the 32-byte id commits to
        swapped = dataclasses.replace(
            manifest, scheme="chain" if name != "chain" else "naive"
        )
        assert manifest_id(swapped) != manifest_id(manifest)


# -- end-to-end serving over the wire -----------------------------------------


def test_honest_answer_verifies_over_the_wire(scheme_world, scheme_client):
    scheme_name, publication, publisher, _, _, _ = scheme_world
    allow = not get_scheme(scheme_name).proves_completeness
    result = scheme_client.query(RANGE_QUERY, allow_incomplete=allow)
    assert result.report is not None
    expected = [
        record.as_dict()
        for record in publication.relation.range_scan(20_000, 60_000)
    ] if scheme_name != "chain" else None
    assert len(result.rows) == result.report.result_rows
    assert result.rows, "the workload always has rows in this range"
    if expected is not None:
        assert [dict(row) for row in result.rows] == expected
    # the VO round-trips the codec as this scheme's artifact type
    assert isinstance(result.proof, get_scheme(scheme_name).vo_type)
    assert decode(encode(result.proof)) == result.proof


def test_incomplete_schemes_require_explicit_opt_in(scheme_world, scheme_client):
    scheme_name = scheme_world[0]
    if get_scheme(scheme_name).proves_completeness:
        scheme_client.query(RANGE_QUERY)  # no opt-in needed
    else:
        with pytest.raises(CompletenessUnsupported):
            scheme_client.query(RANGE_QUERY)


def test_baseline_schemes_reject_unsupported_query_shapes(scheme_world, scheme_client):
    scheme_name = scheme_world[0]
    if scheme_name == "chain":
        pytest.skip("the chain scheme supports projections")
    projected = Query(
        "employees",
        Conjunction((RangeCondition("salary", 20_000, 60_000),)),
        Projection(("name",)),
    )
    with pytest.raises(RemoteError) as excinfo:
        scheme_client.query(projected, allow_incomplete=True)
    assert excinfo.value.code == "ProofConstructionError"


def test_vacuous_range_needs_no_proof(scheme_world, scheme_client):
    scheme_name = scheme_world[0]
    empty = Query(
        "employees", Conjunction((RangeCondition("salary", 50, 10),))
    )
    allow = not get_scheme(scheme_name).proves_completeness
    result = scheme_client.query(empty, allow_incomplete=allow)
    assert result.rows == ()
    assert result.proof is None


# -- cross-scheme tamper property ---------------------------------------------


def _direct_answer(publisher, query=RANGE_QUERY):
    result = publisher.answer(query)
    rows = [dict(row) for row in result.rows]
    assert rows and result.proof is not None
    return rows, result.proof


def _verifier_for(scheme_name, publication):
    return get_scheme(scheme_name).verifier_for(
        "employees", publication.manifest
    )


@pytest.mark.parametrize("scheme_name", available_schemes())
def test_every_scheme_accepts_the_honest_answer(scheme_name, signature_scheme):
    publication, publisher = _publish(scheme_name, signature_scheme)
    rows, proof = _direct_answer(publisher)
    report = _verifier_for(scheme_name, publication).verify(
        RANGE_QUERY, rows, proof
    )
    assert report.result_rows == len(rows)


@pytest.mark.parametrize("scheme_name", available_schemes())
def test_every_scheme_rejects_a_tampered_row(scheme_name, signature_scheme):
    """The shared tamper set: a modified attribute value in one row."""
    publication, publisher = _publish(scheme_name, signature_scheme)
    rows, proof = _direct_answer(publisher)
    rows[0]["name"] = "EVIL"
    with pytest.raises(VerificationError):
        _verifier_for(scheme_name, publication).verify(RANGE_QUERY, rows, proof)


@pytest.mark.parametrize("scheme_name", available_schemes())
def test_every_scheme_rejects_a_spurious_row(scheme_name, signature_scheme):
    """The shared tamper set: an invented row appended to the result."""
    publication, publisher = _publish(scheme_name, signature_scheme)
    rows, proof = _direct_answer(publisher)
    forged = dict(rows[-1])
    forged["salary"] = rows[-1]["salary"] + 1
    forged["name"] = "GHOST"
    rows.append(forged)
    with pytest.raises(VerificationError):
        _verifier_for(scheme_name, publication).verify(RANGE_QUERY, rows, proof)


@pytest.mark.parametrize("scheme_name", available_schemes())
def test_every_scheme_rejects_a_wrong_scheme_proof(scheme_name, signature_scheme):
    """A VO of a different scheme's type is a typed rejection, not confusion."""
    publication, publisher = _publish(scheme_name, signature_scheme)
    rows, _ = _direct_answer(publisher)
    other = "naive" if scheme_name != "naive" else "vbtree"
    other_publication, other_publisher = _publish(other, signature_scheme)
    _, other_proof = _direct_answer(other_publisher)
    with pytest.raises(VerificationError) as excinfo:
        _verifier_for(scheme_name, publication).verify(
            RANGE_QUERY, rows, other_proof
        )
    assert excinfo.value.reason in ("scheme-proof-mismatch", "malformed-proof")


@pytest.mark.parametrize("scheme_name", COMPLETE)
def test_completeness_schemes_reject_a_dropped_row(scheme_name, signature_scheme):
    publication, publisher = _publish(scheme_name, signature_scheme)
    rows, proof = _direct_answer(publisher)
    with pytest.raises(VerificationError):
        _verifier_for(scheme_name, publication).verify(
            RANGE_QUERY, rows[:-1], proof
        )


def test_naive_omission_gap_is_real_and_documented(signature_scheme):
    """The naive scheme's fundamental gap: a dropped row still verifies.

    This is exactly why the client requires allow_incomplete=True — the
    under-verification is possible, so accepting it must be explicit.
    """
    publication, publisher = _publish("naive", signature_scheme)
    rows, proof = _direct_answer(publisher)
    truncated_proof = type(proof)(signatures=proof.signatures[:-1])
    report = _verifier_for("naive", publication).verify(
        RANGE_QUERY, rows[:-1], truncated_proof
    )
    assert report.result_rows == len(rows) - 1


# -- live updates under every scheme ------------------------------------------


def test_updates_rotate_scheme_tagged_manifests(scheme_world, signature_scheme):
    scheme_name, publication, publisher, server, host, port = scheme_world
    new_row = {
        "salary": 33_333,
        "emp_id": "x-new",
        "name": "newcomer",
        "dept": 1,
        "photo": b"\x07" * 8,
    }
    with OwnerClient(host, port, signature_scheme) as owner_client:
        before = owner_client.manifest("employees")
        assert before.scheme == scheme_name
        response = owner_client.insert("employees", new_row)
        assert response.signatures_recomputed >= (0 if scheme_name == "naive" else 1)
        after = owner_client.manifest("employees")
    assert after.scheme == scheme_name
    assert after.sequence == before.sequence + 1
    # a fresh client sees (and verifies) the new row under the rotated manifest
    allow = not get_scheme(scheme_name).proves_completeness
    with VerifyingClient(host, port) as reader:
        result = reader.query(
            Query(
                "employees",
                Conjunction((RangeCondition("salary", 33_333, 33_333),)),
            ),
            allow_incomplete=allow,
        )
    assert [dict(row) for row in result.rows] == [new_row]
    # leave the world as found for the other tests in this module
    with OwnerClient(host, port, signature_scheme) as owner_client:
        owner_client.delete("employees", new_row)


def test_bad_delta_batches_stay_all_or_nothing(scheme_world):
    scheme_name, publication, publisher, _, _, _ = scheme_world
    from repro.core.errors import UpdateApplicationError
    from repro.wire.updates import RecordDelta

    version = publication.version
    good = RecordDelta(
        kind="insert",
        values={
            "salary": 44_444,
            "emp_id": "x-good",
            "name": "good",
            "dept": 2,
            "photo": b"\x01" * 8,
        },
    )
    bad = RecordDelta(kind="delete", values={"salary": 1, "emp_id": "nope",
                                             "name": "?", "dept": 0,
                                             "photo": b"\x00" * 8})
    with pytest.raises(UpdateApplicationError):
        publisher.apply_deltas("employees", (good, bad))
    assert publication.version == version
    assert not publication.relation.range_scan(44_444, 44_444)


# -- scheme-swap rejection -----------------------------------------------------


def test_scheme_swapping_rotation_rejected_even_when_signed(
    scheme_world, scheme_client, signature_scheme
):
    """A correctly-signed rotation that changes the scheme is still refused."""
    scheme_name, publication, publisher, _, host, port = scheme_world
    pinned = scheme_client.fetch_manifest("employees")
    other = "naive" if scheme_name != "naive" else "chain"
    swapped = dataclasses.replace(
        pinned, scheme=other, sequence=pinned.sequence + 1
    )
    previous = manifest_id(pinned)
    forged_rotation = ManifestRotated(
        manifest=swapped,
        previous_id=previous,
        owner_signature=signature_scheme.sign(
            manifest_signing_message(swapped, previous)
        ),
    )
    with pytest.raises(SchemeMismatchError):
        scheme_client._validate_rotation("employees", pinned, forged_rotation)


def test_join_refused_under_schemes_without_join_proofs(signature_scheme):
    from repro.db.query import JoinQuery

    publication, publisher = _publish("vbtree", signature_scheme)
    router = ShardRouter({"shard": publisher})
    with PublicationServer(router, config=ServerConfig(max_workers=2)) as server:
        host, port = server.address
        with VerifyingClient(host, port) as client:
            client.fetch_manifest("employees")
            join = JoinQuery("employees", "employees", "salary", "salary")
            with pytest.raises(CompletenessUnsupported):
                client.query_join(join)


def test_mixed_scheme_shards_behind_one_server(signature_scheme):
    """One server fronting one shard per scheme; each verifies under its tag."""
    publications = {}
    shards = {}
    for name in available_schemes():
        scheme = get_scheme(name)
        relation = _fresh_relation(seed=11)
        publication = scheme.publish(relation, signature_scheme)
        # each scheme needs its own hosting name (names are unique per server)
        hosting = f"employees_{name}"
        shards[name] = scheme.make_publisher({hosting: publication})
        publications[hosting] = publication
    router = ShardRouter(shards)
    with PublicationServer(router, config=ServerConfig(max_workers=4)) as server:
        host, port = server.address
        with VerifyingClient(host, port) as client:
            for name in available_schemes():
                hosting = f"employees_{name}"
                manifest = client.fetch_manifest(hosting)
                assert manifest.scheme == name
                allow = not get_scheme(name).proves_completeness
                query = Query(
                    hosting,
                    Conjunction((RangeCondition("salary", 20_000, 60_000),)),
                )
                result = client.query(query, allow_incomplete=allow)
                assert result.report is not None and result.rows
                assert isinstance(result.proof, get_scheme(name).vo_type)


def test_scheme_publisher_refuses_foreign_publications(signature_scheme):
    publication, _ = _publish("naive", signature_scheme)
    with pytest.raises(ValueError):
        get_scheme("vbtree").make_publisher({"employees": publication})


def test_scheme_publisher_refuses_policies(signature_scheme):
    publication, _ = _publish("naive", signature_scheme)
    with pytest.raises(ProofConstructionError):
        get_scheme("naive").make_publisher(
            {"employees": publication}, policy=object()
        )


def test_devanbu_boundary_flag_forgery_rejected(signature_scheme):
    """A publisher cannot truncate a range by lying about the table edges.

    Regression for a completeness forgery: drop the first qualifying rows,
    hide leaves [0, k) behind genuine subtree digests, and claim
    ``left_is_table_start`` so the verifier never expects a below-range
    boundary tuple.  The flag must be pinned to the leaf range.
    """
    from repro.baselines.devanbu import DevanbuProof

    publication, publisher = _publish("devanbu", signature_scheme)
    mht = publication.inner
    full = Query(
        "employees", Conjunction((RangeCondition("salary", 1, 99_999),))
    )
    rows, honest = mht.answer_range(1, 99_999)
    assert honest.left_is_table_start and honest.right_is_table_end
    siblings = []
    mht._collect_siblings(0, ROWS, 5, ROWS, siblings)
    forged = DevanbuProof(
        expanded_rows=tuple(honest.expanded_rows[5:]),
        sibling_digests=tuple(siblings),
        root_signature=honest.root_signature,
        leaf_range=(5, ROWS),
        table_size=ROWS,
        left_is_table_start=True,
        right_is_table_end=True,
    )
    verifier = _verifier_for("devanbu", publication)
    with pytest.raises(VerificationError) as excinfo:
        verifier.verify(full, [dict(r) for r in rows[5:]], forged)
    assert excinfo.value.reason == "boundary-flag-mismatch"
    # the right-edge dual is pinned too
    siblings = []
    mht._collect_siblings(0, ROWS, 0, ROWS - 5, siblings)
    forged_right = DevanbuProof(
        expanded_rows=tuple(honest.expanded_rows[: ROWS - 5]),
        sibling_digests=tuple(siblings),
        root_signature=honest.root_signature,
        leaf_range=(0, ROWS - 5),
        table_size=ROWS,
        left_is_table_start=True,
        right_is_table_end=True,
    )
    with pytest.raises(VerificationError):
        verifier.verify(full, [dict(r) for r in rows[: ROWS - 5]], forged_right)
    # the honest full-range answer still verifies
    verifier.verify(full, [dict(r) for r in rows], honest)
