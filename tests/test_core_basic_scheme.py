"""Tests for the Section 3 basic scheme: greater-than queries over sorted lists."""

import pytest

from repro.core.basic_scheme import ListPublisher, ListVerifier, SignedValueList
from repro.core.errors import (
    CompletenessError,
    ProofConstructionError,
    VerificationError,
)
from repro.core.proof import GreaterThanProof, SignatureBundle
from repro.db.schema import KeyDomain

PAPER_VALUES = [2000, 3500, 8010, 12100, 25000]
PAPER_DOMAIN = KeyDomain(0, 100_000)


@pytest.fixture(scope="module")
def published(owner):
    return owner.publish_value_list(PAPER_VALUES, PAPER_DOMAIN)


@pytest.fixture(scope="module")
def publisher(published):
    return ListPublisher(published)


@pytest.fixture(scope="module")
def verifier(published):
    return ListVerifier(published.manifest)


class TestOwnerSide:
    def test_entry_count_includes_delimiters(self, published):
        assert published.entry_count() == len(PAPER_VALUES) + 2

    def test_signatures_cover_every_entry(self, published, signature_scheme):
        assert len(published.signatures) == published.entry_count()
        for index, signature in enumerate(published.signatures):
            assert signature_scheme.verify(published.chain_message(index), signature)

    def test_duplicate_values_rejected(self, owner):
        with pytest.raises(ValueError):
            owner.publish_value_list([5, 5, 7], PAPER_DOMAIN)

    def test_out_of_domain_values_rejected(self, owner):
        with pytest.raises(ValueError):
            owner.publish_value_list([0], PAPER_DOMAIN)
        with pytest.raises(ValueError):
            owner.publish_value_list([100_000], PAPER_DOMAIN)

    def test_values_are_sorted_on_publication(self, owner):
        published = owner.publish_value_list([30, 10, 20], KeyDomain(0, 100))
        assert published.values == [10, 20, 30]

    def test_empty_list_supported(self, owner):
        published = owner.publish_value_list([], KeyDomain(0, 100))
        assert published.entry_count() == 2


class TestQueryAndVerify:
    def test_paper_example_query(self, publisher, verifier):
        """The worked example of Section 3.1: alpha = 10000."""
        values, proof = publisher.answer_greater_than(10_000)
        assert values == [12100, 25000]
        report = verifier.verify_greater_than(10_000, values, proof)
        assert report.result_rows == 2
        assert report.checked_messages == 3  # two entries + right delimiter

    @pytest.mark.parametrize("alpha,expected", [
        (1, PAPER_VALUES),
        (2000, PAPER_VALUES),
        (2001, PAPER_VALUES[1:]),
        (8010, PAPER_VALUES[2:]),
        (24999, [25000]),
        (25000, [25000]),
        (25001, []),
        (99_999, []),
    ])
    def test_query_sweep(self, publisher, verifier, alpha, expected):
        values, proof = publisher.answer_greater_than(alpha)
        assert values == expected
        report = verifier.verify_greater_than(alpha, values, proof)
        assert report.result_rows == len(expected)

    def test_alpha_outside_domain_rejected(self, publisher):
        with pytest.raises(ProofConstructionError):
            publisher.answer_greater_than(0)
        with pytest.raises(ProofConstructionError):
            publisher.answer_greater_than(100_000)

    def test_empty_result_proof_is_single_message(self, publisher, verifier):
        values, proof = publisher.answer_greater_than(90_000)
        assert values == []
        report = verifier.verify_greater_than(90_000, values, proof)
        assert report.checked_messages == 1

    def test_empty_list_query(self, owner):
        published = owner.publish_value_list([], KeyDomain(0, 100))
        publisher = ListPublisher(published)
        verifier = ListVerifier(published.manifest)
        values, proof = publisher.answer_greater_than(50)
        assert values == []
        verifier.verify_greater_than(50, values, proof)

    def test_individual_signature_transport(self, published):
        publisher = ListPublisher(published, aggregate=False)
        verifier = ListVerifier(published.manifest)
        values, proof = publisher.answer_greater_than(3000)
        assert not proof.signatures.is_aggregated
        assert proof.signatures.signature_count == len(values) + 1
        verifier.verify_greater_than(3000, values, proof)

    def test_proof_size_accounting(self, publisher):
        values, proof = publisher.answer_greater_than(3000)
        assert proof.digest_count > 0
        assert proof.signature_count == 1
        assert proof.size_bytes(16, 128) == proof.digest_count * 16 + 128


class TestVerifierRejections:
    def test_omitted_first_value_detected(self, publisher, verifier):
        values, proof = publisher.answer_greater_than(3000)
        with pytest.raises(VerificationError):
            verifier.verify_greater_than(3000, values[1:], proof)

    def test_omitted_middle_value_detected(self, publisher, verifier):
        values, proof = publisher.answer_greater_than(3000)
        tampered = [values[0]] + values[2:]
        with pytest.raises(VerificationError):
            verifier.verify_greater_than(3000, tampered, proof)

    def test_omitted_last_value_detected(self, publisher, verifier):
        values, proof = publisher.answer_greater_than(3000)
        with pytest.raises(VerificationError):
            verifier.verify_greater_than(3000, values[:-1], proof)

    def test_spurious_value_detected(self, publisher, verifier):
        values, proof = publisher.answer_greater_than(3000)
        with pytest.raises(VerificationError):
            verifier.verify_greater_than(3000, values + [60_000], proof)

    def test_modified_value_detected(self, publisher, verifier):
        values, proof = publisher.answer_greater_than(3000)
        tampered = list(values)
        tampered[0] += 1
        with pytest.raises(VerificationError):
            verifier.verify_greater_than(3000, tampered, proof)

    def test_below_alpha_value_rejected_as_spurious(self, publisher, verifier):
        values, proof = publisher.answer_greater_than(10_000)
        with pytest.raises(VerificationError) as excinfo:
            verifier.verify_greater_than(10_000, [8010] + values, proof)
        assert excinfo.value.reason == "spurious-value"

    def test_unsorted_result_rejected(self, publisher, verifier):
        values, proof = publisher.answer_greater_than(3000)
        with pytest.raises(VerificationError):
            verifier.verify_greater_than(3000, list(reversed(values)), proof)

    def test_proof_for_different_alpha_rejected(self, publisher, verifier):
        values, proof = publisher.answer_greater_than(10_000)
        with pytest.raises(VerificationError):
            verifier.verify_greater_than(9_000, values, proof)

    def test_reused_proof_for_smaller_query_rejected(self, publisher, verifier):
        # A publisher must not reuse the proof for alpha=10000 to answer
        # alpha=3000 (which has more qualifying values).
        values, proof = publisher.answer_greater_than(10_000)
        forged = GreaterThanProof(
            alpha=3000,
            predecessor_boundary=proof.predecessor_boundary,
            entry_assists=proof.entry_assists,
            right_delimiter_digest=proof.right_delimiter_digest,
            signatures=proof.signatures,
        )
        with pytest.raises(VerificationError):
            verifier.verify_greater_than(3000, values, forged)

    def test_entry_assist_count_mismatch_rejected(self, publisher, verifier):
        values, proof = publisher.answer_greater_than(10_000)
        forged = GreaterThanProof(
            alpha=proof.alpha,
            predecessor_boundary=proof.predecessor_boundary,
            entry_assists=proof.entry_assists[:-1],
            right_delimiter_digest=proof.right_delimiter_digest,
            signatures=proof.signatures,
        )
        with pytest.raises(VerificationError):
            verifier.verify_greater_than(10_000, values, forged)

    def test_fake_empty_result_detected(self, publisher, published, verifier):
        """Section 3.2 case 2: claiming emptiness although values qualify."""
        # Build the proof an honest publisher produces for a truly-empty query,
        # then try to pass it off for a query that has qualifying values.
        values, empty_proof = publisher.answer_greater_than(90_000)
        assert values == []
        forged = GreaterThanProof(
            alpha=10_000,
            predecessor_boundary=empty_proof.predecessor_boundary,
            entry_assists=(),
            right_delimiter_digest=empty_proof.right_delimiter_digest,
            signatures=empty_proof.signatures,
        )
        with pytest.raises(VerificationError):
            verifier.verify_greater_than(10_000, [], forged)

    def test_wrong_signature_bundle_rejected(self, publisher, published, verifier):
        values, proof = publisher.answer_greater_than(10_000)
        other_values, other_proof = publisher.answer_greater_than(3000)
        forged = GreaterThanProof(
            alpha=proof.alpha,
            predecessor_boundary=proof.predecessor_boundary,
            entry_assists=proof.entry_assists,
            right_delimiter_digest=proof.right_delimiter_digest,
            signatures=other_proof.signatures,
        )
        with pytest.raises(CompletenessError):
            verifier.verify_greater_than(10_000, values, forged)


class TestConceptualScheme:
    """The same behaviour under the formula (2) conceptual digests."""

    @pytest.fixture(scope="class")
    def published_conceptual(self, conceptual_owner):
        return conceptual_owner.publish_value_list([5, 10, 20, 30, 40], KeyDomain(0, 64))

    def test_round_trip(self, published_conceptual):
        publisher = ListPublisher(published_conceptual)
        verifier = ListVerifier(published_conceptual.manifest)
        for alpha in (1, 5, 11, 30, 41, 63):
            values, proof = publisher.answer_greater_than(alpha)
            assert values == [v for v in [5, 10, 20, 30, 40] if v >= alpha]
            verifier.verify_greater_than(alpha, values, proof)

    def test_omission_detected(self, published_conceptual):
        publisher = ListPublisher(published_conceptual)
        verifier = ListVerifier(published_conceptual.manifest)
        values, proof = publisher.answer_greater_than(7)
        with pytest.raises(VerificationError):
            verifier.verify_greater_than(7, values[:-1], proof)


class TestListUpdates:
    def test_insert_touches_three_signatures(self, owner):
        published = owner.publish_value_list([10, 20, 30, 40], KeyDomain(0, 100))
        assert published.insert_value(25) == 3
        assert published.values == [10, 20, 25, 30, 40]
        # The list remains verifiable after the update.
        publisher = ListPublisher(published)
        verifier = ListVerifier(published.manifest)
        values, proof = publisher.answer_greater_than(22)
        assert values == [25, 30, 40]
        verifier.verify_greater_than(22, values, proof)

    def test_remove_keeps_chain_consistent(self, owner):
        published = owner.publish_value_list([10, 20, 30, 40], KeyDomain(0, 100))
        touched = published.remove_value(20)
        assert touched <= 3
        publisher = ListPublisher(published)
        verifier = ListVerifier(published.manifest)
        values, proof = publisher.answer_greater_than(15)
        assert values == [30, 40]
        verifier.verify_greater_than(15, values, proof)

    def test_duplicate_insert_rejected(self, owner):
        published = owner.publish_value_list([10, 20], KeyDomain(0, 100))
        with pytest.raises(ValueError):
            published.insert_value(10)

    def test_remove_missing_value_rejected(self, owner):
        published = owner.publish_value_list([10, 20], KeyDomain(0, 100))
        with pytest.raises(ValueError):
            published.remove_value(15)
