"""Security tests: the Section 3.2 case analysis against a *dishonest* publisher.

The honest :class:`~repro.core.publisher.Publisher` refuses to fabricate proofs
for false claims (``CheatingAttemptError``).  These tests go further and play
the adversary directly: they splice together forged verification objects from
legitimate material (old proofs, proofs for other queries, mutated digests) and
check that the verifier rejects every one of them.
"""

import pytest

from repro.core.digest import BoundaryAssist
from repro.core.errors import (
    CheatingAttemptError,
    CompletenessError,
    VerificationError,
)
from repro.core.proof import (
    BoundaryEntryProof,
    MatchedEntryProof,
    RangeQueryProof,
    SignatureBundle,
)
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.crypto.aggregate import aggregate_signatures
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.workload import generate_employees


@pytest.fixture(scope="module")
def world(owner):
    relation = generate_employees(40, seed=99, photo_bytes=4)
    signed = owner.publish_relation(relation)
    publisher = Publisher({"employees": signed})
    verifier = ResultVerifier({"employees": signed.manifest})
    return relation, signed, publisher, verifier


def _query(low, high):
    return Query("employees", Conjunction((RangeCondition("salary", low, high),)))


def _replace(proof: RangeQueryProof, **changes) -> RangeQueryProof:
    fields = dict(
        key_low=proof.key_low,
        key_high=proof.key_high,
        lower_boundary=proof.lower_boundary,
        upper_boundary=proof.upper_boundary,
        entries=proof.entries,
        signatures=proof.signatures,
        outer_neighbor_digest=proof.outer_neighbor_digest,
    )
    fields.update(changes)
    return RangeQueryProof(**fields)


class TestCase1WrongOrigin:
    """Case 1: the record before the result does not actually precede alpha."""

    def test_honest_publisher_refuses_false_boundary(self, world):
        relation, signed, publisher, _ = world
        keys = relation.keys()
        alpha = keys[5]
        # Claiming that keys[10] (>= alpha) precedes the result is a false claim.
        with pytest.raises(CheatingAttemptError):
            signed.upper_scheme.boundary_proof(
                keys[10],
                signed.domain.upper - keys[10] - 1,
                signed.domain.upper - alpha,
            )

    def test_forged_boundary_digests_rejected(self, world):
        relation, signed, publisher, verifier = world
        keys = relation.keys()
        query = _query(keys[5], keys[10])
        honest = publisher.answer(query)
        forged_boundary = BoundaryEntryProof(
            side="lower",
            chain_boundary=BoundaryAssist(
                intermediate_digests=tuple(
                    b"\x13" * 32
                    for _ in honest.proof.lower_boundary.chain_boundary.intermediate_digests
                ),
                used_canonical=True,
                mht_root=b"\x13" * 32,
            ),
            other_chain_digest=honest.proof.lower_boundary.other_chain_digest,
            attribute_root=honest.proof.lower_boundary.attribute_root,
        )
        # Claim a *smaller* result for a wider query by reusing the rest.
        with pytest.raises(CompletenessError):
            verifier.verify(
                query, honest.rows, _replace(honest.proof, lower_boundary=forged_boundary)
            )


class TestCase2FalseEmptyResult:
    """Case 2: claiming the result is empty when records qualify."""

    def test_reusing_gap_proof_for_populated_range_rejected(self, world):
        relation, signed, publisher, verifier = world
        keys = relation.keys()
        # Find a genuine gap and get its honest empty-result proof.
        gap = next(
            (a + 1, b - 1) for a, b in zip(keys, keys[1:]) if b - a > 2
        )
        empty_query = _query(*gap)
        empty = publisher.answer(empty_query)
        assert empty.rows == []
        # Try to use it to claim a populated range is empty.
        populated_query = _query(keys[3], keys[8])
        forged = _replace(empty.proof, key_low=keys[3], key_high=keys[8])
        with pytest.raises((CompletenessError, VerificationError)):
            verifier.verify(populated_query, [], forged)


class TestCase3WrongTerminal:
    """Case 3: silently truncating the top of the result."""

    def test_truncated_result_with_truncated_proof_rejected(self, world):
        relation, signed, publisher, verifier = world
        keys = relation.keys()
        query = _query(keys[5], keys[10])
        honest = publisher.answer(query)
        truncated_entries = honest.proof.entries[:-1]
        truncated_rows = honest.rows[:-1]
        signatures = [
            signed.signatures[signed.record_chain_index(position)]
            for position in range(5, 10)
        ]
        messages = [
            signed.chain_message(signed.record_chain_index(position))
            for position in range(5, 10)
        ]
        forged = _replace(
            honest.proof,
            entries=truncated_entries,
            signatures=SignatureBundle(
                aggregate=aggregate_signatures(
                    signatures, signed.manifest.public_key, messages
                )
            ),
        )
        with pytest.raises(CompletenessError):
            verifier.verify(query, truncated_rows, forged)


class TestCase4NonContiguousResult:
    """Case 4: omitting records from the middle of the result."""

    def test_middle_omission_rejected(self, world):
        relation, signed, publisher, verifier = world
        keys = relation.keys()
        query = _query(keys[5], keys[12])
        honest = publisher.answer(query)
        victim = 3  # omit the record at offset 3 of the result
        rows = honest.rows[:victim] + honest.rows[victim + 1 :]
        entries = honest.proof.entries[:victim] + honest.proof.entries[victim + 1 :]
        remaining_positions = [p for p in range(5, 13) if p != 5 + victim]
        signatures = [
            signed.signatures[signed.record_chain_index(p)] for p in remaining_positions
        ]
        messages = [
            signed.chain_message(signed.record_chain_index(p)) for p in remaining_positions
        ]
        forged = _replace(
            honest.proof,
            entries=entries,
            signatures=SignatureBundle(
                aggregate=aggregate_signatures(
                    signatures, signed.manifest.public_key, messages
                )
            ),
        )
        with pytest.raises(CompletenessError):
            verifier.verify(query, rows, forged)

    def test_row_omission_without_proof_surgery_rejected(self, world):
        relation, signed, publisher, verifier = world
        keys = relation.keys()
        query = _query(keys[5], keys[12])
        honest = publisher.answer(query)
        with pytest.raises((CompletenessError, VerificationError)):
            verifier.verify(query, honest.rows[:-2], honest.proof)


class TestCase5SpuriousRecords:
    """Case 5: introducing records that the owner never signed."""

    def test_injected_row_rejected(self, world):
        relation, signed, publisher, verifier = world
        keys = relation.keys()
        query = _query(keys[5], keys[10])
        honest = publisher.answer(query)
        fake_row = dict(honest.rows[0])
        fake_row["salary"] = honest.rows[0]["salary"] + 1
        fake_row["name"] = "GHOST"
        rows = [honest.rows[0], fake_row] + honest.rows[1:]
        entries = (
            honest.proof.entries[:1] + (honest.proof.entries[0],) + honest.proof.entries[1:]
        )
        forged = _replace(honest.proof, entries=entries)
        with pytest.raises((CompletenessError, VerificationError)):
            verifier.verify(query, rows, forged)

    def test_value_tampering_rejected(self, world):
        relation, signed, publisher, verifier = world
        keys = relation.keys()
        query = _query(keys[5], keys[10])
        honest = publisher.answer(query)
        rows = [dict(row) for row in honest.rows]
        rows[2]["name"] = "Mallory"
        with pytest.raises((CompletenessError, VerificationError)):
            verifier.verify(query, rows, honest.proof)

    def test_key_tampering_rejected(self, world):
        relation, signed, publisher, verifier = world
        keys = relation.keys()
        query = _query(keys[5], keys[10])
        honest = publisher.answer(query)
        rows = [dict(row) for row in honest.rows]
        rows[2]["salary"] = rows[2]["salary"] + 1
        with pytest.raises((CompletenessError, VerificationError)):
            verifier.verify(query, rows, honest.proof)

    def test_column_swap_rejected(self, world):
        """The introduction's attack: swapping values between two records."""
        relation, signed, publisher, verifier = world
        keys = relation.keys()
        query = _query(keys[5], keys[10])
        honest = publisher.answer(query)
        rows = [dict(row) for row in honest.rows]
        rows[0]["name"], rows[1]["name"] = rows[1]["name"], rows[0]["name"]
        with pytest.raises((CompletenessError, VerificationError)):
            verifier.verify(query, rows, honest.proof)


class TestProofSplicing:
    """Replay and cross-query splicing attacks."""

    def test_signature_bundle_from_other_query_rejected(self, world):
        relation, signed, publisher, verifier = world
        keys = relation.keys()
        query_a = _query(keys[5], keys[10])
        query_b = _query(keys[20], keys[25])
        result_a = publisher.answer(query_a)
        result_b = publisher.answer(query_b)
        forged = _replace(result_a.proof, signatures=result_b.proof.signatures)
        with pytest.raises(CompletenessError):
            verifier.verify(query_a, result_a.rows, forged)

    def test_boundary_from_other_query_rejected(self, world):
        relation, signed, publisher, verifier = world
        keys = relation.keys()
        query_a = _query(keys[5], keys[10])
        query_b = _query(keys[6], keys[10])
        result_a = publisher.answer(query_a)
        result_b = publisher.answer(query_b)
        # Splice query_b's lower boundary (which skips keys[5]) into query_a's proof.
        forged = _replace(
            result_a.proof,
            lower_boundary=result_b.proof.lower_boundary,
            entries=result_b.proof.entries,
            signatures=result_b.proof.signatures,
        )
        with pytest.raises((CompletenessError, VerificationError)):
            verifier.verify(query_a, result_b.rows, forged)

    def test_fresh_proof_required_after_update_for_new_data(self, owner):
        """Updates invalidate the publisher's cached proof material.

        Note the scheme (like the paper) does not provide *freshness*: a proof
        that was valid against an older database version still verifies, since
        the owner's old signatures remain genuine.  What the test pins down is
        that after an update the publisher can immediately produce a valid
        proof for the new state (only three signatures were refreshed) and that
        mixing new rows with the old proof fails.
        """
        relation = generate_employees(20, seed=55, photo_bytes=4)
        signed = owner.publish_relation(relation)
        publisher = Publisher({"employees": signed})
        verifier = ResultVerifier({"employees": signed.manifest})
        keys = relation.keys()
        query = _query(keys[2], keys[8])
        stale = publisher.answer(query)
        new_key = next(
            candidate
            for candidate in range(keys[2] + 1, keys[8])
            if candidate not in keys
        )
        receipt = signed.insert_record(
            {
                "salary": new_key,
                "emp_id": "zzz",
                "name": "NEW",
                "dept": 1,
                "photo": b"",
            }
        )
        assert receipt.signatures_recomputed == 3
        fresh = publisher.answer(query)
        assert len(fresh.rows) == len(stale.rows) + 1
        verifier.verify(query, fresh.rows, fresh.proof)
        # New rows cannot ride on the stale proof.
        with pytest.raises((CompletenessError, VerificationError)):
            verifier.verify(query, fresh.rows, stale.proof)
