"""Tests for update maintenance (Section 6.3), the owner role and the cost model."""

import math

import pytest

from repro.core import cost_model
from repro.core.owner import DataOwner
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.db.btree import BPlusTree
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.schema import KeyDomain
from repro.db.workload import generate_employees, generate_sorted_values


class TestSignedRelationUpdates:
    @pytest.fixture
    def signed(self, owner):
        relation = generate_employees(30, seed=77, photo_bytes=4)
        return owner.publish_relation(relation)

    def _fresh_row(self, signed, salary):
        return {
            "salary": salary,
            "emp_id": "new",
            "name": "NEW",
            "dept": 2,
            "photo": b"n",
        }

    def _unused_salary(self, signed):
        keys = set(signed.relation.keys())
        return next(s for s in range(1, 100_000) if s not in keys)

    def test_insert_touches_three_signatures(self, signed):
        receipt = signed.insert_record(self._fresh_row(signed, self._unused_salary(signed)))
        assert receipt.signatures_recomputed == 3
        assert signed.verify_internal_consistency()

    def test_insert_at_front_touches_at_most_three(self, signed):
        smallest = signed.relation.keys()[0]
        receipt = signed.insert_record(self._fresh_row(signed, smallest - 1))
        assert receipt.signatures_recomputed <= 3
        assert signed.verify_internal_consistency()

    def test_insert_at_back_touches_at_most_three(self, signed):
        largest = signed.relation.keys()[-1]
        receipt = signed.insert_record(self._fresh_row(signed, largest + 1))
        assert receipt.signatures_recomputed <= 3
        assert signed.verify_internal_consistency()

    def test_delete_touches_two_signatures(self, signed):
        victim = signed.relation[10]
        receipt = signed.delete_record(victim)
        assert receipt.signatures_recomputed == 2
        assert signed.verify_internal_consistency()

    def test_update_record(self, signed):
        victim = signed.relation[5]
        receipt = signed.update_record(
            victim, self._fresh_row(signed, self._unused_salary(signed))
        )
        assert receipt.signatures_recomputed <= 5
        assert signed.verify_internal_consistency()

    def test_update_cost_independent_of_table_size(self, owner):
        costs = {}
        for size in (20, 80):
            relation = generate_employees(size, seed=7, photo_bytes=2)
            signed = owner.publish_relation(relation)
            new_salary = next(
                s for s in range(1, 100_000) if s not in set(relation.keys())
            )
            receipt = signed.insert_record(
                {"salary": new_salary, "emp_id": "n", "name": "N", "dept": 1, "photo": b""}
            )
            costs[size] = receipt.signatures_recomputed
        assert costs[20] == costs[80] == 3

    def test_queries_verify_after_update_sequence(self, owner, signature_scheme):
        relation = generate_employees(25, seed=31, photo_bytes=2)
        signed = owner.publish_relation(relation)
        publisher = Publisher({"employees": signed})
        verifier = ResultVerifier({"employees": signed.manifest})
        used = set(relation.keys())
        for step in range(5):
            new_salary = next(s for s in range(1000 * (step + 1), 100_000) if s not in used)
            used.add(new_salary)
            signed.insert_record(
                {"salary": new_salary, "emp_id": f"u{step}", "name": "U", "dept": 1, "photo": b""}
            )
            signed.delete_record(signed.relation[0])
            query = Query("employees")
            result = publisher.answer(query)
            verifier.verify(query, result.rows, result.proof)


class TestSignaturesInBTreeLeaves:
    def test_signatures_colocated_with_leaf_entries(self, owner):
        """Section 6.3: the chain signatures can live inside B+-tree leaves."""
        values = generate_sorted_values(200, KeyDomain(0, 10_000), seed=8)
        published = owner.publish_value_list(values, KeyDomain(0, 10_000))
        tree = BPlusTree(fanout=32)
        for position, value in enumerate(published.values):
            tree.insert(value, position, signature=published.signatures[position + 1])
        assert len(tree) == 200
        sample = published.values[57]
        assert tree.signature_of(sample) == published.signatures[58]

    def test_update_touches_at_most_two_leaves(self, owner):
        values = generate_sorted_values(500, KeyDomain(0, 100_000), seed=8)
        published = owner.publish_value_list(values, KeyDomain(0, 100_000))
        tree = BPlusTree(fanout=64)
        for position, value in enumerate(published.values):
            tree.insert(value, position, signature=published.signatures[position + 1])
        new_value = next(v for v in range(40_000, 100_000) if v not in set(values))
        touched = tree.update_with_signatures(
            new_value, None, lambda left, key, right: hash((left, key, right))
        )
        assert touched <= 2


class TestDataOwner:
    def test_owner_generates_key_when_not_supplied(self):
        owner = DataOwner(key_bits=512)
        assert owner.public_key.bits >= 511

    def test_public_key_matches_scheme(self, owner, signature_scheme):
        assert owner.public_key is signature_scheme.verifier

    def test_publish_database_shares_one_key(self, owner):
        relation = generate_employees(5, seed=1, photo_bytes=2)
        database = owner.publish_database({"a": relation, "b": relation})
        manifests = database.manifests
        assert manifests["a"].public_key is manifests["b"].public_key
        assert "a" in database and "c" not in database

    def test_publish_sort_orders(self, owner):
        from repro.db.workload import generate_customers_and_orders

        _, orders = generate_customers_and_orders(10, 30, seed=9)
        signed_orders = owner.publish_sort_orders(orders, ["customer_id"])
        assert set(signed_orders) == {"customer_id"}
        assert signed_orders["customer_id"].schema.key == "customer_id"

    def test_manifest_carries_scheme_configuration(self, owner):
        relation = generate_employees(5, seed=1, photo_bytes=2)
        signed = owner.publish_relation(relation)
        manifest = signed.manifest
        assert manifest.scheme_kind == "optimized"
        assert manifest.base == 2
        assert manifest.hash_name == "sha256"
        assert manifest.domain.width == 100_000


class TestCostModel:
    def test_table1_defaults(self):
        params = cost_model.CostParameters()
        assert params.c_hash == pytest.approx(50e-6)
        assert params.c_sign == pytest.approx(5e-3)
        assert params.m_digest_bits == 128 and params.m_digest_bytes == 16
        assert params.m_sign_bits == 1024 and params.m_sign_bytes == 128

    def test_digits_m(self):
        assert cost_model.digits_m(2) == 32
        assert cost_model.digits_m(2, 1000) == 10
        assert cost_model.digits_m(10, 1000) == 3
        with pytest.raises(ValueError):
            cost_model.digits_m(1)

    def test_section_6_2_worked_examples(self):
        """Cuser ~ 15.5 ms / 689 ms / 6.81 s for |Q| = 1 / 100 / 1000."""
        examples = cost_model.section_6_2_worked_examples()
        assert examples[1] == pytest.approx(15.5e-3, rel=0.05)
        assert examples[100] == pytest.approx(689e-3, rel=0.05)
        assert examples[1000] == pytest.approx(6.81, rel=0.05)

    def test_traffic_formula_matches_hand_computation(self):
        # m = 32, |Q| = 1: digests = 32 + 4 + 3 + 5 = 44.
        bits = cost_model.user_traffic_bits(1)
        assert bits == 44 * 128 + 1024
        assert cost_model.user_traffic_bytes(1) == bits / 8

    def test_traffic_overhead_decreases_with_result_size(self):
        record = 512
        overheads = [
            cost_model.user_traffic_overhead_percent(size, record)
            for size in (1, 2, 5, 10, 100)
        ]
        assert overheads == sorted(overheads, reverse=True)
        # Figure 9's headline numbers: ~160% at |Q|=1 and well under 50% at |Q|=5.
        assert 140 <= overheads[0] <= 180
        assert overheads[2] < 50

    def test_traffic_overhead_decreases_with_record_size(self):
        overheads = [
            cost_model.user_traffic_overhead_percent(5, record)
            for record in (128, 256, 512, 1024, 2048)
        ]
        assert overheads == sorted(overheads, reverse=True)

    def test_figure9_series_shape(self):
        series = cost_model.figure9_series()
        assert set(series) == {1, 2, 5, 10, 100}
        assert all(len(points) == 7 for points in series.values())
        # Larger results always have lower per-byte overhead.
        assert all(
            series[1][i] > series[100][i] for i in range(len(series[1]))
        )

    def test_figure10_series_shape(self):
        series = cost_model.figure10_series()
        assert set(series) == {1, 5, 10}
        # Computation grows with the result size for every base.
        for column in range(9):
            assert series[1][column] < series[5][column] < series[10][column]

    def test_computation_minimised_at_small_base(self):
        """The paper: dCuser/dB = 0 falls between B=2 and B=3."""
        for result_size in (1, 5, 10, 100):
            assert cost_model.optimal_base(result_size) in (2, 3)

    def test_computation_grows_linearly_with_result_size(self):
        c10 = cost_model.user_computation_seconds(10)
        c100 = cost_model.user_computation_seconds(100)
        c1000 = cost_model.user_computation_seconds(1000)
        slope_low = (c100 - c10) / 90
        slope_high = (c1000 - c100) / 900
        assert slope_low == pytest.approx(slope_high, rel=1e-9)
        assert slope_high > 0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            cost_model.user_traffic_bits(-1)
        with pytest.raises(ValueError):
            cost_model.user_traffic_overhead_percent(0, 512)
        with pytest.raises(ValueError):
            cost_model.user_traffic_overhead_percent(1, 0)
        with pytest.raises(ValueError):
            cost_model.user_computation_seconds(-1)
