"""Wire codec: round trips, canonicality and strict decode validation."""

import pytest

from repro.core.basic_scheme import ListPublisher
from repro.core.proof import (
    GreaterThanProof,
    JoinQueryProof,
    RangeQueryProof,
    SignatureBundle,
)
from repro.core.publisher import Publisher
from repro.core.relational import RelationManifest, UpdateReceipt
from repro.crypto.aggregate import AggregateSignature
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.db.query import (
    Conjunction,
    EqualityCondition,
    JoinQuery,
    Projection,
    Query,
    RangeCondition,
)
from repro.db.schema import KeyDomain
from repro.wire import (
    WireFormatError,
    decode,
    encode,
    from_json,
    manifest_id,
    to_json,
)


@pytest.fixture(scope="module")
def employee_world(employees_100):
    relation, signed = employees_100
    publisher = Publisher({"employees": signed})
    return signed, publisher


def _roundtrip(artifact):
    """Assert binary and JSON round-trip identity; return the wire bytes."""
    blob = encode(artifact)
    decoded = decode(blob)
    assert decoded == artifact
    assert encode(decoded) == blob, "re-encoding must be canonical"
    assert from_json(to_json(artifact)) == artifact
    return blob


# -- round trips over real publisher output ----------------------------------


def test_range_proof_roundtrip(employee_world, figure1_verifier):
    signed, publisher = employee_world
    query = Query(
        "employees",
        Conjunction(
            (
                RangeCondition("salary", 20_000, 70_000),
                EqualityCondition("dept", 1),
            )
        ),
        Projection(("name", "salary"), distinct=False),
    )
    result = publisher.answer(query)
    assert result.proof is not None
    blob = _roundtrip(result.proof)
    assert isinstance(decode(blob, expect=RangeQueryProof), RangeQueryProof)


def test_distinct_projection_proof_roundtrip(owner):
    from repro.db.relation import Relation
    from repro.db.workload import employee_schema

    # Duplicate keys with identical projected values: DISTINCT eliminates.
    rows = [
        {"salary": 1000, "emp_id": "0", "name": "same", "dept": 1, "photo": b""},
        {"salary": 1000, "emp_id": "1", "name": "same", "dept": 1, "photo": b""},
        {"salary": 2000, "emp_id": "2", "name": "other", "dept": 2, "photo": b""},
    ]
    relation = Relation.from_rows(employee_schema(), rows)
    signed = owner.publish_relation(relation)
    publisher = Publisher({"employees": signed})
    query = Query(
        "employees",
        Conjunction((RangeCondition("salary", None, None),)),
        Projection(("name", "dept"), distinct=True),
    )
    result = publisher.answer(query)
    assert any(
        getattr(entry, "eliminated_duplicate", False)
        for entry in result.proof.entries
    ), "the DISTINCT query should eliminate duplicates"
    _roundtrip(result.proof)


def test_empty_range_proof_roundtrip(employee_world):
    signed, publisher = employee_world
    domain = signed.domain
    taken = {record.key for record in signed.relation}
    gap = next(
        value
        for value in range(domain.lower + 1, domain.upper)
        if value not in taken and value + 1 not in taken
    )
    query = Query(
        "employees", Conjunction((RangeCondition("salary", gap, gap),))
    )
    result = publisher.answer(query)
    assert result.proof.outer_neighbor_digest is not None or result.proof.entries
    _roundtrip(result.proof)


def test_join_proof_roundtrip(customers_orders):
    _, _, database = customers_orders
    publisher = Publisher(database.relations)
    join = JoinQuery("orders", "customers", "customer_id", "customer_id")
    result = publisher.answer_join(join)
    blob = _roundtrip(result.proof)
    assert isinstance(decode(blob, expect=JoinQueryProof), JoinQueryProof)


def test_greater_than_proof_roundtrip(owner):
    published = owner.publish_value_list(
        [2000, 3500, 8010, 12100, 25000], KeyDomain(0, 100_000)
    )
    publisher = ListPublisher(published)
    _result, proof = publisher.answer_greater_than(10_000)
    blob = _roundtrip(proof)
    assert isinstance(decode(blob, expect=GreaterThanProof), GreaterThanProof)


def test_manifest_and_receipt_roundtrip(employee_world):
    signed, _ = employee_world
    manifest = signed.manifest
    blob = _roundtrip(manifest)
    decoded = decode(blob, expect=RelationManifest)
    assert manifest_id(decoded) == manifest_id(manifest)

    receipt = UpdateReceipt(
        signatures_recomputed=3,
        digests_recomputed=1,
        entries_affected=(4, 5, 6),
        chain_messages_recomputed=3,
    )
    _roundtrip(receipt)


def test_query_artifacts_roundtrip():
    query = Query(
        "employees",
        Conjunction(
            (
                RangeCondition("salary", 10, None),
                RangeCondition("salary", None, 99),
                EqualityCondition("name", "Alice"),
                EqualityCondition("flag", True),
                EqualityCondition("score", 1.5),
                EqualityCondition("blob", b"\x00\xff"),
                EqualityCondition("missing", None),
            )
        ),
        Projection(("salary", "name"), distinct=True),
    )
    _roundtrip(query)
    join = JoinQuery(
        "orders",
        "customers",
        "customer_id",
        "customer_id",
        Conjunction((RangeCondition("customer_id", 1, 10),)),
        Projection(),
    )
    _roundtrip(join)


def test_crypto_artifacts_roundtrip():
    tree = MerkleTree([b"a", b"b", b"c", b"d", b"e"])
    proof = tree.prove(3)
    assert isinstance(proof, MerkleProof)
    _roundtrip(proof)
    aggregate = AggregateSignature(value=0xDEADBEEF, count=4)
    _roundtrip(aggregate)
    _roundtrip(SignatureBundle(aggregate=aggregate))
    _roundtrip(SignatureBundle(individual=(1, 2, 3)))


def test_verification_of_decoded_proof(employee_world, customers_orders):
    """A proof that crossed the wire verifies exactly like the original."""
    signed, publisher = employee_world
    from repro.core.verifier import ResultVerifier

    verifier = ResultVerifier({"employees": signed.manifest})
    query = Query(
        "employees", Conjunction((RangeCondition("salary", 30_000, 60_000),))
    )
    result = publisher.answer(query)
    decoded = decode(encode(result.proof))
    report = verifier.verify(query, result.rows, decoded)
    assert report.result_rows == len(result.rows)


# -- strict decode validation -------------------------------------------------


def _expect_reject(data: bytes, reason: str = None):
    with pytest.raises(WireFormatError) as excinfo:
        decode(data)
    if reason is not None:
        assert excinfo.value.reason == reason


def test_decode_rejects_bad_magic():
    blob = encode(UpdateReceipt(0, 0, (), 0))
    _expect_reject(b"XX" + blob[2:], "bad-magic")


def test_decode_rejects_bad_version():
    blob = encode(UpdateReceipt(0, 0, (), 0))
    _expect_reject(blob[:2] + b"\x7f" + blob[3:], "bad-version")


def test_decode_rejects_unknown_tag():
    blob = encode(UpdateReceipt(0, 0, (), 0))
    _expect_reject(blob[:3] + b"\xee" + blob[4:], "bad-tag")


def test_decode_rejects_truncation_and_trailing_bytes():
    blob = encode(UpdateReceipt(2, 1, (3, 4), 2))
    for cut in range(len(blob)):
        with pytest.raises(WireFormatError):
            decode(blob[:cut])
    _expect_reject(blob + b"\x00", "trailing-bytes")


def test_decode_rejects_type_mismatch():
    blob = encode(UpdateReceipt(0, 0, (), 0))
    with pytest.raises(WireFormatError) as excinfo:
        decode(blob, expect=RangeQueryProof)
    assert excinfo.value.reason == "unexpected-artifact"


def test_decode_rejects_invalid_artifact_state():
    # An aggregate count of zero can never be produced by the encoder.
    blob = encode(AggregateSignature(value=5, count=1))
    # The final field is the count integer: 4-byte length, sign byte, magnitude.
    tampered = blob[:-1] + b"\x00"
    _expect_reject(tampered, "invalid-artifact")


def test_decode_rejects_non_minimal_int():
    blob = encode(AggregateSignature(value=5, count=1))
    # Grow the count's magnitude with a leading zero byte: 01 -> 00 01.
    tampered = blob[:-6] + b"\x00\x00\x00\x03\x00\x00\x01"
    _expect_reject(tampered)


def test_json_rejects_garbage():
    with pytest.raises(WireFormatError):
        from_json("not json at all")
    with pytest.raises(WireFormatError):
        from_json('{"format": "repro-wire-json/1", "type": "Nope", "body": {}}')
    with pytest.raises(WireFormatError):
        from_json('{"format": "repro-wire-json/9", "type": "Query", "body": {}}')


def test_manifest_id_distinguishes_relations(customers_orders):
    _, _, database = customers_orders
    ids = {
        name: manifest_id(signed.manifest)
        for name, signed in database.relations.items()
    }
    assert len(set(ids.values())) == len(ids)
    for identifier in ids.values():
        assert len(identifier) == 32


def test_frame_type_peeks_without_decoding():
    """The envelope peek names the artifact class from four bytes."""
    from repro.wire import frame_type

    blob = encode(AggregateSignature(value=5, count=1))
    assert frame_type(blob) is AggregateSignature
    # The body may be arbitrarily truncated or corrupt — the envelope peek
    # never touches it.
    assert frame_type(blob[:4] + b"\xff") is AggregateSignature
    with pytest.raises(WireFormatError):
        frame_type(b"XX\x02\x04")  # bad magic
    with pytest.raises(WireFormatError):
        frame_type(blob[:3] + b"\xee")  # unknown tag


def test_peek_leading_fields_is_lazy_and_zero_copy():
    """A router can read a leading manifest id without materialising the VO."""
    from repro.service.protocol import QueryRequest
    from repro.db.query import Conjunction, Query
    from repro.wire import peek_leading_fields

    request = QueryRequest(
        manifest_id=b"\x07" * 32, query=Query("employees", Conjunction())
    )
    blob = encode(request)
    assert peek_leading_fields(blob, 1) == (b"\x07" * 32,)
    # Works on a memoryview over a receive buffer, without copying the frame.
    assert peek_leading_fields(memoryview(bytearray(blob)), 1) == (b"\x07" * 32,)
    # Peeking past the registered fields is a typed error.
    with pytest.raises(WireFormatError):
        peek_leading_fields(blob, 99)
