"""The consolidated configuration/client API: configs, shims, QuerySpec.

Three api_redesign contracts live here:

* :class:`~repro.service.ServerConfig` / :class:`~repro.service.StorageConfig`
  are frozen, validate on construction, and are the one way tunables reach
  :class:`~repro.service.PublicationServer` and
  :func:`~repro.storage.open_publication_storage`;
* the historical keyword arguments still work for one release through a shim
  that emits :class:`DeprecationWarning` (and legacy kwargs override the
  matching ``config`` field when both are passed);
* :class:`~repro.service.QuerySpec` is the single value object behind
  ``query`` / ``query_many`` / ``query_join`` — the legacy methods are thin
  delegates, asserted equivalent down to the verified rows and manifest
  attribution.
"""

import dataclasses

import pytest

from repro.db.query import Conjunction, JoinQuery, Query, RangeCondition
from repro.service import (
    PublicationServer,
    QuerySpec,
    ServerConfig,
    StorageConfig,
    VerifyingClient,
    build_demo_world,
)
from repro.storage import open_publication_storage

SALARY_RANGE = Query(
    "employees", Conjunction((RangeCondition("salary", 20_000, 60_000),))
)
ORDERS_JOIN = JoinQuery("orders", "customers", "customer_id", "customer_id")


@pytest.fixture(scope="module")
def demo_world():
    return build_demo_world(key_bits=512, seed=11)


@pytest.fixture(scope="module")
def live_server(demo_world):
    with PublicationServer(
        demo_world.router, config=ServerConfig(max_workers=4)
    ) as server:
        yield server


@pytest.fixture()
def client(live_server):
    host, port = live_server.address
    with VerifyingClient(host, port) as active:
        yield active


# -- config validation ---------------------------------------------------------


def test_server_config_validates_on_construction():
    with pytest.raises(ValueError):
        ServerConfig(port=70_000)
    with pytest.raises(ValueError):
        ServerConfig(max_workers=0)
    with pytest.raises(ValueError):
        ServerConfig(worker_processes=-1)
    with pytest.raises(ValueError):
        ServerConfig(max_pipelined_frames=0)


def test_storage_config_validates_on_construction():
    with pytest.raises(ValueError):
        StorageConfig(backend="postgres")
    with pytest.raises(ValueError):
        StorageConfig(fsync="sometimes")
    with pytest.raises(ValueError):
        StorageConfig(checkpoint_every=-1)


def test_configs_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        ServerConfig().max_workers = 3
    with pytest.raises(dataclasses.FrozenInstanceError):
        StorageConfig().backend = "sqlite"


def test_with_overrides_revalidates():
    base = ServerConfig(max_workers=2)
    assert base.with_overrides(max_workers=5).max_workers == 5
    assert base.max_workers == 2, "with_overrides must not mutate the original"
    with pytest.raises(ValueError):
        base.with_overrides(max_workers=0)
    storage = StorageConfig()
    assert storage.with_overrides(backend="sqlite").backend == "sqlite"
    with pytest.raises(ValueError):
        storage.with_overrides(fsync="maybe")


# -- the legacy-kwarg shim -----------------------------------------------------


def test_legacy_server_kwargs_warn_but_work(demo_world):
    with pytest.warns(DeprecationWarning, match="ServerConfig"):
        server = PublicationServer(demo_world.router, max_workers=2)
    try:
        assert server.config.max_workers == 2
        server.start()
        host, port = server.address
        with VerifyingClient(host, port) as active:
            assert "employees" in active.relations()
    finally:
        server.stop()


def test_legacy_kwargs_override_config_fields(demo_world):
    with pytest.warns(DeprecationWarning):
        server = PublicationServer(
            demo_world.router,
            config=ServerConfig(max_workers=4, response_cache=False),
            max_workers=2,
        )
    try:
        assert server.config.max_workers == 2
        assert server.config.response_cache is False
    finally:
        server.stop()


def test_config_only_construction_is_warning_free(demo_world, recwarn):
    server = PublicationServer(demo_world.router, config=ServerConfig(max_workers=2))
    try:
        assert not [w for w in recwarn if w.category is DeprecationWarning]
    finally:
        server.stop()


# -- StorageConfig consumption -------------------------------------------------


def test_storage_config_drives_open_publication_storage(tmp_path, demo_world):
    config = StorageConfig(
        root=str(tmp_path / "pub"),
        backend="sqlite",
        fsync="off",
        checkpoint_every=3,
    )
    router, storage = open_publication_storage(
        "", lambda: demo_world.router, config=config
    )
    try:
        assert storage.backend == "sqlite"
        assert storage.fsync_policy == "off"
        assert storage.checkpoint_every == 3
        assert storage.root == config.root
        assert "employees" in dict(router.listing())
    finally:
        storage.close()


# -- QuerySpec -----------------------------------------------------------------


def test_query_spec_rejects_non_queries():
    with pytest.raises(TypeError):
        QuerySpec(query="employees")


def test_query_spec_constructors():
    ranged = QuerySpec.range("employees", "salary", 1, 9, role="hr")
    assert not ranged.is_join and ranged.role == "hr"
    point = QuerySpec.point("employees", "salary", 5)
    (condition,) = point.query.where.conditions
    assert (condition.low, condition.high) == (5, 5)
    join = QuerySpec.join(ORDERS_JOIN)
    assert join.is_join


def test_query_delegates_match_execute(client):
    via_method = client.query(SALARY_RANGE)
    via_spec = client.execute(QuerySpec(query=SALARY_RANGE))
    assert via_method.rows == via_spec.rows
    assert via_method.manifest_id == via_spec.manifest_id
    assert via_method.report.result_rows == via_spec.report.result_rows


def test_query_many_delegates_match_execute_many(client):
    queries = [SALARY_RANGE, Query("employees", Conjunction((RangeCondition("salary", 50_000, None),)))]
    via_method = client.query_many(queries)
    via_spec = client.execute_many([QuerySpec(query=query) for query in queries])
    assert [r.rows for r in via_method] == [r.rows for r in via_spec]
    assert [r.manifest_id for r in via_method] == [r.manifest_id for r in via_spec]


def test_query_join_delegates_match_execute(client):
    via_method = client.query_join(ORDERS_JOIN)
    via_spec = client.execute(QuerySpec.join(ORDERS_JOIN))
    assert via_method.rows == via_spec.rows
    assert via_method.left_manifest_id == via_spec.left_manifest_id
    assert via_method.right_manifest_id == via_spec.right_manifest_id


def test_execute_many_rejects_joins_and_mixed_options(client):
    with pytest.raises(ValueError, match="joins"):
        client.execute_many([QuerySpec.join(ORDERS_JOIN)])
    with pytest.raises(ValueError, match="share"):
        client.execute_many(
            [QuerySpec(query=SALARY_RANGE), QuerySpec(query=SALARY_RANGE, verify=False)]
        )
    assert client.execute_many([]) == []
