"""Stateful (Hypothesis) harness for the live-update pipeline.

A :class:`~hypothesis.stateful.RuleBasedStateMachine` drives a random
interleaving of inserts, deletes, updates and queries against a *live*
:class:`~repro.service.server.PublicationServer`, with a shadow in-memory
model alongside.  Invariants checked on every step:

* every verified answer equals the shadow model's answer **at the manifest
  version the client held** (the :attr:`VerifiedResult.manifest_sequence` the
  client reports must be the version whose rows it returned);
* the client's pinned manifest follows rotations only through the
  authenticated refresh path (key continuity + rotation signature + strictly
  increasing sequence);
* rejected mutations (duplicate inserts, deletes of absent records) are typed
  errors and leave both the server and the model untouched;
* a replay adversary (an in-path proxy serving captured pre-rotation answers
  re-stamped to the current manifest id) is always refused by the
  freshness-enforcing client with a typed :class:`StaleAnswerError`, while
  the genuine attested path keeps serving.

The machine talks to the server over real sockets; nothing reaches into
publisher state except the final owner-side self-check.
"""

import socket
import threading
from collections import Counter
from dataclasses import replace

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

pytestmark = pytest.mark.concurrency

from repro.core.owner import DataOwner
from repro.core.publisher import Publisher
from repro.crypto.signature import rsa_scheme
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.relation import Relation
from repro.db.schema import Attribute, AttributeType, KeyDomain, Schema
from repro.service import (
    FreshnessPolicy,
    OwnerClient,
    PublicationServer,
    RecordDelta,
    RemoteError,
    ServerConfig,
    ShardRouter,
    StaleAnswerError,
    VerifyingClient,
)
from repro.service.protocol import QueryRequest, QueryResponse, recv_frame, send_message
from repro.wire import decode, encode, manifest_id

#: One shared key pair for every machine instance: RSA generation dominates
#: run time and exercises no additional update-pipeline code.
_SCHEME = rsa_scheme(bits=512)

_DOMAIN = KeyDomain(0, 1024)

_SCHEMA = Schema.build(
    "items",
    [
        Attribute("k", AttributeType.INTEGER, _DOMAIN),
        Attribute("label", AttributeType.STRING, size_hint=8),
    ],
    key="k",
)

_KEYS = st.integers(min_value=1, max_value=1023)
_LABELS = st.text(alphabet="abcdef", min_size=1, max_size=4)


def _row(key: int, label: str):
    return {"k": key, "label": label}


_FULL_RANGE = Query("items", Conjunction((RangeCondition("k", 1, 1023),)))


def _read_exact(sock, count):
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _read_frame(sock):
    header = _read_exact(sock, 4)
    if header is None:
        return None
    return _read_exact(sock, int.from_bytes(header, "big"))


class _ReplayAdversary(threading.Thread):
    """An in-path proxy: transparent normally, but while ``stale_frame`` is
    set it substitutes that captured answer for every query response."""

    def __init__(self, upstream):
        super().__init__(daemon=True)
        self.upstream = upstream
        self.stale_frame = None
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.listener.settimeout(0.2)
        self.address = self.listener.getsockname()
        self._stopping = threading.Event()

    def run(self):
        while not self._stopping.is_set():
            try:
                conn, _ = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                with conn, socket.create_connection(
                    self.upstream, timeout=10
                ) as up:
                    while True:
                        frame = _read_frame(conn)
                        if frame is None:
                            break
                        up.sendall(len(frame).to_bytes(4, "big") + frame)
                        reply = _read_frame(up)
                        if reply is None:
                            break
                        stale = self.stale_frame
                        if stale is not None and isinstance(
                            decode(reply), QueryResponse
                        ):
                            reply = stale
                        conn.sendall(len(reply).to_bytes(4, "big") + reply)
            except OSError:
                continue

    def stop(self):
        self._stopping.set()
        self.join(timeout=5)
        self.listener.close()


class LiveUpdateMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.server = None
        self.owner_client = None
        self.client = None
        self.fresh_client = None
        self.adversary = None
        self.captured = []

    @initialize(
        seed_rows=st.lists(
            st.tuples(_KEYS, _LABELS), min_size=0, max_size=6, unique_by=lambda t: t
        )
    )
    def start_world(self, seed_rows):
        owner = DataOwner(signature_scheme=_SCHEME)
        relation = Relation.from_rows(
            _SCHEMA, [_row(k, label) for k, label in seed_rows]
        )
        database = owner.publish_database({"items": relation})
        router = ShardRouter({"shard": Publisher(database.relations)})
        self.server = PublicationServer(router, config=ServerConfig(max_workers=4))
        host, port = self.server.start()
        self.owner_client = OwnerClient(host, port, _SCHEME)
        # The genesis manifest arrives through the "authenticated channel":
        # rotations must chain from it via the trust-root policy.
        self.client = VerifyingClient(
            host, port, trusted_manifests=dict(database.manifests)
        )
        # The replay adversary sits between the freshness-enforcing client
        # and the server; the owner attests once, rotations re-stamp.
        self.owner_client.attest("items", lifetime=3600.0)
        self.adversary = _ReplayAdversary((host, port))
        self.adversary.start()
        self.fresh_client = VerifyingClient(
            self.adversary.address[0],
            self.adversary.address[1],
            trusted_manifests=dict(database.manifests),
            freshness=FreshnessPolicy(max_staleness=3600.0),
        )
        #: Captured (version, raw answer frame) pairs for later replay.
        self.captured = []
        # Shadow model: multiset of (key, label) rows, plus the data version.
        self.model = Counter((k, label) for k, label in seed_rows)
        self.version = 0

    def teardown(self):
        if self.owner_client is not None:
            self.owner_client.close()
        if self.client is not None:
            self.client.close()
        if getattr(self, "fresh_client", None) is not None:
            self.fresh_client.close()
        if getattr(self, "adversary", None) is not None:
            self.adversary.stop()
        if self.server is not None:
            self.server.stop()

    # -- helpers -------------------------------------------------------------

    def _model_rows(self, low, high):
        # Rows are compared sorted by (key, label): the chain fixes the key
        # order, but the order *among* records sharing a key is an
        # implementation detail (inserts land before existing equal keys),
        # which the model must not over-specify.
        expanded = [
            {"k": k, "label": label}
            for (k, label), copies in self.model.items()
            for _ in range(copies)
        ]
        return sorted(
            (row for row in expanded if low <= row["k"] <= high),
            key=lambda row: (row["k"], row["label"]),
        )

    # -- mutations -----------------------------------------------------------

    @precondition(lambda self: self.server is not None)
    @rule(key=_KEYS, label=_LABELS)
    def insert(self, key, label):
        if self.model[(key, label)]:
            # Exact duplicate: must be refused, atomically.
            with pytest.raises(RemoteError) as excinfo:
                self.owner_client.insert("items", _row(key, label))
            assert excinfo.value.code == "UpdateApplicationError"
            return
        receipt = self.owner_client.insert("items", _row(key, label))
        assert receipt.digests_recomputed == 1
        self.model[(key, label)] += 1
        self.version += 1

    @precondition(lambda self: self.server is not None)
    @rule(data=st.data())
    def delete(self, data):
        if not self.model:
            return
        key, label = data.draw(
            st.sampled_from(sorted(self.model)), label="victim"
        )
        receipt = self.owner_client.delete("items", _row(key, label))
        assert receipt.digests_recomputed == 0
        self.model[(key, label)] -= 1
        if not self.model[(key, label)]:
            del self.model[(key, label)]
        self.version += 1

    @precondition(lambda self: self.server is not None)
    @rule(data=st.data(), new_key=_KEYS, new_label=_LABELS)
    def update(self, data, new_key, new_label):
        if not self.model:
            return
        old_key, old_label = data.draw(
            st.sampled_from(sorted(self.model)), label="target"
        )
        if (new_key, new_label) != (old_key, old_label) and self.model[
            (new_key, new_label)
        ]:
            return  # replacement would collide; covered by the insert rule
        if (new_key, new_label) == (old_key, old_label):
            return  # replacing a record with itself is a duplicate insert
        self.owner_client.update(
            "items", _row(old_key, old_label), _row(new_key, new_label)
        )
        self.model[(old_key, old_label)] -= 1
        if not self.model[(old_key, old_label)]:
            del self.model[(old_key, old_label)]
        self.model[(new_key, new_label)] += 1
        self.version += 2

    @precondition(lambda self: self.server is not None)
    @rule(data=st.data())
    def delete_absent_is_refused(self, data):
        key = data.draw(_KEYS, label="absent key")
        label = data.draw(_LABELS, label="absent label")
        if self.model[(key, label)]:
            return
        with pytest.raises(RemoteError) as excinfo:
            self.owner_client.delete("items", _row(key, label))
        assert excinfo.value.code == "UpdateApplicationError"

    # -- queries -------------------------------------------------------------

    @precondition(lambda self: self.server is not None)
    @rule(bounds=st.tuples(_KEYS, _KEYS))
    def query_range(self, bounds):
        low, high = min(bounds), max(bounds)
        query = Query("items", Conjunction((RangeCondition("k", low, high),)))
        result = self.client.query(query)
        # The answer is attributed to the manifest version the client held —
        # which, after the transparent rotation refresh, is the current one.
        assert result.manifest_sequence == self.version
        got = sorted(
            ({"k": row["k"], "label": row["label"]} for row in result.rows),
            key=lambda row: (row["k"], row["label"]),
        )
        assert got == self._model_rows(low, high)
        if result.proof is not None:
            assert result.report is not None

    # -- the replay adversary ------------------------------------------------

    @precondition(lambda self: self.server is not None)
    @rule()
    def capture_answer(self):
        """The adversary records a genuine, attested answer off the wire."""
        current = manifest_id(self.owner_client.manifest("items"))
        with socket.create_connection(self.server.address, timeout=10) as sock:
            send_message(
                sock, QueryRequest(manifest_id=current, query=_FULL_RANGE)
            )
            frame = recv_frame(sock)
        assert isinstance(decode(frame), QueryResponse)
        self.captured.append((self.version, frame))
        del self.captured[:-8]

    @precondition(lambda self: self.server is not None)
    @rule()
    def refresh_attestation(self):
        attestation = self.owner_client.attest("items", lifetime=3600.0)
        assert attestation.sequence == self.version

    @precondition(
        lambda self: self.captured
        and self.captured[0][0] < self.version
    )
    @rule()
    def stale_replay_is_refused(self):
        """Serving a captured pre-rotation answer under the *current* id must
        raise a typed StaleAnswerError — and only while the adversary is in
        the path; the genuine attested answer then still serves."""
        _, frame = next(
            (v, f) for v, f in self.captured if v < self.version
        )
        current = manifest_id(self.owner_client.manifest("items"))
        doctored = replace(decode(frame), manifest_id=current)
        self.adversary.stale_frame = encode(doctored)
        try:
            with pytest.raises(StaleAnswerError) as excinfo:
                self.fresh_client.query(_FULL_RANGE)
            # The captured attestation binds the pre-rotation manifest
            # (mismatch); a pre-attestation capture carries none at all.
            assert excinfo.value.reason in (
                "no-attestation",
                "attestation-mismatch",
                "attestation-regressed",
            )
        finally:
            self.adversary.stale_frame = None
        result = self.fresh_client.query(_FULL_RANGE)
        assert result.attestation is not None
        assert result.manifest_sequence == self.version

    # -- invariants ----------------------------------------------------------

    @invariant()
    def rotations_never_regress(self):
        if self.client is None:
            return
        observed = self.client.rotations_observed.get("items")
        if observed is not None:
            assert observed <= self.version


LiveUpdateMachine.TestCase.settings = settings(
    max_examples=6,
    stateful_step_count=18,
    deadline=None,
    print_blob=True,
)

TestLiveUpdates = LiveUpdateMachine.TestCase


def test_final_state_verifies_internally():
    """One scripted run whose final owner-side self-check must pass."""
    owner = DataOwner(signature_scheme=_SCHEME)
    relation = Relation.from_rows(_SCHEMA, [_row(5, "a"), _row(9, "b")])
    database = owner.publish_database({"items": relation})
    signed = database["items"]
    router = ShardRouter({"shard": Publisher(database.relations)})
    with PublicationServer(router) as server:
        host, port = server.address
        with OwnerClient(host, port, _SCHEME) as owner_client:
            owner_client.insert("items", _row(7, "c"))
            owner_client.update("items", _row(5, "a"), _row(5, "z"))
            owner_client.delete("items", _row(9, "b"))
    assert signed.version == 4
    assert signed.verify_internal_consistency()
