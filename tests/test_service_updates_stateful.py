"""Stateful (Hypothesis) harness for the live-update pipeline.

A :class:`~hypothesis.stateful.RuleBasedStateMachine` drives a random
interleaving of inserts, deletes, updates and queries against a *live*
:class:`~repro.service.server.PublicationServer`, with a shadow in-memory
model alongside.  Invariants checked on every step:

* every verified answer equals the shadow model's answer **at the manifest
  version the client held** (the :attr:`VerifiedResult.manifest_sequence` the
  client reports must be the version whose rows it returned);
* the client's pinned manifest follows rotations only through the
  authenticated refresh path (key continuity + rotation signature + strictly
  increasing sequence);
* rejected mutations (duplicate inserts, deletes of absent records) are typed
  errors and leave both the server and the model untouched.

The machine talks to the server over real sockets; nothing reaches into
publisher state except the final owner-side self-check.
"""

from collections import Counter

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

pytestmark = pytest.mark.concurrency

from repro.core.owner import DataOwner
from repro.core.publisher import Publisher
from repro.crypto.signature import rsa_scheme
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.relation import Relation
from repro.db.schema import Attribute, AttributeType, KeyDomain, Schema
from repro.service import (
    OwnerClient,
    PublicationServer,
    RecordDelta,
    RemoteError,
    ServerConfig,
    ShardRouter,
    VerifyingClient,
)

#: One shared key pair for every machine instance: RSA generation dominates
#: run time and exercises no additional update-pipeline code.
_SCHEME = rsa_scheme(bits=512)

_DOMAIN = KeyDomain(0, 1024)

_SCHEMA = Schema.build(
    "items",
    [
        Attribute("k", AttributeType.INTEGER, _DOMAIN),
        Attribute("label", AttributeType.STRING, size_hint=8),
    ],
    key="k",
)

_KEYS = st.integers(min_value=1, max_value=1023)
_LABELS = st.text(alphabet="abcdef", min_size=1, max_size=4)


def _row(key: int, label: str):
    return {"k": key, "label": label}


class LiveUpdateMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.server = None
        self.owner_client = None
        self.client = None

    @initialize(
        seed_rows=st.lists(
            st.tuples(_KEYS, _LABELS), min_size=0, max_size=6, unique_by=lambda t: t
        )
    )
    def start_world(self, seed_rows):
        owner = DataOwner(signature_scheme=_SCHEME)
        relation = Relation.from_rows(
            _SCHEMA, [_row(k, label) for k, label in seed_rows]
        )
        database = owner.publish_database({"items": relation})
        router = ShardRouter({"shard": Publisher(database.relations)})
        self.server = PublicationServer(router, config=ServerConfig(max_workers=4))
        host, port = self.server.start()
        self.owner_client = OwnerClient(host, port, _SCHEME)
        # The genesis manifest arrives through the "authenticated channel":
        # rotations must chain from it via the trust-root policy.
        self.client = VerifyingClient(
            host, port, trusted_manifests=dict(database.manifests)
        )
        # Shadow model: multiset of (key, label) rows, plus the data version.
        self.model = Counter((k, label) for k, label in seed_rows)
        self.version = 0

    def teardown(self):
        if self.owner_client is not None:
            self.owner_client.close()
        if self.client is not None:
            self.client.close()
        if self.server is not None:
            self.server.stop()

    # -- helpers -------------------------------------------------------------

    def _model_rows(self, low, high):
        # Rows are compared sorted by (key, label): the chain fixes the key
        # order, but the order *among* records sharing a key is an
        # implementation detail (inserts land before existing equal keys),
        # which the model must not over-specify.
        expanded = [
            {"k": k, "label": label}
            for (k, label), copies in self.model.items()
            for _ in range(copies)
        ]
        return sorted(
            (row for row in expanded if low <= row["k"] <= high),
            key=lambda row: (row["k"], row["label"]),
        )

    # -- mutations -----------------------------------------------------------

    @precondition(lambda self: self.server is not None)
    @rule(key=_KEYS, label=_LABELS)
    def insert(self, key, label):
        if self.model[(key, label)]:
            # Exact duplicate: must be refused, atomically.
            with pytest.raises(RemoteError) as excinfo:
                self.owner_client.insert("items", _row(key, label))
            assert excinfo.value.code == "UpdateApplicationError"
            return
        receipt = self.owner_client.insert("items", _row(key, label))
        assert receipt.digests_recomputed == 1
        self.model[(key, label)] += 1
        self.version += 1

    @precondition(lambda self: self.server is not None)
    @rule(data=st.data())
    def delete(self, data):
        if not self.model:
            return
        key, label = data.draw(
            st.sampled_from(sorted(self.model)), label="victim"
        )
        receipt = self.owner_client.delete("items", _row(key, label))
        assert receipt.digests_recomputed == 0
        self.model[(key, label)] -= 1
        if not self.model[(key, label)]:
            del self.model[(key, label)]
        self.version += 1

    @precondition(lambda self: self.server is not None)
    @rule(data=st.data(), new_key=_KEYS, new_label=_LABELS)
    def update(self, data, new_key, new_label):
        if not self.model:
            return
        old_key, old_label = data.draw(
            st.sampled_from(sorted(self.model)), label="target"
        )
        if (new_key, new_label) != (old_key, old_label) and self.model[
            (new_key, new_label)
        ]:
            return  # replacement would collide; covered by the insert rule
        if (new_key, new_label) == (old_key, old_label):
            return  # replacing a record with itself is a duplicate insert
        self.owner_client.update(
            "items", _row(old_key, old_label), _row(new_key, new_label)
        )
        self.model[(old_key, old_label)] -= 1
        if not self.model[(old_key, old_label)]:
            del self.model[(old_key, old_label)]
        self.model[(new_key, new_label)] += 1
        self.version += 2

    @precondition(lambda self: self.server is not None)
    @rule(data=st.data())
    def delete_absent_is_refused(self, data):
        key = data.draw(_KEYS, label="absent key")
        label = data.draw(_LABELS, label="absent label")
        if self.model[(key, label)]:
            return
        with pytest.raises(RemoteError) as excinfo:
            self.owner_client.delete("items", _row(key, label))
        assert excinfo.value.code == "UpdateApplicationError"

    # -- queries -------------------------------------------------------------

    @precondition(lambda self: self.server is not None)
    @rule(bounds=st.tuples(_KEYS, _KEYS))
    def query_range(self, bounds):
        low, high = min(bounds), max(bounds)
        query = Query("items", Conjunction((RangeCondition("k", low, high),)))
        result = self.client.query(query)
        # The answer is attributed to the manifest version the client held —
        # which, after the transparent rotation refresh, is the current one.
        assert result.manifest_sequence == self.version
        got = sorted(
            ({"k": row["k"], "label": row["label"]} for row in result.rows),
            key=lambda row: (row["k"], row["label"]),
        )
        assert got == self._model_rows(low, high)
        if result.proof is not None:
            assert result.report is not None

    # -- invariants ----------------------------------------------------------

    @invariant()
    def rotations_never_regress(self):
        if self.client is None:
            return
        observed = self.client.rotations_observed.get("items")
        if observed is not None:
            assert observed <= self.version


LiveUpdateMachine.TestCase.settings = settings(
    max_examples=6,
    stateful_step_count=18,
    deadline=None,
    print_blob=True,
)

TestLiveUpdates = LiveUpdateMachine.TestCase


def test_final_state_verifies_internally():
    """One scripted run whose final owner-side self-check must pass."""
    owner = DataOwner(signature_scheme=_SCHEME)
    relation = Relation.from_rows(_SCHEMA, [_row(5, "a"), _row(9, "b")])
    database = owner.publish_database({"items": relation})
    signed = database["items"]
    router = ShardRouter({"shard": Publisher(database.relations)})
    with PublicationServer(router) as server:
        host, port = server.address
        with OwnerClient(host, port, _SCHEME) as owner_client:
            owner_client.insert("items", _row(7, "c"))
            owner_client.update("items", _row(5, "a"), _row(5, "z"))
            owner_client.delete("items", _row(9, "b"))
    assert signed.version == 4
    assert signed.verify_internal_consistency()
