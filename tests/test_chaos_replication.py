"""The network-chaos matrix over a live replica group (``pytest -m chaos``).

Real server processes — one durable primary, two ``--replicate-from``
replicas — under the faults the replication design exists to survive:

* **SIGKILL any replica.**  The group keeps answering verified reads through
  the :class:`FailoverClient` (bounded unavailability), and the restarted
  replica catches up to byte-identical answer frames.
* **Partition the primary mid-batch.**  A ``partition-down`` chaos fault
  swallows an update's acknowledgement *after* the primary applied it — the
  lost-ack case.  Resubmitting the identical pre-signed stream completes it
  without duplicating the half-acked update: zero lost acked updates, zero
  doubled ones.
* **Trickle-feed a replica.**  A hedged read races a healthy endpoint once
  the slow one outlives the hedge deadline; the first *verified* answer wins
  inside a bound, instead of inheriting the slow endpoint's latency.

Every answer accepted anywhere in this file is verified (``result.report``)
— the invariant the chaos lane exists to witness is *zero unverified or
stale-accepted answers under network failure*.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import replace

import pytest

from repro.db.query import Conjunction, Query, RangeCondition
from repro.service import FailoverClient, VerifyingClient
from repro.service.chaos import ChaosProxy, ChaosRegistry
from repro.service.owner import build_update_request
from repro.service.protocol import (
    ErrorResponse,
    QueryRequest,
    ReplicationStatusRequest,
    ServiceError,
    recv_frame,
    recv_message,
    send_message,
)
from repro.storage.checkpoint import load_keys
from repro.wire import decode
from repro.wire.updates import RecordDelta, UpdateResponse

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not (sys.platform.startswith("linux") or sys.platform == "darwin"),
        reason="the chaos matrix drives POSIX signals over real processes",
    ),
]

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
UPDATES = 3
FULL_RANGE = Query(
    "employees", Conjunction((RangeCondition("salary", None, None),))
)


# -- driving the group ---------------------------------------------------------


def _spawn(
    storage_dir: str,
    replicate_from: int | None = None,
    keys_from: str | None = None,
):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_CHAOS", None)
    command = [
        sys.executable,
        "-m",
        "repro.service",
        "--key-bits",
        "512",
        "--storage-dir",
        storage_dir,
    ]
    if replicate_from is None:
        # The primary is the group's replication source — an explicit opt-in.
        command += ["--serve-replication"]
    else:
        command += [
            "--replicate-from",
            f"127.0.0.1:{replicate_from}",
            "--poll-interval",
            "0.05",
        ]
    if keys_from is not None:
        # Signing keys never travel over the replication feed; a fresh
        # replica gets them from the primary's root on this shared host.
        command += ["--keys-from", keys_from]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
        cwd=REPO_ROOT,
    )
    port_line = process.stdout.readline().strip()
    assert port_line.startswith("PORT "), f"unexpected output: {port_line!r}"
    port = int(port_line.split()[1])
    assert process.stdout.readline().startswith("RELATIONS ")
    assert process.stdout.readline().startswith("STORAGE ")
    if replicate_from is not None:
        assert process.stdout.readline().startswith("REPLICATING ")
    return process, port


def _terminate(process) -> None:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    try:
        process.communicate(timeout=30)
    except subprocess.TimeoutExpired:  # pragma: no cover - last resort
        process.kill()
        process.communicate(timeout=30)


@pytest.fixture()
def group(tmp_path):
    """A primary and two live replicas, each its own process."""
    processes = []
    try:
        primary, primary_port = _spawn(str(tmp_path / "primary"))
        processes.append(primary)
        ports = [primary_port]
        for index in range(2):
            replica, port = _spawn(
                str(tmp_path / f"replica-{index}"),
                replicate_from=primary_port,
                keys_from=str(tmp_path / "primary"),
            )
            processes.append(replica)
            ports.append(port)
        yield {
            "processes": processes,
            "ports": ports,
            "roots": [
                str(tmp_path / "primary"),
                str(tmp_path / "replica-0"),
                str(tmp_path / "replica-1"),
            ],
        }
    finally:
        for process in processes:
            _terminate(process)


def _status(port: int):
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        send_message(sock, ReplicationStatusRequest(relation_name="employees"))
        return decode(recv_frame(sock))


def _wait_caught_up(primary_port: int, replica_port: int, timeout: float = 20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if _status(replica_port) == _status(primary_port):
                return
        except (OSError, ServiceError):
            pass
        time.sleep(0.05)
    raise AssertionError(
        f"replica on port {replica_port} never caught up with the primary"
    )


def _raw_answer(port: int, identifier: bytes) -> bytes:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        send_message(sock, QueryRequest(manifest_id=identifier, query=FULL_RANGE))
        frame = recv_frame(sock)
    assert frame is not None
    return frame


def _signed_stream(root: str, port: int, count: int, tag: str):
    """``count`` pre-signed insert frames against the primary's live manifest.

    Pre-signing makes resubmission push the *same bytes* — which is what
    routes a retried, already-applied update through the applied-update
    registry instead of re-signing around it.
    """
    scheme = load_keys(os.path.join(root, "shards", "hr", "keys.json"))[
        "employees"
    ]
    with VerifyingClient("127.0.0.1", port) as client:
        manifest = client.fetch_manifest("employees")
    requests = []
    for index in range(count):
        delta = RecordDelta(
            kind="insert",
            values={
                "emp_id": f"{tag}-{index}",
                "name": f"Chaos {index}",
                "salary": 64_000 + index,
                "dept": 6,
                "photo": bytes([90 + index]) * 16,
            },
        )
        requests.append(build_update_request(scheme, manifest, (delta,)))
        manifest = replace(manifest, sequence=manifest.sequence + 1)
    return requests


def _push_direct(port: int, requests) -> int:
    acked = 0
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        for request in requests:
            send_message(sock, request)
            response = recv_message(sock)
            assert isinstance(response, UpdateResponse), response
            acked += 1
    return acked


def _tagged_rows(port: int, tag: str):
    with VerifyingClient("127.0.0.1", port) as client:
        result = client.query(FULL_RANGE)
    assert result.report is not None
    return sorted(
        str(row["emp_id"])
        for row in result.rows
        if str(row["emp_id"]).startswith(f"{tag}-")
    )


# -- the matrix ----------------------------------------------------------------


@pytest.mark.parametrize("victim", [1, 2], ids=["replica-0", "replica-1"])
def test_sigkill_replica_group_keeps_answering_and_catches_up(group, victim):
    ports = group["ports"]
    assert _push_direct(ports[0], _signed_stream(group["roots"][0], ports[0], UPDATES, "kill")) == UPDATES
    for port in ports[1:]:
        _wait_caught_up(ports[0], port)

    process = group["processes"][victim]
    process.kill()
    process.communicate(timeout=30)
    assert process.returncode == -signal.SIGKILL

    # Bounded unavailability: with one replica dead, every read still
    # returns a *verified* answer, and quickly.
    endpoints = [("127.0.0.1", port) for port in ports]
    started = time.monotonic()
    with FailoverClient(endpoints, failure_threshold=1, timeout=5.0) as client:
        for _ in range(3):
            result = client.query(FULL_RANGE)
            assert result.report is not None
            assert _tagged_rows_in(result.rows, "kill") == UPDATES
    assert time.monotonic() - started < 20.0

    # More writes while the victim is down, then a restart on its own
    # directory: catch-up is just the poll loop, and the recovered replica's
    # raw answer frame is byte-identical to the primary's.
    assert _push_direct(ports[0], _signed_stream(group["roots"][0], ports[0], 2, "late")) == 2
    revived, port = _spawn(group["roots"][victim], replicate_from=ports[0])
    group["processes"][victim] = revived
    ports[victim] = port
    _wait_caught_up(ports[0], port)
    with VerifyingClient("127.0.0.1", ports[0]) as client:
        identifier = client.relations()["employees"]
    assert _raw_answer(port, identifier) == _raw_answer(ports[0], identifier)


def _tagged_rows_in(rows, tag: str) -> int:
    return sum(1 for row in rows if str(row["emp_id"]).startswith(f"{tag}-"))


def test_partitioned_primary_loses_no_acked_update(group):
    """Arm ``partition-down`` mid-batch: the primary applies an update whose
    acknowledgement never arrives.  The resubmitted identical stream must
    complete — acked work survives, the half-acked update is not doubled."""
    ports = group["ports"]
    requests = _signed_stream(group["roots"][0], ports[0], UPDATES, "part")
    registry = ChaosRegistry()
    acked = 0
    with ChaosProxy("127.0.0.1", ports[0], faults=registry) as proxy:
        with socket.create_connection(proxy.address, timeout=10) as sock:
            sock.settimeout(1.0)
            for index, request in enumerate(requests):
                if index == 1:
                    # From here on the primary's acks vanish in-path.
                    registry.arm("partition-down")
                send_message(sock, request)
                try:
                    response = recv_message(sock)
                except (TimeoutError, OSError, ServiceError):
                    break
                if response is None or isinstance(response, ErrorResponse):
                    break
                acked += 1
    assert acked == 1, "the partition should have swallowed the second ack"

    # The client's view is 1 ack; the primary may hold 2 applied updates.
    # Resubmitting the same bytes finishes the batch exactly once each.
    registry.clear()
    assert _push_direct(ports[0], requests) == UPDATES
    expected = [f"part-{index}" for index in range(UPDATES)]
    assert _tagged_rows(ports[0], "part") == expected
    for port in ports[1:]:
        _wait_caught_up(ports[0], port)
        assert _tagged_rows(port, "part") == expected


def test_trickle_fed_replica_loses_the_hedged_race(group):
    ports = group["ports"]
    registry = ChaosRegistry()
    registry.arm("trickle", 0.005)
    with ChaosProxy("127.0.0.1", ports[1], faults=registry) as proxy:
        with FailoverClient(
            [proxy.address, ("127.0.0.1", ports[0])],
            hedge=True,
            hedge_after=0.05,
            timeout=5.0,
        ) as client:
            started = time.monotonic()
            result = client.query(FULL_RANGE)
            elapsed = time.monotonic() - started
            assert result.report is not None
            stats = client.stats()
        assert stats["hedges_fired"] >= 1
        assert stats["hedge_wins"] >= 1
        # The verified answer arrived at healthy-endpoint speed, not at one
        # byte per 5ms.
        assert elapsed < 5.0
