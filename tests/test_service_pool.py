"""Process-pool proof workers: identity, coherence, crash containment.

The contract of :mod:`repro.service.pool`:

* pooled answers are byte-identical to in-process answers,
* owner updates propagate to every worker before the owner sees the receipt
  (a query issued after a push reflects the pushed data, deterministically),
* a worker killed mid-flight produces a typed ``WorkerCrashed`` error —
  never a hang — and a forked replacement keeps serving.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time

import pytest

from repro.db.query import Conjunction, Query, RangeCondition
from repro.service import (
    OwnerClient,
    PublicationServer,
    QueryRequest,
    RemoteError,
    ServerConfig,
    VerifyingClient,
    build_demo_world,
)
from repro.service.protocol import recv_frame, send_message

pytestmark = [
    pytest.mark.concurrency,
    pytest.mark.skipif(
        not sys.platform.startswith("linux") and sys.platform != "darwin",
        reason="process-pool workers need a fork platform",
    ),
]

SALARY_RANGE = Query(
    "employees", Conjunction((RangeCondition("salary", 20_000, 60_000),))
)
FULL_RANGE = Query("employees", Conjunction())


@pytest.fixture()
def world():
    return build_demo_world(key_bits=512, seed=11)


def test_pooled_answers_byte_identical_to_inline(world):
    """The same state served pooled and inline yields identical frames."""
    import socket

    def collect(worker_processes: int):
        frames = []
        with PublicationServer(
            world.router,
            config=ServerConfig(
                worker_processes=worker_processes, response_cache=False
            ),
        ) as server:
            host, port = server.address
            with VerifyingClient(host, port) as client:
                identifier = client.relations()["employees"]
            with socket.create_connection((host, port), timeout=30) as sock:
                for query in (SALARY_RANGE, FULL_RANGE):
                    send_message(
                        sock, QueryRequest(manifest_id=identifier, query=query)
                    )
                    frames.append(recv_frame(sock))
        return frames

    assert collect(0) == collect(2)


def test_pooled_query_verifies(world):
    with PublicationServer(
        world.router, config=ServerConfig(worker_processes=2)
    ) as server:
        host, port = server.address
        with VerifyingClient(
            host, port, trusted_manifests=dict(world.manifests)
        ) as client:
            result = client.query(SALARY_RANGE)
            assert result.rows and result.report is not None
            results = client.query_many([SALARY_RANGE, FULL_RANGE, SALARY_RANGE])
            assert [r.rows for r in results] == [
                result.rows,
                results[1].rows,
                result.rows,
            ]
            assert all(r.report is not None for r in results)


def test_update_visible_immediately_after_push(world):
    """The owner's receipt implies every worker answers the new snapshot.

    The master holds the ``UpdateResponse`` until all workers acknowledged
    the broadcast, so a query issued *after* ``push`` returns — on any
    worker — must reflect the delta and carry the rotated manifest id.
    """
    with PublicationServer(
        world.router, config=ServerConfig(worker_processes=2)
    ) as server:
        host, port = server.address
        with OwnerClient(
            host, port, signature_scheme=world.owner.signature_scheme
        ) as owner_client:
            response = owner_client.insert(
                "employees",
                {
                    "salary": 41_414,
                    "emp_id": "pool-1",
                    "name": "pooled insert",
                    "dept": 3,
                    "photo": b"\x42" * 16,
                },
            )
            assert response.signatures_recomputed >= 1
        with VerifyingClient(
            host, port, trusted_manifests=dict(world.manifests)
        ) as client:
            # Several queries, so both round-robin workers are exercised.
            for _ in range(4):
                result = client.query(
                    Query(
                        "employees",
                        Conjunction((RangeCondition("salary", 41_414, 41_414),)),
                    )
                )
                assert result.report is not None
                assert any(row["emp_id"] == "pool-1" for row in result.rows)
                assert result.manifest_sequence >= 1


def test_worker_crash_is_typed_error_not_hang(world):
    """SIGKILLing workers mid-query yields WorkerCrashed, then recovery."""
    with PublicationServer(
        world.router, config=ServerConfig(worker_processes=2)
    ) as server:
        host, port = server.address
        pids = server._pool.worker_pids()
        assert all(pid for pid in pids)

        outcomes = []

        def run_queries():
            try:
                with VerifyingClient(
                    host, port, trusted_manifests=dict(world.manifests), timeout=30
                ) as client:
                    for _ in range(6):
                        try:
                            result = client.query(FULL_RANGE)
                            outcomes.append(("ok", len(result.rows)))
                        except RemoteError as error:
                            outcomes.append(("remote", error.code))
            except BaseException as error:  # pragma: no cover - surfaced below
                outcomes.append(("fatal", repr(error)))

        thread = threading.Thread(target=run_queries)
        thread.start()
        time.sleep(0.02)
        for pid in pids:
            os.kill(pid, signal.SIGKILL)
        thread.join(timeout=60)
        assert not thread.is_alive(), "a worker crash must never hang a client"
        assert outcomes, "the client should have observed something"
        assert all(kind in ("ok", "remote") for kind, _ in outcomes), outcomes
        for kind, detail in outcomes:
            if kind == "remote":
                assert detail == "WorkerCrashed"
        assert server.workers_restarted >= 2

        # The replacement workers answer from the master's current state.
        with VerifyingClient(
            host, port, trusted_manifests=dict(world.manifests)
        ) as client:
            result = client.query(SALARY_RANGE)
            assert result.rows and result.report is not None


def test_crash_during_update_broadcast_does_not_wedge_owner(world):
    """An update raced by worker crashes still completes for the owner."""
    with PublicationServer(
        world.router, config=ServerConfig(worker_processes=2)
    ) as server:
        host, port = server.address
        pids = server._pool.worker_pids()

        def killer():
            time.sleep(0.01)
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass

        thread = threading.Thread(target=killer)
        thread.start()
        with OwnerClient(
            host, port, signature_scheme=world.owner.signature_scheme, timeout=60
        ) as owner_client:
            for index in range(5):
                owner_client.insert(
                    "employees",
                    {
                        "salary": 70_000 + index,
                        "emp_id": f"crash-{index}",
                        "name": "crash race",
                        "dept": 1,
                        "photo": b"\x01" * 16,
                    },
                )
        thread.join(timeout=10)
        with VerifyingClient(
            host, port, trusted_manifests=dict(world.manifests)
        ) as client:
            result = client.query(
                Query(
                    "employees",
                    Conjunction((RangeCondition("salary", 70_000, 70_004),)),
                )
            )
            assert result.report is not None
            assert len(result.rows) == 5
