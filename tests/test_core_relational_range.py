"""Tests for the relational scheme: range selection on the sorted key (Section 4.1)."""

import pytest

from repro.core.errors import CompletenessError, VerificationError
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.db.query import Conjunction, Projection, Query, RangeCondition
from repro.db.workload import generate_employees


def _range_query(low, high):
    return Query("employees", Conjunction((RangeCondition("salary", low, high),)))


@pytest.fixture(scope="module")
def setup(owner):
    relation = generate_employees(60, seed=21, photo_bytes=8)
    signed = owner.publish_relation(relation)
    publisher = Publisher({"employees": signed})
    verifier = ResultVerifier({"employees": signed.manifest})
    return relation, signed, publisher, verifier


class TestSignedRelation:
    def test_internal_consistency(self, setup):
        _, signed, _, _ = setup
        assert signed.verify_internal_consistency()

    def test_entry_count(self, setup):
        relation, signed, _, _ = setup
        assert signed.entry_count() == len(relation) + 2

    def test_delimiters_at_domain_bounds(self, setup):
        relation, signed, _, _ = setup
        domain = relation.schema.key_domain
        assert signed.entry(0).key == domain.lower
        assert signed.entry(signed.entry_count() - 1).key == domain.upper

    def test_components_are_three_digests(self, setup):
        _, signed, _, _ = setup
        upper, lower, attribute_root = signed.components(1)
        digest_size = signed.hash_function.digest_size
        assert len(upper) == len(lower) == len(attribute_root) == digest_size
        assert signed.entry_digest(1) == upper + lower + attribute_root


class TestRangeQueries:
    def test_full_range_returns_everything(self, setup):
        relation, _, publisher, verifier = setup
        query = Query("employees")
        result = publisher.answer(query)
        assert len(result.rows) == len(relation)
        report = verifier.verify(query, result.rows, result.proof)
        assert report.result_rows == len(relation)

    @pytest.mark.parametrize("low_q,high_q", [(0.0, 0.3), (0.3, 0.7), (0.5, 0.5), (0.9, 1.0)])
    def test_subrange_queries(self, setup, low_q, high_q):
        relation, _, publisher, verifier = setup
        keys = relation.keys()
        low = keys[int(low_q * (len(keys) - 1))]
        high = keys[int(high_q * (len(keys) - 1))]
        query = _range_query(low, high)
        result = publisher.answer(query)
        expected = [k for k in keys if low <= k <= high]
        assert [row["salary"] for row in result.rows] == expected
        verifier.verify(query, result.rows, result.proof)

    def test_point_query(self, setup):
        relation, _, publisher, verifier = setup
        target = relation.keys()[7]
        query = _range_query(target, target)
        result = publisher.answer(query)
        assert len(result.rows) == 1 and result.rows[0]["salary"] == target
        verifier.verify(query, result.rows, result.proof)

    def test_empty_result_between_keys(self, setup):
        relation, _, publisher, verifier = setup
        keys = relation.keys()
        # Find a gap between consecutive keys.
        gap_low, gap_high = None, None
        for a, b in zip(keys, keys[1:]):
            if b - a > 2:
                gap_low, gap_high = a + 1, b - 1
                break
        assert gap_low is not None, "workload should contain key gaps"
        query = _range_query(gap_low, gap_high)
        result = publisher.answer(query)
        assert result.rows == []
        report = verifier.verify(query, result.rows, result.proof)
        assert report.checked_messages == 1

    def test_empty_result_below_all_keys(self, setup):
        relation, _, publisher, verifier = setup
        smallest = relation.keys()[0]
        if smallest <= 2:
            pytest.skip("no room below the smallest key")
        query = _range_query(1, smallest - 1)
        result = publisher.answer(query)
        assert result.rows == []
        verifier.verify(query, result.rows, result.proof)

    def test_empty_result_above_all_keys(self, setup):
        relation, _, publisher, verifier = setup
        largest = relation.keys()[-1]
        domain = relation.schema.key_domain
        if largest >= domain.upper - 2:
            pytest.skip("no room above the largest key")
        query = _range_query(largest + 1, domain.upper - 1)
        result = publisher.answer(query)
        assert result.rows == []
        verifier.verify(query, result.rows, result.proof)

    def test_vacuous_range(self, setup):
        _, _, publisher, verifier = setup
        query = Query(
            "employees",
            Conjunction(
                (RangeCondition("salary", 500, 50_000), RangeCondition("salary", 60_000, 70_000))
            ),
        )
        result = publisher.answer(query)
        assert result.is_vacuous and result.rows == []
        report = verifier.verify(query, result.rows, result.proof)
        assert report.result_rows == 0

    def test_unbounded_above(self, setup):
        relation, _, publisher, verifier = setup
        median = relation.keys()[len(relation) // 2]
        query = Query("employees", Conjunction((RangeCondition("salary", median, None),)))
        result = publisher.answer(query)
        assert [row["salary"] for row in result.rows] == [
            k for k in relation.keys() if k >= median
        ]
        verifier.verify(query, result.rows, result.proof)

    def test_unbounded_below(self, setup):
        relation, _, publisher, verifier = setup
        median = relation.keys()[len(relation) // 2]
        query = Query("employees", Conjunction((RangeCondition("salary", None, median),)))
        result = publisher.answer(query)
        verifier.verify(query, result.rows, result.proof)

    def test_duplicate_key_records_all_returned(self, owner):
        from repro.db.workload import employee_schema
        from repro.db.relation import Relation

        rows = [
            {"salary": 5000, "emp_id": f"{i}", "name": f"N{i}", "dept": 1, "photo": b""}
            for i in range(3)
        ] + [
            {"salary": 7000, "emp_id": "x", "name": "X", "dept": 2, "photo": b""},
        ]
        relation = Relation.from_rows(employee_schema(), rows)
        signed = owner.publish_relation(relation)
        publisher = Publisher({"employees": signed})
        verifier = ResultVerifier({"employees": signed.manifest})
        query = _range_query(5000, 5000)
        result = publisher.answer(query)
        assert len(result.rows) == 3
        verifier.verify(query, result.rows, result.proof)

    def test_individual_signature_transport(self, setup):
        relation, signed, _, verifier = setup
        publisher = Publisher({"employees": signed}, aggregate=False)
        query = _range_query(relation.keys()[5], relation.keys()[15])
        result = publisher.answer(query)
        assert not result.proof.signatures.is_aggregated
        assert result.proof.signatures.signature_count == len(result.rows)
        verifier.verify(query, result.rows, result.proof)

    def test_report_accounting(self, setup):
        relation, _, publisher, verifier = setup
        query = _range_query(relation.keys()[0], relation.keys()[9])
        result = publisher.answer(query)
        report = verifier.verify(query, result.rows, result.proof)
        assert report.checked_messages == 10
        assert report.signature_verifications == 1
        assert report.hash_operations > 0

    def test_proof_size_independent_of_table_size(self, owner):
        """Section 6.1: VO size depends on the result, not on the database."""
        sizes = {}
        for table_size in (50, 200):
            relation = generate_employees(table_size, seed=3, photo_bytes=4)
            signed = owner.publish_relation(relation)
            publisher = Publisher({"employees": signed})
            keys = relation.keys()
            query = _range_query(keys[10], keys[19])
            result = publisher.answer(query)
            assert len(result.rows) == 10
            sizes[table_size] = result.proof.digest_count
        assert sizes[50] == sizes[200]


class TestVerifierRejectsBadRanges:
    def test_missing_proof_rejected(self, setup):
        relation, _, publisher, verifier = setup
        query = _range_query(relation.keys()[0], relation.keys()[5])
        result = publisher.answer(query)
        with pytest.raises(CompletenessError):
            verifier.verify(query, result.rows, None)

    def test_proof_for_other_range_rejected(self, setup):
        relation, _, publisher, verifier = setup
        keys = relation.keys()
        query_a = _range_query(keys[0], keys[5])
        query_b = _range_query(keys[0], keys[6])
        result_a = publisher.answer(query_a)
        with pytest.raises(VerificationError):
            verifier.verify(query_b, result_a.rows, result_a.proof)

    def test_rows_for_vacuous_range_rejected(self, setup):
        _, _, publisher, verifier = setup
        query = Query(
            "employees",
            Conjunction((RangeCondition("salary", 500, 400),)),
        )
        result = publisher.answer(query)
        assert result.is_vacuous
        # A publisher returning rows (or any proof) for a vacuous range is rejected.
        with pytest.raises(VerificationError):
            verifier.verify(query, [{"salary": 450}], None)
        other = publisher.answer(_range_query(1, 99_000))
        with pytest.raises(VerificationError):
            verifier.verify(query, [], other.proof)

    def test_unknown_relation_rejected(self, setup, figure1_publisher):
        _, _, publisher, verifier = setup
        query = Query("nonexistent")
        with pytest.raises(KeyError):
            publisher.answer(query)
        with pytest.raises(VerificationError):
            verifier.verify(query, [], None)
