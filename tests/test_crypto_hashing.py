"""Unit tests for one-way and iterated hash functions."""

import pytest

from repro.crypto.hashing import (
    HASH_COUNTER,
    HashChain,
    HashFunction,
    IteratedHasher,
    default_hash,
    make_hash,
)


class TestHashFunction:
    def test_default_is_sha256(self):
        assert default_hash().name == "sha256"
        assert default_hash().digest_size == 32
        assert default_hash().digest_bits == 256

    def test_md5_matches_paper_digest_size(self):
        # Table 1 assumes 128-bit digests; MD5 provides them.
        assert HashFunction("md5").digest_bits == 128

    def test_digest_is_deterministic(self):
        h = default_hash()
        assert h.digest(b"abc") == h.digest(b"abc")

    def test_digest_differs_for_different_inputs(self):
        h = default_hash()
        assert h.digest(b"abc") != h.digest(b"abd")

    def test_hash_value_uses_canonical_encoding(self):
        h = default_hash()
        assert h.hash_value(1) != h.hash_value("1")

    def test_combine_equals_digest_of_concatenation(self):
        h = default_hash()
        assert h.combine(b"ab", b"cd") == h.digest(b"abcd")

    def test_counter_increments(self):
        h = default_hash()
        before = HASH_COUNTER.count
        h.digest(b"x")
        h.digest(b"y")
        assert HASH_COUNTER.count == before + 2

    def test_counter_reset_returns_previous(self):
        h = default_hash()
        HASH_COUNTER.reset()
        h.digest(b"x")
        assert HASH_COUNTER.reset() == 1
        assert HASH_COUNTER.count == 0

    def test_make_hash_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_hash("definitely-not-a-hash")

    def test_make_hash_accepts_known(self):
        assert make_hash("sha1").digest_size == 20


class TestIteratedHasher:
    def test_zero_iterations_is_base(self):
        hasher = IteratedHasher()
        assert hasher.iterate(42, 0) == hasher.base(42)

    def test_iterate_composes(self):
        hasher = IteratedHasher()
        assert hasher.iterate(42, 5) == hasher.extend(hasher.iterate(42, 2), 3)

    def test_negative_iterations_rejected(self):
        hasher = IteratedHasher()
        with pytest.raises(ValueError):
            hasher.iterate(42, -1)
        with pytest.raises(ValueError):
            hasher.extend(b"x" * 32, -1)

    def test_suffix_separates_chains(self):
        hasher = IteratedHasher()
        assert hasher.iterate(42, 3, suffix=0) != hasher.iterate(42, 3, suffix=1)

    def test_values_separate_chains(self):
        hasher = IteratedHasher()
        assert hasher.iterate(42, 3) != hasher.iterate(43, 3)

    def test_chain_output_never_equals_chain_input(self):
        # The paper requires h^{-1}(r) != r; domain separation guarantees the
        # digest of the tagged anchor differs from the raw value's digest.
        hasher = IteratedHasher()
        h = hasher.hash_function
        assert hasher.base(7) != h.hash_value(7)

    def test_hash_count_linear_in_iterations(self):
        hasher = IteratedHasher()
        HASH_COUNTER.reset()
        hasher.iterate(9, 10)
        assert HASH_COUNTER.reset() == 11  # 1 base + 10 extensions


class TestHashChain:
    def test_positions_match_iterated_hasher(self):
        chain = HashChain(123)
        hasher = chain.hasher
        assert chain.at(0) == hasher.base(123)
        assert chain.at(7) == hasher.iterate(123, 7)

    def test_memoisation_is_consistent(self):
        chain = HashChain(5)
        first = chain.at(10)
        assert chain.at(10) == first
        assert chain.at(4) == chain.hasher.iterate(5, 4)

    def test_advance_matches_direct(self):
        chain = HashChain(5)
        assert chain.advance(chain.at(3), 4) == chain.at(7)

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            HashChain(5).at(-1)

    def test_suffix_distinguishes_chains(self):
        assert HashChain(5, suffix=0).at(3) != HashChain(5, suffix=1).at(3)
