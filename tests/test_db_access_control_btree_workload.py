"""Unit tests for access control, the B+-tree and the workload generators."""

import pytest

from repro.db.access_control import (
    AccessControlPolicy,
    Role,
    add_visibility_columns,
    visibility_column_name,
)
from repro.db.btree import BPlusTree
from repro.db.query import Conjunction, EqualityCondition, Projection, Query, RangeCondition
from repro.db.workload import (
    figure1_employee_relation,
    figure1_policy,
    generate_customers_and_orders,
    generate_employees,
    generate_sorted_values,
    generate_stock_prices,
)


class TestRolesAndPolicy:
    def test_role_row_visibility(self):
        relation = figure1_employee_relation()
        executive = figure1_policy().role("hr_executive")
        visible = [r for r in relation if executive.can_see(r)]
        assert [r["name"] for r in visible] == ["A", "C", "D"]

    def test_manager_sees_everything(self):
        relation = figure1_employee_relation()
        manager = figure1_policy().role("hr_manager")
        assert all(manager.can_see(r) for r in relation)

    def test_allowed_attributes_always_include_key(self):
        relation = figure1_employee_relation()
        role = Role("narrow", visible_attributes=("name",))
        allowed = role.allowed_attributes(relation.schema)
        assert "salary" in allowed and "name" in allowed and "photo" not in allowed

    def test_unknown_role_rejected(self):
        with pytest.raises(KeyError):
            figure1_policy().role("intern")

    def test_rewrite_adds_row_conditions(self):
        relation = figure1_employee_relation()
        policy = figure1_policy()
        query = Query("employees", Conjunction((RangeCondition("salary", None, 9999),)))
        rewritten = policy.rewrite(query, "hr_executive", relation.schema)
        key_condition = rewritten.where.key_condition(relation.schema)
        assert key_condition.high == 8999  # the tighter of 9999 and the policy bound

    def test_rewrite_restricts_projection(self):
        relation = figure1_employee_relation()
        policy = AccessControlPolicy()
        policy.add_role(Role("restricted", visible_attributes=("name", "salary")))
        query = Query("employees", projection=Projection())
        rewritten = policy.rewrite(query, "restricted", relation.schema)
        assert set(rewritten.projection.effective_attributes(relation.schema)) == {
            "salary",
            "name",
        }

    def test_rewrite_noop_for_unrestricted_role(self):
        relation = figure1_employee_relation()
        policy = figure1_policy()
        query = Query("employees")
        rewritten = policy.rewrite(query, "hr_manager", relation.schema)
        assert rewritten.where.conditions == ()


class TestVisibilityColumns:
    def test_columns_added_per_role(self):
        relation = figure1_employee_relation()
        policy = figure1_policy()
        augmented = add_visibility_columns(relation, policy)
        assert augmented.schema.has_attribute(visibility_column_name("hr_manager"))
        assert augmented.schema.has_attribute(visibility_column_name("hr_executive"))
        assert len(augmented) == len(relation)

    def test_column_values_reflect_policy(self):
        relation = figure1_employee_relation()
        augmented = add_visibility_columns(relation, figure1_policy())
        column = visibility_column_name("hr_executive")
        values = {record["name"]: record[column] for record in augmented}
        assert values == {"A": True, "C": True, "D": True, "B": False, "E": False}

    def test_original_relation_untouched(self):
        relation = figure1_employee_relation()
        add_visibility_columns(relation, figure1_policy())
        assert not relation.schema.has_attribute(visibility_column_name("hr_manager"))


class TestBPlusTree:
    def test_insert_and_search(self):
        tree = BPlusTree(fanout=4)
        for key in [5, 1, 9, 3, 7, 2, 8, 6, 4, 0]:
            tree.insert(key, f"v{key}")
        assert len(tree) == 10
        assert tree.search(7) == "v7"
        assert tree.search(42) is None
        assert tree.keys() == sorted(range(10))

    def test_duplicate_insert_rejected(self):
        tree = BPlusTree(fanout=4)
        tree.insert(1, "a")
        with pytest.raises(KeyError):
            tree.insert(1, "b")

    def test_range_search(self):
        tree = BPlusTree(fanout=4)
        for key in range(100):
            tree.insert(key, key * 2)
        results = tree.range_search(10, 20)
        assert [k for k, _ in results] == list(range(10, 21))
        assert [v for _, v in results] == [k * 2 for k in range(10, 21)]

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(fanout=8)
        for key in range(512):
            tree.insert(key, None)
        assert 3 <= tree.height <= 5

    def test_delete(self):
        tree = BPlusTree(fanout=4)
        for key in range(20):
            tree.insert(key, key)
        assert tree.delete(10) == 10
        assert tree.search(10) is None
        assert len(tree) == 19
        with pytest.raises(KeyError):
            tree.delete(10)

    def test_neighbours_within_and_across_leaves(self):
        tree = BPlusTree(fanout=4)
        for key in range(30):
            tree.insert(key, key)
        assert tree.neighbours(15) == (14, 16)
        assert tree.neighbours(0) == (None, 1)
        assert tree.neighbours(29) == (28, None)

    def test_signatures_stored_with_entries(self):
        tree = BPlusTree(fanout=4)
        tree.insert(5, "v", signature=123)
        assert tree.signature_of(5) == 123
        tree.set_signature(5, 456)
        assert tree.signature_of(5) == 456
        with pytest.raises(KeyError):
            tree.set_signature(6, 1)

    def test_update_with_signatures_touches_at_most_two_leaves(self):
        tree = BPlusTree(fanout=16)
        for key in range(0, 2000, 2):
            tree.insert(key, key)
        touched = tree.update_with_signatures(1001, "new", lambda a, b, c: hash((a, b, c)))
        assert touched <= 2
        assert tree.statistics.leaves_touched_last_update <= 2
        assert tree.statistics.signatures_recomputed == 3

    def test_statistics_reset(self):
        tree = BPlusTree(fanout=4)
        tree.insert(1, "a")
        tree.statistics.reset()
        assert tree.statistics.node_writes == 0

    def test_small_fanout_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree(fanout=2)


class TestWorkloads:
    def test_figure1_table_matches_paper(self):
        relation = figure1_employee_relation()
        assert [r["name"] for r in relation] == ["A", "C", "D", "B", "E"]
        assert relation.keys() == [2000, 3500, 8010, 12100, 25000]

    def test_generate_employees_is_deterministic(self):
        first = generate_employees(20, seed=9, photo_bytes=4)
        second = generate_employees(20, seed=9, photo_bytes=4)
        assert first.keys() == second.keys()
        assert len(first) == 20

    def test_generate_employees_distinct_salaries(self):
        relation = generate_employees(200, seed=1, photo_bytes=1)
        assert len(set(relation.keys())) == 200

    def test_stock_prices_one_row_per_day(self):
        relation = generate_stock_prices(50)
        assert relation.keys() == list(range(1, 51))
        assert all(record["close"] >= 1.0 for record in relation)

    def test_customers_orders_referential_integrity(self):
        customers, orders = generate_customers_and_orders(15, 60, seed=2)
        customer_ids = set(customers.keys())
        assert all(order["customer_id"] in customer_ids for order in orders)
        assert len(orders) == 60

    def test_sorted_values_distinct_and_sorted(self):
        values = generate_sorted_values(100, seed=4)
        assert values == sorted(values)
        assert len(set(values)) == 100
