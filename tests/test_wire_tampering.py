"""Tampering over the wire: every byte flip is rejected with a typed error.

The contract under test: for any mutation of encoded bytes, the client either

* fails to decode with a :class:`~repro.wire.errors.WireFormatError`, or
* decodes something that then fails verification with a typed
  :class:`~repro.core.errors.VerificationError`.

Silent accepts (the flip goes unnoticed) and unhandled crashes (raw
``ValueError``/``TypeError``/... escaping) both fail the test.
"""

import pytest

from repro.core.errors import VerificationError
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.db.query import Conjunction, EqualityCondition, Projection, Query, RangeCondition
from repro.service.protocol import QueryResponse
from repro.wire import WireFormatError, decode, encode, manifest_id

#: Every sweep flips one byte at a sampled offset; the two XOR masks catch
#: both gross corruption (0xFF) and least-significant-bit nudges (0x01).
_MASKS = (0xFF, 0x01)


@pytest.fixture(scope="module")
def wire_world(employees_100):
    relation, signed = employees_100
    publisher = Publisher({"employees": signed})
    verifier = ResultVerifier({"employees": signed.manifest})
    query = Query(
        "employees",
        Conjunction(
            (
                RangeCondition("salary", 20_000, 60_000),
                EqualityCondition("dept", 1),
            )
        ),
        Projection(("name", "salary", "dept")),
    )
    result = publisher.answer(query)
    assert result.rows and result.proof is not None
    return signed, verifier, query, result


def _sample_offsets(length: int, step: int):
    """All framing bytes plus an even sample of the remainder."""
    offsets = set(range(min(8, length)))
    offsets.update(range(8, length, step))
    offsets.add(length - 1)
    return sorted(offsets)


def _assert_rejected(blob: bytes, offset: int, mask: int, check):
    tampered = blob[:offset] + bytes((blob[offset] ^ mask,)) + blob[offset + 1 :]
    try:
        artifact = decode(tampered)
    except WireFormatError:
        return  # rejected at the codec layer: typed, expected
    # Decoded despite the flip — verification must now catch it.  ``check``
    # raises VerificationError (or asserts) for anything but a clean accept.
    try:
        check(artifact)
    except (VerificationError, WireFormatError):
        return  # rejected at the verification layer: typed, expected
    pytest.fail(
        f"flipping byte {offset} with mask {mask:#x} was silently accepted"
    )


def test_tampered_query_response_rejected(wire_world):
    """Byte flips in the full response frame (rows + proof) never slip through."""
    signed, verifier, query, result = wire_world
    response = QueryResponse(
        rows=tuple(dict(row) for row in result.rows), proof=result.proof
    )
    blob = encode(response)

    def check(artifact):
        if not isinstance(artifact, QueryResponse):
            raise WireFormatError("tampering changed the message type")
        verifier.verify(query, artifact.rows, artifact.proof)
        raise AssertionError("tampered response verified cleanly")

    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=17):
            _assert_rejected(blob, offset, mask, check)


def test_tampered_proof_rejected(wire_world):
    """Byte flips in the VO itself are caught against the untampered rows."""
    signed, verifier, query, result = wire_world
    blob = encode(result.proof)

    def check(proof):
        verifier.verify(query, result.rows, proof)
        raise AssertionError("tampered proof verified cleanly")

    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=23):
            _assert_rejected(blob, offset, mask, check)


def test_tampered_signature_bundle_rejected(wire_world):
    """Flips inside the signature bundle can never yield the original bundle."""
    signed, verifier, query, result = wire_world
    bundle = result.proof.signatures
    blob = encode(bundle)
    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=3):

            def check(decoded, _original=bundle):
                assert decoded != _original, (
                    "a byte flip decoded back to the original bundle; "
                    "the encoding is not canonical"
                )
                raise VerificationError("bundle differs, as expected")

            _assert_rejected(blob, offset, mask, check)


def test_tampered_manifest_rejected(wire_world):
    """Flipped manifests either fail decoding or change their manifest id."""
    signed, _verifier, _query, _result = wire_world
    manifest = signed.manifest
    blob = encode(manifest)
    original_id = manifest_id(manifest)
    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=7):

            def check(decoded):
                assert manifest_id(decoded) != original_id, (
                    "a byte flip preserved the manifest id"
                )
                raise VerificationError("manifest id differs, as expected")

            _assert_rejected(blob, offset, mask, check)


def test_truncated_proof_rejected(wire_world):
    signed, verifier, query, result = wire_world
    blob = encode(result.proof)
    for cut in _sample_offsets(len(blob) - 1, step=29):
        with pytest.raises(WireFormatError):
            decode(blob[:cut])


def test_extended_proof_rejected(wire_world):
    signed, verifier, query, result = wire_world
    blob = encode(result.proof)
    with pytest.raises(WireFormatError) as excinfo:
        decode(blob + b"\x00")
    assert excinfo.value.reason == "trailing-bytes"


def test_swapped_artifact_rejected(wire_world):
    """A well-formed artifact of the wrong type is rejected, not confused."""
    signed, verifier, query, result = wire_world
    with pytest.raises(WireFormatError):
        from repro.core.proof import JoinQueryProof

        decode(encode(result.proof), expect=JoinQueryProof)
