"""Tampering over the wire: every byte flip is rejected with a typed error.

The contract under test: for any mutation of encoded bytes, the client either

* fails to decode with a :class:`~repro.wire.errors.WireFormatError`, or
* decodes something that then fails verification with a typed
  :class:`~repro.core.errors.VerificationError`.

Silent accepts (the flip goes unnoticed) and unhandled crashes (raw
``ValueError``/``TypeError``/... escaping) both fail the test.
"""

import pytest

from repro.core.errors import VerificationError
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.db.query import Conjunction, EqualityCondition, Projection, Query, RangeCondition
from repro.service.protocol import QueryResponse
from repro.wire import WireFormatError, decode, encode, manifest_id

#: Every sweep flips one byte at a sampled offset; the two XOR masks catch
#: both gross corruption (0xFF) and least-significant-bit nudges (0x01).
_MASKS = (0xFF, 0x01)


@pytest.fixture(scope="module")
def wire_world(employees_100):
    relation, signed = employees_100
    publisher = Publisher({"employees": signed})
    verifier = ResultVerifier({"employees": signed.manifest})
    query = Query(
        "employees",
        Conjunction(
            (
                RangeCondition("salary", 20_000, 60_000),
                EqualityCondition("dept", 1),
            )
        ),
        Projection(("name", "salary", "dept")),
    )
    result = publisher.answer(query)
    assert result.rows and result.proof is not None
    return signed, verifier, query, result


def _sample_offsets(length: int, step: int):
    """All framing bytes plus an even sample of the remainder."""
    offsets = set(range(min(8, length)))
    offsets.update(range(8, length, step))
    offsets.add(length - 1)
    return sorted(offsets)


def _assert_rejected(blob: bytes, offset: int, mask: int, check):
    tampered = blob[:offset] + bytes((blob[offset] ^ mask,)) + blob[offset + 1 :]
    try:
        artifact = decode(tampered)
    except WireFormatError:
        return  # rejected at the codec layer: typed, expected
    # Decoded despite the flip — verification must now catch it.  ``check``
    # raises VerificationError (or asserts) for anything but a clean accept.
    try:
        check(artifact)
    except (VerificationError, WireFormatError):
        return  # rejected at the verification layer: typed, expected
    pytest.fail(
        f"flipping byte {offset} with mask {mask:#x} was silently accepted"
    )


def test_tampered_query_response_rejected(wire_world):
    """Byte flips in the full response frame (rows + proof) never slip through."""
    signed, verifier, query, result = wire_world
    response = QueryResponse(
        rows=tuple(dict(row) for row in result.rows), proof=result.proof
    )
    blob = encode(response)

    def check(artifact):
        if not isinstance(artifact, QueryResponse):
            raise WireFormatError("tampering changed the message type")
        verifier.verify(query, artifact.rows, artifact.proof)
        raise AssertionError("tampered response verified cleanly")

    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=17):
            _assert_rejected(blob, offset, mask, check)


def test_tampered_proof_rejected(wire_world):
    """Byte flips in the VO itself are caught against the untampered rows."""
    signed, verifier, query, result = wire_world
    blob = encode(result.proof)

    def check(proof):
        verifier.verify(query, result.rows, proof)
        raise AssertionError("tampered proof verified cleanly")

    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=23):
            _assert_rejected(blob, offset, mask, check)


def test_tampered_signature_bundle_rejected(wire_world):
    """Flips inside the signature bundle can never yield the original bundle."""
    signed, verifier, query, result = wire_world
    bundle = result.proof.signatures
    blob = encode(bundle)
    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=3):

            def check(decoded, _original=bundle):
                assert decoded != _original, (
                    "a byte flip decoded back to the original bundle; "
                    "the encoding is not canonical"
                )
                raise VerificationError("bundle differs, as expected")

            _assert_rejected(blob, offset, mask, check)


def test_tampered_manifest_rejected(wire_world):
    """Flipped manifests either fail decoding or change their manifest id."""
    signed, _verifier, _query, _result = wire_world
    manifest = signed.manifest
    blob = encode(manifest)
    original_id = manifest_id(manifest)
    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=7):

            def check(decoded):
                assert manifest_id(decoded) != original_id, (
                    "a byte flip preserved the manifest id"
                )
                raise VerificationError("manifest id differs, as expected")

            _assert_rejected(blob, offset, mask, check)


def test_truncated_proof_rejected(wire_world):
    signed, verifier, query, result = wire_world
    blob = encode(result.proof)
    for cut in _sample_offsets(len(blob) - 1, step=29):
        with pytest.raises(WireFormatError):
            decode(blob[:cut])


def test_extended_proof_rejected(wire_world):
    signed, verifier, query, result = wire_world
    blob = encode(result.proof)
    with pytest.raises(WireFormatError) as excinfo:
        decode(blob + b"\x00")
    assert excinfo.value.reason == "trailing-bytes"


def test_swapped_artifact_rejected(wire_world):
    """A well-formed artifact of the wrong type is rejected, not confused."""
    signed, verifier, query, result = wire_world
    with pytest.raises(WireFormatError):
        from repro.core.proof import JoinQueryProof

        decode(encode(result.proof), expect=JoinQueryProof)


# -- update / rotation messages (the live-update pipeline) --------------------
#
# Contract, extended to the owner→publisher direction: for any byte flip in an
# UpdateRequest, UpdateResponse or ManifestRotated, either the codec rejects
# (WireFormatError) or the receiving side's validation rejects with a typed
# ServiceError — a tampered delta batch must never be *applied*, and a
# tampered rotation must never move a client's trust root.

from repro.core.errors import ReproError, UpdateApplicationError  # noqa: E402
from repro.core.publisher import Publisher as _Publisher  # noqa: E402
from repro.db import workload  # noqa: E402
from repro.service import (  # noqa: E402
    OwnerClient,
    PublicationServer,
    RecordDelta,
    ServiceError,
    ShardRouter,
    VerifyingClient,
    build_update_request,
)
from repro.wire.updates import UpdateRequest, UpdateResponse  # noqa: E402


def _fresh_world(owner):
    """An unstarted server over a fresh signed relation (no sockets needed)."""
    relation = workload.generate_employees(10, seed=33, photo_bytes=8)
    database = owner.publish_database({"employees": relation})
    router = ShardRouter({"hr": _Publisher(database.relations)})
    server = PublicationServer(router)
    batch = (
        RecordDelta(
            kind="insert",
            values={
                "salary": 333,
                "emp_id": "t-333",
                "name": "tamper",
                "dept": 2,
                "photo": b"\x11" * 8,
            },
        ),
        RecordDelta(kind="delete", values=relation.records[0].as_dict()),
    )
    request = build_update_request(
        owner.signature_scheme, database["employees"].manifest, batch
    )
    return database, router, server, batch, request


@pytest.fixture()
def update_world(owner):
    return _fresh_world(owner)


def _sweep_update_request(blob, check, step):
    """Byte-flip sweep with the service-layer error contract."""
    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=step):
            tampered = (
                blob[:offset] + bytes((blob[offset] ^ mask,)) + blob[offset + 1 :]
            )
            try:
                artifact = decode(tampered)
            except WireFormatError:
                continue  # codec-layer rejection: typed, expected
            try:
                check(artifact)
            except (WireFormatError, ServiceError, UpdateApplicationError):
                continue  # validation-layer rejection: typed, expected
            except ReproError:
                continue  # any other *typed* library error is acceptable
            pytest.fail(
                f"flipping byte {offset} with mask {mask:#x} of an update "
                "message was silently accepted"
            )


def test_tampered_update_request_never_applies(update_world):
    """Flipped delta batches are refused by the real server dispatch path."""
    database, router, server, batch, request = update_world
    blob = encode(request)
    baseline_version = database["employees"].version

    def check(artifact):
        if not isinstance(artifact, UpdateRequest):
            raise WireFormatError("tampering changed the message type")
        server.handler._answer_update(artifact)
        pytest.fail("a tampered update request was applied")

    _sweep_update_request(blob, check, step=11)
    assert database["employees"].version == baseline_version, (
        "a tampered update mutated the relation"
    )


def test_forged_update_request_rejected(update_world, forged_scheme):
    from repro.service import OwnerAuthError

    database, router, server, batch, request = update_world
    forged = build_update_request(
        forged_scheme, database["employees"].manifest, batch
    )
    with pytest.raises(OwnerAuthError):
        server.handler._answer_update(forged)
    assert database["employees"].version == 0


def test_replayed_update_request_rejected(update_world):
    from repro.service import StaleManifestError

    database, router, server, batch, request = update_world
    first = server.handler._answer_update(request)
    assert first.rotation.manifest.sequence == 2  # one insert + one delete
    with pytest.raises(StaleManifestError) as excinfo:
        server.handler._answer_update(request)
    assert excinfo.value.reason == "stale-update"


def test_tampered_update_response_rejected(update_world, owner):
    """Flips in the owner's acknowledgement are typed errors or visible
    differences — never a silently-accepted identical artifact."""
    database, router, server, batch, request = update_world
    response = server.handler._answer_update(request)
    blob = encode(response)
    owner_client = OwnerClient("localhost", 0, owner.signature_scheme)

    def check(artifact):
        if not isinstance(artifact, UpdateResponse):
            raise WireFormatError("tampering changed the message type")
        owner_client._validate_response("employees", request, batch, artifact)
        # Validation passed: the flip must at least be *visible* (the
        # canonical encoding guarantees a decoded flip is a different value;
        # the unsigned receipt region is tamper-evident, not authenticated).
        assert artifact != response, (
            "a byte flip decoded back to the original response; "
            "the encoding is not canonical"
        )
        raise ServiceError("response differs, as expected")

    _sweep_update_request(blob, check, step=13)


def test_tampered_rotation_never_repins(update_world, owner):
    """Every byte of a ManifestRotated is authenticated: flips are typed errors."""
    database, router, server, batch, request = update_world
    pinned = database["employees"].manifest  # the genesis manifest
    response = server.handler._answer_update(request)
    rotation = response.rotation
    blob = encode(rotation)
    client = VerifyingClient("localhost", 0)

    from repro.wire.updates import ManifestRotated

    def check(artifact):
        if not isinstance(artifact, ManifestRotated):
            raise WireFormatError("tampering changed the message type")
        client._validate_rotation("employees", pinned, artifact)
        pytest.fail("a tampered rotation passed the trust-root policy")

    _sweep_update_request(blob, check, step=9)


def test_replayed_stale_update_response_rejected(update_world, owner):
    """An old (captured) UpdateResponse cannot acknowledge a newer push."""
    database, router, server, batch, request = update_world
    stale_response = server.handler._answer_update(request)
    owner_client = OwnerClient("localhost", 0, owner.signature_scheme)
    # The owner moves on: a second batch against the rotated manifest.
    second_batch = (
        RecordDelta(
            kind="insert",
            values={
                "salary": 444,
                "emp_id": "t-444",
                "name": "later",
                "dept": 1,
                "photo": b"\x12" * 8,
            },
        ),
    )
    second_request = build_update_request(
        owner.signature_scheme,
        stale_response.rotation.manifest,
        second_batch,
    )
    with pytest.raises(ServiceError):
        owner_client._validate_response(
            "employees", second_request, second_batch, stale_response
        )


# -- per-scheme VO artifacts through real server dispatch ----------------------
#
# Wire version 3 serves every registered proof scheme; the byte-flip contract
# extends unchanged: for any flip in a scheme-tagged query response produced
# by the *real* server dispatch path (handler decode -> route -> proof
# construction -> encode), the verifying side either rejects with a typed
# error or the flip is visible (manifest-id mismatch) — never a silent accept
# and never an unhandled crash.

from repro.db.query import Query as _Query  # noqa: E402
from repro.schemes import available_schemes, get_scheme  # noqa: E402
from repro.service import PublicationServer as _Server  # noqa: E402
from repro.service.protocol import QueryRequest, encode_frame  # noqa: E402


@pytest.fixture(scope="module", params=available_schemes())
def scheme_dispatch_world(request, signature_scheme):
    """An unstarted server hosting one relation under one scheme."""
    scheme = get_scheme(request.param)
    relation = workload.generate_employees(30, seed=77, photo_bytes=8)
    publication = scheme.publish(relation, signature_scheme)
    publisher = scheme.make_publisher({"employees": publication})
    router = ShardRouter({"shard": publisher})
    server = _Server(router)
    verifier = scheme.verifier_for("employees", publication.manifest)
    return request.param, router, server, verifier


def test_tampered_scheme_response_rejected_via_server_dispatch(
    scheme_dispatch_world,
):
    """Byte flips in any scheme's served answer never slip through."""
    scheme_name, router, server, verifier = scheme_dispatch_world
    identifier = router.current_id("employees")
    query = _Query(
        "employees",
        Conjunction((RangeCondition("salary", 20_000, 60_000),)),
    )
    request_frame = encode_frame(
        QueryRequest(manifest_id=identifier, query=query)
    )[4:]
    handled = server.handler.handle_frame(request_frame)
    assert not handled.is_error
    blob = handled.payload
    honest = decode(blob)
    assert isinstance(honest, QueryResponse) and honest.rows
    verifier.verify(query, honest.rows, honest.proof)  # sanity: honest accepts

    def check(artifact):
        if not isinstance(artifact, QueryResponse):
            raise WireFormatError("tampering changed the message type")
        if artifact.manifest_id != identifier:
            # a client compares the stamp against its pinned id first; a
            # flipped stamp is a visible mismatch, not a silent accept
            raise VerificationError("manifest stamp differs, as expected")
        verifier.verify(query, artifact.rows, artifact.proof)
        _assert_equivalent_statement(
            scheme_name, honest.rows, honest.proof, artifact.rows, artifact.proof
        )
        raise VerificationError("equivalent proof of the same statement")

    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=19):
            _assert_rejected(blob, offset, mask, check)


def test_tampered_scheme_proof_rejected(scheme_dispatch_world):
    """Flips inside the scheme's VO itself, checked against untampered rows."""
    scheme_name, router, server, verifier = scheme_dispatch_world
    identifier = router.current_id("employees")
    query = _Query(
        "employees",
        Conjunction((RangeCondition("salary", 20_000, 60_000),)),
    )
    request_frame = encode_frame(
        QueryRequest(manifest_id=identifier, query=query)
    )[4:]
    honest = decode(server.handler.handle_frame(request_frame).payload)
    blob = encode(honest.proof)

    def check(proof):
        verifier.verify(query, honest.rows, proof)
        _assert_equivalent_statement(
            scheme_name, honest.rows, honest.proof, honest.rows, proof
        )
        raise VerificationError("equivalent proof of the same statement")

    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=13):
            _assert_rejected(blob, offset, mask, check)


def _assert_equivalent_statement(scheme_name, rows, proof, got_rows, got_proof):
    """A verified-after-flip artifact must prove the exact same statement.

    The VB-tree VO carries unauthenticated structure hints (``table_size``):
    a flip there can yield an *equivalent* proof — the identical signed
    covering digests authenticating the identical rows through the identical
    derived cover — which is sound to accept.  Anything beyond that (changed
    rows, changed signed content, or any such accept under another scheme's
    fully-pinned VO) is a genuine silent accept and fails the sweep.
    """
    assert scheme_name == "vbtree", (
        f"a tampered {scheme_name} answer verified cleanly"
    )
    assert got_rows == rows, "a flip changed the verified rows"
    assert got_proof.covering_digests == proof.covering_digests, (
        "a flip changed the signed covering digests yet still verified"
    )
    assert got_proof.covering_signatures == proof.covering_signatures, (
        "a flip changed the covering signatures yet still verified"
    )
    assert got_proof.leaf_range == proof.leaf_range and got_proof.fanout == proof.fanout, (
        "a flip changed the cover derivation inputs yet rebuilt the same digests"
    )


# -- freshness attestations (the bounded-staleness pipeline) ------------------
#
# Contract, extended to the freshness layer: a byte flip in an
# AttestationPush must never *store* on the server (real dispatch path), and
# a flip in the attestation a response carries must never pass a
# freshness-enforcing client's check — both reject with typed errors.

from repro.service import (  # noqa: E402
    AttestationPush,
    FreshnessPolicy,
    StaleAnswerError,
    build_attestation,
)
from repro.service.protocol import AttestationAck, ErrorResponse  # noqa: E402
from repro.wire.updates import FreshnessAttestation  # noqa: E402

_ATT_NOW_MS = 1_700_000_000_000


def test_tampered_attestation_push_never_stores(update_world, owner):
    """Flipped attestation pushes are refused by the real server dispatch."""
    database, router, server, batch, request = update_world
    manifest = database["employees"].manifest
    attestation = build_attestation(
        owner.signature_scheme, manifest, 1, _ATT_NOW_MS, 60_000
    )
    blob = encode(AttestationPush(attestation))
    handled = server.handler.handle_frame(blob)
    assert not handled.is_error, "the untampered push must store"
    baseline = encode(router.attestation_for("employees"))

    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=7):
            tampered = (
                blob[:offset] + bytes((blob[offset] ^ mask,)) + blob[offset + 1 :]
            )
            handled = server.handler.handle_frame(tampered)
            if handled.is_error:
                assert isinstance(decode(handled.payload), ErrorResponse)
                continue
            response = decode(handled.payload)
            assert not isinstance(response, AttestationAck), (
                f"flipping byte {offset} with mask {mask:#x} of an "
                "attestation push was acknowledged"
            )
    assert encode(router.attestation_for("employees")) == baseline, (
        "a tampered push changed the stored attestation"
    )


def test_tampered_attestation_refused_by_freshness_check(update_world, owner):
    """Flips in a served attestation never pass the client's freshness check."""
    database, router, server, batch, request = update_world
    manifest = database["employees"].manifest
    identifier = manifest_id(manifest)
    attestation = build_attestation(
        owner.signature_scheme, manifest, 1, _ATT_NOW_MS, 60_000
    )
    policy = FreshnessPolicy(
        max_staleness=30.0, clock=lambda: _ATT_NOW_MS / 1000 + 5.0
    )
    client = VerifyingClient(
        "127.0.0.1",
        9,  # never connected: the freshness check is wire-free
        trusted_manifests={"employees": manifest},
        freshness=policy,
    )
    client._check_freshness("employees", manifest, identifier, attestation)

    blob = encode(attestation)
    for mask in _MASKS:
        for offset in _sample_offsets(len(blob), step=5):
            tampered = (
                blob[:offset] + bytes((blob[offset] ^ mask,)) + blob[offset + 1 :]
            )
            try:
                artifact = decode(tampered)
            except WireFormatError:
                continue  # codec-layer rejection: typed, expected
            if not isinstance(artifact, FreshnessAttestation):
                continue  # tampering changed the artifact type: visible
            with pytest.raises(StaleAnswerError):
                client._check_freshness(
                    "employees", manifest, identifier, artifact
                )
