"""Golden vectors: the wire encoding is frozen, byte for byte.

Every vector is built from fixed inputs (no key generation, no randomness),
encoded, and compared against the hex stored in ``tests/golden/
wire_vectors.json``.  A mismatch means the wire format changed — which
breaks every deployed client — so any intentional format change must bump
:data:`repro.wire.WIRE_VERSION` and regenerate the vectors::

    PYTHONPATH=src python tests/test_wire_golden.py --regen
"""

import json
import os

import pytest

import repro.service.protocol as protocol
from repro.baselines.devanbu import DevanbuProof
from repro.baselines.naive import NaiveProof
from repro.baselines.vbtree import VBTreeProof
from repro.core.digest import BoundaryAssist, EntryAssist
from repro.core.proof import (
    BoundaryEntryProof,
    FilteredEntryProof,
    GreaterThanProof,
    JoinQueryProof,
    MatchedEntryProof,
    RangeQueryProof,
    SignatureBundle,
)
from repro.core.relational import RelationManifest, UpdateReceipt
from repro.crypto.aggregate import AggregateSignature
from repro.crypto.merkle import MerkleProof
from repro.crypto.rsa import RSAPublicKey
from repro.db.query import (
    Conjunction,
    EqualityCondition,
    JoinQuery,
    Projection,
    Query,
    RangeCondition,
)
from repro.db.schema import Attribute, AttributeType, KeyDomain, Schema
from repro.wire import decode, encode, from_json, to_json, updates

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "wire_vectors.json")


def _digest(seed: int) -> bytes:
    """A deterministic 32-byte pseudo-digest."""
    return bytes((seed * 31 + i * 7) % 256 for i in range(32))


def _schema() -> Schema:
    return Schema.build(
        "employees",
        [
            Attribute("salary", AttributeType.INTEGER, KeyDomain(0, 100_000)),
            Attribute("name", AttributeType.STRING, size_hint=12),
            Attribute("photo", AttributeType.BLOB, size_hint=64),
            Attribute("active", AttributeType.BOOLEAN, size_hint=1),
            Attribute("rating", AttributeType.FLOAT),
        ],
        key="salary",
    )


def build_vectors():
    """name -> artifact, all fully deterministic."""
    merkle_proof = MerkleProof(
        leaf_index=2,
        siblings=((_digest(1), True), (_digest(2), False)),
        tree_size=5,
    )
    entry_assist = EntryAssist(mht_root=_digest(3))
    boundary_canonical = BoundaryAssist(
        intermediate_digests=(_digest(4), _digest(5)),
        used_canonical=True,
        mht_root=_digest(6),
    )
    boundary_noncanonical = BoundaryAssist(
        intermediate_digests=(_digest(7),),
        used_canonical=False,
        canonical_digest=_digest(8),
        mht_proof=merkle_proof,
    )
    aggregate = AggregateSignature(value=0x1234_5678_9ABC_DEF0, count=3)
    bundle_individual = SignatureBundle(individual=(17, 23, 2**80 + 1))
    bundle_aggregate = SignatureBundle(aggregate=aggregate)
    matched = MatchedEntryProof(
        upper_assist=entry_assist,
        lower_assist=EntryAssist(mht_root=None),
        dropped_attribute_digests={"photo": _digest(9), "name": _digest(10)},
        eliminated_duplicate=True,
        revealed_attributes={
            "name": "Alice",
            "active": True,
            "rating": 4.5,
            "photo": b"\x00\xff",
            "note": None,
        },
        key=4200,
    )
    filtered = FilteredEntryProof(
        revealed_attributes={"dept": 2},
        attribute_leaf_digests={"name": _digest(11)},
        upper_chain_digest=_digest(12),
        lower_chain_digest=_digest(13),
        reason="predicate",
    )
    lower_boundary = BoundaryEntryProof(
        side="lower",
        chain_boundary=boundary_canonical,
        other_chain_digest=_digest(14),
        attribute_root=_digest(15),
    )
    upper_boundary = BoundaryEntryProof(
        side="upper",
        chain_boundary=boundary_noncanonical,
        other_chain_digest=_digest(16),
        attribute_root=_digest(17),
    )
    range_proof = RangeQueryProof(
        key_low=1000,
        key_high=2000,
        lower_boundary=lower_boundary,
        upper_boundary=upper_boundary,
        entries=(matched, filtered),
        signatures=bundle_aggregate,
        outer_neighbor_digest=None,
    )
    empty_range_proof = RangeQueryProof(
        key_low=5,
        key_high=5,
        lower_boundary=lower_boundary,
        upper_boundary=upper_boundary,
        entries=(),
        signatures=bundle_individual,
        outer_neighbor_digest=_digest(18),
    )
    join_proof = JoinQueryProof(
        left_proof=empty_range_proof,
        right_point_proofs={7: empty_range_proof},
    )
    greater_than = GreaterThanProof(
        alpha=10_000,
        predecessor_boundary=boundary_canonical,
        entry_assists=(entry_assist, EntryAssist(None)),
        right_delimiter_digest=_digest(19),
        signatures=bundle_aggregate,
    )
    public_key = RSAPublicKey(modulus=0xC0FFEE_0000_0001, exponent=65537)
    manifest = RelationManifest(
        schema=_schema(),
        scheme_kind="optimized",
        base=2,
        hash_name="sha256",
        public_key=public_key,
    )
    rotated_manifest = RelationManifest(
        schema=_schema(),
        scheme_kind="optimized",
        base=2,
        hash_name="sha256",
        public_key=public_key,
        sequence=7,
    )
    devanbu_manifest = RelationManifest(
        schema=_schema(),
        scheme_kind="optimized",
        base=2,
        hash_name="sha256",
        public_key=public_key,
        sequence=3,
        scheme="devanbu",
    )
    naive_proof = NaiveProof(signatures=(11, 2**70 + 5))
    naive_proof_aggregated = NaiveProof(aggregate=aggregate)
    devanbu_proof = DevanbuProof(
        expanded_rows=(
            {"salary": 4100, "name": "Ann", "active": True},
            {"salary": 4200, "name": "Bob", "active": False},
        ),
        sibling_digests=(_digest(27), _digest(28)),
        root_signature=0xBEEF,
        leaf_range=(3, 5),
        table_size=9,
        left_is_table_start=False,
        right_is_table_end=False,
    )
    vbtree_proof = VBTreeProof(
        covering_signatures=(21, 22),
        covering_digests=(_digest(29), _digest(30)),
        opening_digests=(),
        fanout=4,
        table_size=20,
        leaf_range=(4, 12),
    )
    receipt = UpdateReceipt(
        signatures_recomputed=3,
        digests_recomputed=1,
        entries_affected=(10, 11, 12),
        chain_messages_recomputed=3,
    )
    insert_delta = updates.RecordDelta(
        kind="insert",
        values={"salary": 4100, "name": "Carol", "active": True},
    )
    update_delta = updates.RecordDelta(
        kind="update",
        values={"salary": 4100, "name": "Carol", "active": False},
        old_values={"salary": 4100, "name": "Carol", "active": True},
    )
    update_request = updates.UpdateRequest(
        manifest_id=_digest(24),
        sequence=7,
        deltas=(insert_delta, update_delta),
        owner_signature=0x1CEB00DA,
    )
    manifest_rotated = updates.ManifestRotated(
        manifest=rotated_manifest,
        previous_id=_digest(25),
        owner_signature=0xF00D,
    )
    update_response = updates.UpdateResponse(
        receipt=receipt, rotation=manifest_rotated
    )
    attestation = updates.FreshnessAttestation(
        manifest_id=_digest(24),
        sequence=7,
        epoch=3,
        issued_at_ms=1_700_000_000_000,
        not_after_ms=1_700_000_030_000,
        owner_signature=0xFEED_FACE,
    )
    query = Query(
        "employees",
        Conjunction(
            (
                RangeCondition("salary", 1000, None),
                EqualityCondition("name", "Bob"),
            )
        ),
        Projection(("name",), distinct=True),
    )
    join_query = JoinQuery(
        "orders", "customers", "customer_id", "customer_id",
        Conjunction((RangeCondition("customer_id", None, 50),)),
        Projection(),
    )
    return {
        "merkle_proof": merkle_proof,
        "entry_assist": entry_assist,
        "boundary_assist_canonical": boundary_canonical,
        "boundary_assist_noncanonical": boundary_noncanonical,
        "aggregate_signature": aggregate,
        "signature_bundle_individual": bundle_individual,
        "signature_bundle_aggregate": bundle_aggregate,
        "matched_entry_proof": matched,
        "filtered_entry_proof": filtered,
        "boundary_entry_proof_lower": lower_boundary,
        "boundary_entry_proof_upper": upper_boundary,
        "range_query_proof": range_proof,
        "empty_range_query_proof": empty_range_proof,
        "join_query_proof": join_proof,
        "greater_than_proof": greater_than,
        "rsa_public_key": public_key,
        "key_domain": KeyDomain(0, 100_000),
        "schema": _schema(),
        "relation_manifest": manifest,
        "relation_manifest_rotated": rotated_manifest,
        "relation_manifest_devanbu_scheme": devanbu_manifest,
        "naive_proof": naive_proof,
        "naive_proof_aggregated": naive_proof_aggregated,
        "devanbu_proof": devanbu_proof,
        "vbtree_proof": vbtree_proof,
        "update_receipt": receipt,
        "record_delta_insert": insert_delta,
        "record_delta_update": update_delta,
        "update_request": update_request,
        "manifest_rotated": manifest_rotated,
        "update_response": update_response,
        "freshness_attestation": attestation,
        "query": query,
        "join_query": join_query,
        # service protocol envelopes share the registry and the guarantees
        "svc_list_request": protocol.ListRelationsRequest(),
        "svc_listing": protocol.RelationListing(
            entries=(("employees", _digest(20)),)
        ),
        "svc_manifest_request": protocol.ManifestRequest("employees"),
        "svc_manifest_response": protocol.ManifestResponse(manifest),
        "svc_query_request": protocol.QueryRequest(
            manifest_id=_digest(21), query=query, role="hr_manager"
        ),
        "svc_query_response": protocol.QueryResponse(
            rows=({"salary": 4200, "name": "Alice"},),
            proof=range_proof,
            manifest_id=_digest(21),
        ),
        # wire v4: answers may carry the owner-signed freshness attestation
        "svc_query_response_attested": protocol.QueryResponse(
            rows=({"salary": 4200, "name": "Alice"},),
            proof=range_proof,
            manifest_id=_digest(24),
            attestation=attestation,
        ),
        "svc_attestation_push": protocol.AttestationPush(attestation),
        "svc_attestation_ack": protocol.AttestationAck(
            relation_name="employees", sequence=7, epoch=3
        ),
        "svc_attestation_request": protocol.AttestationRequest("employees"),
        # the proof field is a union over registered scheme VO types: pin the
        # encoding of a baseline-scheme answer too
        "svc_query_response_vbtree": protocol.QueryResponse(
            rows=({"salary": 4100, "name": "Ann"},),
            proof=vbtree_proof,
            manifest_id=_digest(21),
        ),
        "svc_join_request": protocol.JoinRequest(
            left_manifest_id=_digest(22),
            right_manifest_id=_digest(23),
            join=join_query,
            role=None,
        ),
        "svc_join_response": protocol.JoinResponse(
            rows=({"orders.customer_id": 7},),
            left_rows=({"customer_id": 7},),
            proof=join_proof,
            left_manifest_id=_digest(22),
            right_manifest_id=_digest(23),
        ),
        "svc_rotation_request": protocol.RotationRequest("employees"),
        "svc_manifest_by_id_request": protocol.ManifestByIdRequest(_digest(26)),
        "svc_error_response": protocol.ErrorResponse(
            code="CompletenessError",
            reason="signature-mismatch",
            message="the aggregated signature does not match",
        ),
    }


def _load_golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def test_golden_file_covers_every_vector():
    golden = _load_golden()
    assert set(golden) == set(build_vectors())


@pytest.mark.parametrize("name", sorted(build_vectors()))
def test_golden_vector(name):
    artifact = build_vectors()[name]
    golden = _load_golden()[name]
    blob = encode(artifact)
    assert blob.hex() == golden["hex"], (
        f"wire encoding of {name} changed; if intentional, bump WIRE_VERSION "
        "and regenerate with: python tests/test_wire_golden.py --regen"
    )
    assert decode(blob) == artifact
    assert json.loads(to_json(artifact)) == golden["json"]
    assert from_json(json.dumps(golden["json"])) == artifact


def test_previous_wire_version_rejected_with_typed_error():
    """A v3 frame is refused with a typed version error, never mis-decoded.

    Wire version 4 added owner-signed freshness (the attestation artifact
    and the attestation stamps on answers), so a v3 frame's body layout
    differs; decoding must stop at the envelope with
    ``reason == "bad-version"`` rather than producing garbage.
    """
    from repro.wire.errors import WireFormatError

    for name, artifact in build_vectors().items():
        blob = bytearray(encode(artifact))
        assert blob[2] == 4, "vectors must be encoded at WIRE_VERSION 4"
        blob[2] = 3  # re-stamp the envelope as the previous format version
        with pytest.raises(WireFormatError) as excinfo:
            decode(bytes(blob))
        assert excinfo.value.reason == "bad-version", name


def test_future_wire_version_rejected_with_typed_error():
    blob = bytearray(encode(build_vectors()["relation_manifest"]))
    blob[2] = 5
    from repro.wire.errors import WireFormatError

    with pytest.raises(WireFormatError) as excinfo:
        decode(bytes(blob))
    assert excinfo.value.reason == "bad-version"


def _regen() -> None:
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    vectors = {
        name: {
            "hex": encode(artifact).hex(),
            "json": json.loads(to_json(artifact)),
        }
        for name, artifact in sorted(build_vectors().items())
    }
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(vectors, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(vectors)} vectors to {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
