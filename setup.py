"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments without the ``wheel`` package
(legacy editable installs: ``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
