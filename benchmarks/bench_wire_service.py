"""Wire-format + publication-service benchmark.

Measures serialized VO sizes across a selectivity sweep (the Figure 9
traffic-overhead trend), codec throughput, and end-to-end requests/sec
against a live :class:`~repro.service.server.PublicationServer`.

Results are merged into ``BENCH_hot_paths.json`` (``wire`` section +
``workloads`` entries) and the VO-size table is written to
``benchmarks/results/figure9_serialized_vo_sizes.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_wire_service.py            # full run
    PYTHONPATH=src python benchmarks/bench_wire_service.py --smoke    # quick run
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.wire import (  # noqa: E402
    SMOKE_WIRE_CONFIG,
    WireBenchConfig,
    run_wire_benchmarks,
)

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_hot_paths.json")
_RESULTS_TXT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "results",
    "figure9_serialized_vo_sizes.txt",
)


def _render_vo_table(sizes: dict) -> str:
    lines = [
        "Serialized VO size vs. query selectivity (Figure 9 traffic-overhead trend)",
        "",
        f"employees table: {sizes['table_rows']} rows, "
        f"{sizes['digest_bytes']}-byte digests, "
        f"{sizes['signature_bytes']}-byte signatures (512-bit demo keys)",
        "",
        "selectivity  rows  result_bytes  vo_bytes  vo_analytic_bytes  vo/result",
        "-----------  ----  ------------  --------  -----------------  ---------",
    ]
    for point in sizes["points"]:
        lines.append(
            f"{point['selectivity']:>11.2f}  {point['result_rows']:>4d}  "
            f"{point['result_bytes']:>12d}  {point['vo_bytes']:>8d}  "
            f"{point['vo_analytic_bytes']:>17d}  {point['overhead_ratio']:>9.3f}"
        )
    lines += [
        "",
        "Trend check (paper Fig. 9): authentication traffic grows with the number",
        "of result records only — per-record chain assists plus one condensed",
        "signature — so the VO/result overhead ratio falls as selectivity rises.",
        "vo_analytic_bytes is formula (4)'s digest/signature count model; the",
        "wire encoding adds framing, length prefixes and per-entry structure.",
    ]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run the scaled-down smoke workloads"
    )
    parser.add_argument(
        "--output", default=_DEFAULT_OUTPUT, help="JSON report to merge into"
    )
    args = parser.parse_args(argv)

    config = SMOKE_WIRE_CONFIG if args.smoke else WireBenchConfig()
    fragment = run_wire_benchmarks(config)

    # Merge into the hot-paths report so one file carries every perf number.
    report = {}
    if os.path.exists(args.output):
        with open(args.output, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    report.setdefault("workloads", {}).update(fragment["workloads"])
    report.setdefault("targets", {}).update(fragment.get("targets", {}))
    report["wire_config"] = fragment["config"]
    report["crypto_backend"] = fragment["crypto_backend"]
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if args.smoke:
        # Smoke numbers are for harness validation only; never overwrite the
        # committed full-run Figure 9 table with them.
        print(f"merged wire workloads into {args.output} (smoke: results table not written)")
    else:
        os.makedirs(os.path.dirname(_RESULTS_TXT), exist_ok=True)
        with open(_RESULTS_TXT, "w", encoding="utf-8") as handle:
            handle.write(_render_vo_table(fragment["workloads"]["wire_vo_sizes"]))
        print(f"merged wire workloads into {args.output}")
        print(f"wrote {_RESULTS_TXT}")
    codec = fragment["workloads"]["wire_codec_throughput"]
    service = fragment["workloads"]["service_throughput"]
    print(
        f"  codec: encode {codec['encode_ops_per_sec']:.0f}/s, "
        f"decode {codec['decode_ops_per_sec']:.0f}/s "
        f"({codec['vo_bytes']} bytes/VO)"
    )
    print(
        f"  service: {service['requests_per_sec_raw']:.0f} req/s raw, "
        f"{service['requests_per_sec_verified']:.0f} req/s verified "
        f"({service['clients']} clients)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
