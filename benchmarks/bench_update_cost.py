"""Section 6.3: update overheads — neighbour re-signing vs digest-hierarchy schemes.

The paper's claim: an update under the proposed scheme touches at most three
signatures, residing in at most two adjacent B+-tree leaves, regardless of the
table size; Merkle-hash-tree schemes (Devanbu) must re-hash the whole
leaf-to-root path and re-sign the root (a locking hot-spot), and the VB-tree
re-signs every node on the path.
"""

import pytest

from conftest import format_table, report
from repro.baselines.devanbu import DevanbuMHT
from repro.baselines.naive import NaiveSignedRelation
from repro.baselines.vbtree import VBTree
from repro.db.btree import BPlusTree
from repro.db.workload import generate_employees

# Run the table-regeneration tests under --benchmark-only as well: they are
# what actually reproduces the paper's figures.
pytestmark = pytest.mark.usefixtures("benchmark")

TABLE_SIZES = (128, 512, 2048)


def _fresh_salary(relation):
    used = set(relation.keys())
    return next(s for s in range(40_000, 100_000) if s not in used)


@pytest.fixture(scope="module")
def update_worlds(owner, signature_scheme):
    worlds = {}
    for size in TABLE_SIZES:
        relation = generate_employees(size, seed=31, photo_bytes=4)
        worlds[size] = {
            "relation": relation,
            "ours": owner.publish_relation(
                generate_employees(size, seed=31, photo_bytes=4)
            ),
            "devanbu": DevanbuMHT(
                generate_employees(size, seed=31, photo_bytes=4), signature_scheme
            ),
            "vbtree": VBTree(
                generate_employees(size, seed=31, photo_bytes=4), signature_scheme, fanout=8
            ),
            "naive": NaiveSignedRelation(
                generate_employees(size, seed=31, photo_bytes=4), signature_scheme
            ),
        }
    return worlds


def test_report_update_costs(update_worlds):
    rows = []
    ours_signatures = {}
    devanbu_hashes = {}
    for size, world in sorted(update_worlds.items()):
        ours = world["ours"]
        receipt = ours.insert_record(
            {
                "salary": _fresh_salary(ours.relation),
                "emp_id": "upd",
                "name": "U",
                "dept": 1,
                "photo": b"",
            }
        )
        victim = world["devanbu"].relation[size // 2]
        devanbu_cost = world["devanbu"].update_record(victim, victim.replace(name="u"))
        vb_victim = world["vbtree"].relation[size // 2]
        vbtree_cost = world["vbtree"].update_record(vb_victim, vb_victim.replace(name="u"))
        naive_victim = world["naive"].relation[size // 2]
        naive_cost = world["naive"].update_record(naive_victim, naive_victim.replace(name="u"))
        ours_signatures[size] = receipt.signatures_recomputed
        devanbu_hashes[size] = devanbu_cost[0]
        rows.append(
            (
                size,
                f"{receipt.signatures_recomputed} sigs",
                f"{devanbu_cost[0]} hashes + {devanbu_cost[1]} sig (root)",
                f"{vbtree_cost[1]} sigs (path)",
                f"{naive_cost[1]} sig",
            )
        )
    report(
        "update_cost_comparison",
        format_table(
            ("table rows", "this paper", "Devanbu MHT", "VB-tree", "naive per-tuple"),
            rows,
        ),
    )
    # Our update cost is constant; the MHT path grows with the table size.
    assert set(ours_signatures.values()) == {3}
    assert devanbu_hashes[TABLE_SIZES[-1]] > devanbu_hashes[TABLE_SIZES[0]]


def test_report_leaves_touched(update_worlds, owner):
    """Signatures co-located in B+-tree leaves: at most two leaves per update."""
    from repro.db.schema import KeyDomain
    from repro.db.workload import generate_sorted_values

    domain = KeyDomain(0, 1_000_000)
    values = generate_sorted_values(2000, domain, seed=3)
    published = owner.publish_value_list(values, domain)
    tree = BPlusTree(fanout=64)
    for position, value in enumerate(published.values):
        tree.insert(value, position, signature=published.signatures[position + 1])
    touched = []
    used = set(values)
    candidate = 500_001
    for _ in range(20):
        while candidate in used:
            candidate += 1
        used.add(candidate)
        touched.append(
            tree.update_with_signatures(candidate, None, lambda a, b, c: hash((a, b, c)))
        )
        candidate += 997
    report(
        "update_leaves_touched",
        format_table(
            ("update #", "leaves touched"),
            [(index + 1, count) for index, count in enumerate(touched)],
        ),
    )
    assert max(touched) <= 2


@pytest.mark.parametrize("size", TABLE_SIZES)
def test_our_update_time(benchmark, update_worlds, size):
    ours = update_worlds[size]["ours"]

    def insert_and_remove():
        row = {
            "salary": _fresh_salary(ours.relation),
            "emp_id": "bench",
            "name": "B",
            "dept": 1,
            "photo": b"",
        }
        ours.insert_record(row)
        ours.delete_record(ours.relation[ours.relation.range_indices(row["salary"], row["salary"])[0]])

    benchmark.pedantic(insert_and_remove, rounds=5, iterations=1)


@pytest.mark.parametrize("size", TABLE_SIZES[:2])
def test_devanbu_update_time(benchmark, update_worlds, size):
    baseline = update_worlds[size]["devanbu"]

    def touch():
        victim = baseline.relation[size // 3]
        baseline.update_record(victim, victim.replace(name="t"))

    benchmark.pedantic(touch, rounds=3, iterations=1)
