"""Figure 9: user traffic overhead (%) vs record size, for |Q| in {1, 2, 5, 10, 100}.

Two tables are regenerated:

* the analytical curve from formula (4), exactly as the paper plots it, and
* the *measured* overhead, where the verification-object size is counted from
  the proofs the implementation actually ships (digests and signatures valued
  at the paper's Table 1 sizes, i.e. 16-byte digests and 128-byte signatures).

The paper's qualitative claims to reproduce: the overhead drops sharply as |Q|
grows beyond one, stabilises around |Q| = 5, and at that point stays within a
small multiple of the 25%-at-512-bytes figure quoted in Section 6.1.
"""

import pytest

from conftest import format_table, report
from repro.core.cost_model import CostParameters, figure9_series, user_traffic_bytes
from repro.core.publisher import Publisher
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.workload import generate_employees

# Run the table-regeneration tests under --benchmark-only as well: they are
# what actually reproduces the paper's figures.
pytestmark = pytest.mark.usefixtures("benchmark")

RECORD_SIZES = (64, 128, 256, 512, 1024, 1536, 2048)
RESULT_SIZES = (1, 2, 5, 10, 100)
PARAMS = CostParameters()


@pytest.fixture(scope="module")
def published(owner):
    relation = generate_employees(300, seed=99, photo_bytes=64)
    signed = owner.publish_relation(relation)
    return relation, signed, Publisher({"employees": signed})


def _query_for_result_size(relation, size):
    keys = relation.keys()
    low = keys[50]
    high = keys[50 + size - 1]
    return Query("employees", Conjunction((RangeCondition("salary", low, high),)))


def _measured_vo_bytes(publisher, relation, size):
    query = _query_for_result_size(relation, size)
    result = publisher.answer(query)
    assert len(result.rows) == size
    return result.proof.size_bytes(PARAMS.m_digest_bytes, PARAMS.m_sign_bytes)


def test_report_figure9(published):
    """Regenerate both the analytical and the measured Figure 9 series."""
    relation, _, publisher = published

    analytical = figure9_series(RECORD_SIZES, RESULT_SIZES, parameters=PARAMS)
    rows = []
    for record_size in RECORD_SIZES:
        row = [record_size]
        for result_size in RESULT_SIZES:
            index = RECORD_SIZES.index(record_size)
            row.append(f"{analytical[result_size][index]:.1f}")
        rows.append(tuple(row))
    report(
        "figure9_analytical_traffic_overhead",
        format_table(
            ("record bytes",) + tuple(f"|Q|={q}" for q in RESULT_SIZES), rows
        ),
    )

    measured_rows = []
    vo_bytes = {size: _measured_vo_bytes(publisher, relation, size) for size in RESULT_SIZES}
    for record_size in RECORD_SIZES:
        row = [record_size]
        for result_size in RESULT_SIZES:
            overhead = 100.0 * vo_bytes[result_size] / (result_size * record_size)
            row.append(f"{overhead:.1f}")
        measured_rows.append(tuple(row))
    report(
        "figure9_measured_traffic_overhead",
        format_table(
            ("record bytes",) + tuple(f"|Q|={q}" for q in RESULT_SIZES), measured_rows
        ),
    )

    # Shape assertions: overhead decreases with |Q| and with the record size.
    for result_size, larger in zip(RESULT_SIZES, RESULT_SIZES[1:]):
        assert (
            vo_bytes[result_size] / result_size > vo_bytes[larger] / larger
        ), "per-entry VO cost must shrink as the aggregated signature is amortised"
    overhead_512_q5 = 100.0 * vo_bytes[5] / (5 * 512)
    assert overhead_512_q5 < 60.0  # paper: ~25% analytically; same order measured


def test_analytical_headline_numbers():
    """Spot-check the analytical curve against Section 6.1's description."""
    assert user_traffic_bytes(1) == (44 * 16 + 128)
    series = figure9_series((512,), (1, 5))
    assert series[1][0] > 3 * series[5][0]


@pytest.mark.parametrize("result_size", [1, 10, 100])
def test_vo_construction_time(benchmark, published, result_size):
    """Time the publisher-side proof construction per result size."""
    relation, _, publisher = published
    query = _query_for_result_size(relation, result_size)
    benchmark(publisher.answer, query)
