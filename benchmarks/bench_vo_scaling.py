"""Section 6.1 scaling claim: VO size is linear in |Q| and independent of |DB|.

The Devanbu et al. baseline's VO additionally grows logarithmically with the
table size; ours must stay flat as the database grows, and both grow with the
result size (ours linearly, by 3 digests per entry).
"""

import pytest

from conftest import format_table, report
from repro.baselines.devanbu import DevanbuMHT
from repro.core.cost_model import CostParameters
from repro.core.publisher import Publisher
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.workload import generate_employees

# Run the table-regeneration tests under --benchmark-only as well: they are
# what actually reproduces the paper's figures.
pytestmark = pytest.mark.usefixtures("benchmark")

PARAMS = CostParameters()
TABLE_SIZES = (128, 512, 2048)
RESULT_SIZE = 10


@pytest.fixture(scope="module")
def worlds(owner, signature_scheme):
    """Our scheme and the Devanbu baseline over the same tables."""
    built = {}
    for size in TABLE_SIZES:
        relation = generate_employees(size, seed=1, photo_bytes=8)
        signed = owner.publish_relation(relation)
        built[size] = (
            relation,
            Publisher({"employees": signed}),
            DevanbuMHT(relation, signature_scheme),
        )
    return built


def _range_for(relation, size):
    keys = relation.keys()
    start = len(keys) // 3
    return keys[start], keys[start + size - 1]


def test_report_vo_vs_database_size(worlds):
    rows = []
    ours = {}
    devanbu = {}
    for table_size, (relation, publisher, baseline) in sorted(worlds.items()):
        low, high = _range_for(relation, RESULT_SIZE)
        query = Query("employees", Conjunction((RangeCondition("salary", low, high),)))
        result = publisher.answer(query)
        assert len(result.rows) == RESULT_SIZE
        our_bytes = result.proof.size_bytes(PARAMS.m_digest_bytes, PARAMS.m_sign_bytes)
        _, baseline_proof = baseline.answer_range(low, high)
        baseline_bytes = baseline_proof.size_bytes(
            PARAMS.m_digest_bytes, PARAMS.m_sign_bytes
        )
        ours[table_size] = (result.proof.digest_count, our_bytes)
        devanbu[table_size] = (baseline_proof.digest_count, baseline_bytes)
        rows.append(
            (
                table_size,
                result.proof.digest_count,
                our_bytes,
                baseline_proof.digest_count,
                baseline_bytes,
                baseline_proof.boundary_rows_exposed,
            )
        )
    report(
        "vo_scaling_with_database_size",
        format_table(
            (
                "table rows",
                "ours digests",
                "ours bytes",
                "devanbu digests",
                "devanbu bytes",
                "devanbu exposed rows",
            ),
            rows,
        ),
    )
    # Ours is flat in the table size; Devanbu grows with log |DB|.
    assert ours[TABLE_SIZES[0]][0] == ours[TABLE_SIZES[-1]][0]
    assert devanbu[TABLE_SIZES[-1]][0] > devanbu[TABLE_SIZES[0]][0]


def test_report_vo_vs_result_size(worlds):
    relation, publisher, _ = worlds[TABLE_SIZES[-1]]
    rows = []
    digest_counts = {}
    for result_size in (1, 2, 5, 10, 50, 100):
        low, high = _range_for(relation, result_size)
        query = Query("employees", Conjunction((RangeCondition("salary", low, high),)))
        result = publisher.answer(query)
        assert len(result.rows) == result_size
        digest_counts[result_size] = result.proof.digest_count
        rows.append(
            (
                result_size,
                result.proof.digest_count,
                result.proof.signature_count,
                result.proof.size_bytes(PARAMS.m_digest_bytes, PARAMS.m_sign_bytes),
            )
        )
    report(
        "vo_scaling_with_result_size",
        format_table(("|Q|", "digests", "signatures", "bytes"), rows),
    )
    # Linear growth: a constant number of extra digests per extra result entry.
    # Formula (4) budgets 3 per entry; the implementation ships 2 for SELECT *
    # queries because the verifier recomputes MHT(r.A) from the returned values
    # instead of receiving it as a digest.
    per_entry_large = (digest_counts[100] - digest_counts[50]) / 50
    per_entry_small = (digest_counts[10] - digest_counts[5]) / 5
    assert per_entry_large == per_entry_small
    assert per_entry_large in (2, 3)


@pytest.mark.parametrize("table_size", TABLE_SIZES)
def test_proof_generation_time_vs_table_size(benchmark, worlds, table_size):
    relation, publisher, _ = worlds[table_size]
    low, high = _range_for(relation, RESULT_SIZE)
    query = Query("employees", Conjunction((RangeCondition("salary", low, high),)))
    benchmark(publisher.answer, query)
