"""Perf-regression harness for the memoized proof-engine fast path.

Writes ``BENCH_hot_paths.json`` at the repository root (override with
``--output``): ops/sec for owner signing, publisher range/join answering and
verifier checking, cached vs. a faithful replica of the uncached seed path.

Usage::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py            # full run
    PYTHONPATH=src python benchmarks/bench_hot_paths.py --smoke    # quick run

The same workloads run (in smoke mode) inside tier-1 via
``tests/test_bench_hot_paths_smoke.py``, so a regression that breaks the
cached/uncached proof equivalence fails every ordinary ``pytest`` run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.hot_paths import (  # noqa: E402
    SMOKE_CONFIG,
    HotPathConfig,
    run_hot_path_benchmarks,
)

_DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_hot_paths.json",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run the scaled-down smoke workloads"
    )
    parser.add_argument(
        "--output", default=_DEFAULT_OUTPUT, help="where to write the JSON report"
    )
    args = parser.parse_args(argv)

    config = SMOKE_CONFIG if args.smoke else HotPathConfig()
    report = run_hot_path_benchmarks(config)

    # The wire/scale benches merge their workloads and floors into the same
    # file; re-running the hot paths must refresh its own numbers without
    # discarding theirs (or the hand-tuned ceilings in ``targets``).
    if os.path.exists(args.output):
        with open(args.output, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
        for key, value in existing.get("targets", {}).items():
            report["targets"].setdefault(key, value)
        for name, entry in existing.get("workloads", {}).items():
            report["workloads"].setdefault(name, entry)
        for section in ("wire_config", "scale_config"):
            if section in existing:
                report[section] = existing[section]

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"wrote {args.output}")
    for name, entry in report["workloads"].items():
        if "uncached_ops_per_sec" not in entry:
            continue  # merged wire/scale workloads report other metrics
        print(
            f"  {name:28s} uncached {entry['uncached_ops_per_sec']:>10.1f}/s"
            f"  cached {entry['cached_ops_per_sec']:>10.1f}/s"
            f"  speedup {entry['speedup']:>6.2f}x"
        )
    print(f"  proofs identical: {report['proofs_identical']}")
    print(f"  targets met: {report['targets_met']}")
    return 0 if report["proofs_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
