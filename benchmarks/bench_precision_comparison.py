"""Precision comparison: what each scheme discloses beyond the query answer.

This regenerates the qualitative comparison behind the paper's introduction and
Section 2.3: for the Figure 1 scenario (an HR executive restricted to salaries
below 9000) and for projected queries, count how many out-of-scope rows and
attribute *values* each scheme reveals to the user.

* the proposed scheme reveals none (digests only),
* Devanbu et al. reveal the two boundary tuples (row-level leak) and every
  attribute of every returned tuple (column-level leak).
"""

import pytest

from conftest import format_table, report
from repro.baselines.devanbu import DevanbuMHT
from repro.core.cost_model import CostParameters
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.db.access_control import add_visibility_columns
from repro.db.query import Conjunction, Projection, Query, RangeCondition
from repro.db.workload import (
    figure1_employee_relation,
    figure1_policy,
    generate_employees,
)

# Run the table-regeneration tests under --benchmark-only as well: they are
# what actually reproduces the paper's figures.
pytestmark = pytest.mark.usefixtures("benchmark")

PARAMS = CostParameters()


@pytest.fixture(scope="module")
def figure1_world(owner, signature_scheme):
    policy = figure1_policy()
    augmented = add_visibility_columns(figure1_employee_relation(), policy)
    signed = owner.publish_relation(augmented)
    publisher = Publisher({"employees": signed}, policy=policy)
    verifier = ResultVerifier({"employees": signed.manifest}, policy=policy)
    baseline = DevanbuMHT(figure1_employee_relation(), signature_scheme)
    return publisher, verifier, baseline


def test_report_row_level_precision(figure1_world):
    """The HR executive's rewritten query: salary < 9000."""
    publisher, verifier, baseline = figure1_world
    query = Query("employees", Conjunction((RangeCondition("salary", None, 9999),)))
    ours = publisher.answer(query, role="hr_executive")
    verifier.verify(query, ours.rows, ours.proof, role="hr_executive")
    our_leaked_rows = sum(
        1 for row in ours.rows if row["salary"] >= 9000
    )

    _, baseline_proof = baseline.answer_range(1, 8999)
    baseline_leaked_rows = sum(
        1 for row in baseline_proof.expanded_rows if row["salary"] >= 9000
    )
    rows = [
        ("this paper", len(ours.rows), our_leaked_rows),
        ("Devanbu MHT", len(baseline_proof.expanded_rows), baseline_leaked_rows),
    ]
    report(
        "precision_row_level_figure1",
        format_table(("scheme", "rows shown to executive", "rows beyond policy bound"), rows),
    )
    assert our_leaked_rows == 0
    assert baseline_leaked_rows >= 1  # the 12100 record is exposed


def test_report_column_level_precision(owner, signature_scheme):
    """Projection: SELECT name — how many non-projected values travel to the user."""
    relation = generate_employees(100, seed=5, photo_bytes=256)
    signed = owner.publish_relation(relation)
    publisher = Publisher({"employees": signed})
    verifier = ResultVerifier({"employees": signed.manifest})
    baseline = DevanbuMHT(generate_employees(100, seed=5, photo_bytes=256), signature_scheme)

    keys = relation.keys()
    low, high = keys[20], keys[39]
    query = Query(
        "employees",
        Conjunction((RangeCondition("salary", low, high),)),
        Projection(attributes=("name",)),
    )
    ours = publisher.answer(query)
    verifier.verify(query, ours.rows, ours.proof)
    our_extra_values = sum(len(row) - 2 for row in ours.rows)  # beyond key+name

    _, baseline_proof = baseline.answer_range(low, high)
    schema_width = len(relation.schema.attribute_names)
    baseline_extra_values = sum(
        schema_width - 2 for _ in baseline_proof.expanded_rows
    )
    blob_bytes_shipped = sum(
        len(row["photo"]) for row in baseline_proof.expanded_rows
    )
    rows = [
        ("this paper", our_extra_values, 0),
        ("Devanbu MHT", baseline_extra_values, blob_bytes_shipped),
    ]
    report(
        "precision_column_level_projection",
        format_table(
            ("scheme", "non-projected values shipped", "BLOB bytes shipped"), rows
        ),
    )
    assert our_extra_values == 0
    assert baseline_extra_values > 0 and blob_bytes_shipped > 0


def test_multipoint_unsupported_by_baseline(figure1_world):
    """Limitation (5): multipoint queries only work under the proposed scheme."""
    publisher, verifier, baseline = figure1_world
    from repro.db.query import EqualityCondition

    query = Query(
        "employees",
        Conjunction((RangeCondition("salary", None, 9999), EqualityCondition("dept", 1))),
    )
    ours = publisher.answer(query, role="hr_manager")
    verifier.verify(query, ours.rows, ours.proof, role="hr_manager")
    assert [row["name"] for row in ours.rows] == ["A", "D"]
    # The baseline has no notion of filtering on an unsorted attribute: the
    # closest it can do is return the full salary range.
    baseline_rows, _ = baseline.answer_range(1, 9999)
    assert len(baseline_rows) > len(ours.rows)


def test_figure1_query_time(benchmark, figure1_world):
    publisher, verifier, _ = figure1_world
    query = Query("employees", Conjunction((RangeCondition("salary", None, 9999),)))

    def round_trip():
        result = publisher.answer(query, role="hr_executive")
        verifier.verify(query, result.rows, result.proof, role="hr_executive")

    benchmark(round_trip)
