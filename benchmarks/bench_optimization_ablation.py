"""Section 5.1 ablation: conceptual vs optimized digest derivation.

The conceptual scheme needs O(U - L) hash invocations per digest (the paper's
"60 hours for a 32-bit key" estimate); the optimized scheme needs
O(B · log_B(U - L)).  The ablation measures owner-side digest construction and
user-side verification hash counts across growing domain widths, and times the
two schemes directly on a domain small enough for both to finish.
"""

import pytest


from conftest import format_table, report
from repro.core.digest import ConceptualChainScheme, OptimizedChainScheme
from repro.crypto.hashing import HASH_COUNTER

# Run the table-regeneration tests under --benchmark-only as well: they are
# what actually reproduces the paper's figures.
pytestmark = pytest.mark.usefixtures("benchmark")

SMALL_WIDTH = 4096  # both schemes are feasible here
WIDE_WIDTHS = (2**8, 2**12, 2**16, 2**20, 2**24, 2**32)

# Every scheme below is built with memoize=False: this module reproduces the
# paper's *per-operation* hash counts and timings, which the digest memos
# (introduced by the fast-path PR) would otherwise make artificially low.


def test_report_hash_counts_vs_domain_width():
    rows = []
    optimized_counts = {}
    for width in WIDE_WIDTHS:
        value = width // 3
        total = width - value - 1
        scheme = OptimizedChainScheme(width, "upper", base=2, memoize=False)
        HASH_COUNTER.reset()
        scheme.commitment(value, total)
        optimized = HASH_COUNTER.reset()
        optimized_counts[width] = optimized
        conceptual = total + 1  # exact count the conceptual scheme would need
        rows.append((width, conceptual, optimized, f"{conceptual / optimized:,.0f}x"))
    report(
        "optimization_ablation_owner_hashes",
        format_table(
            ("domain width", "conceptual hashes", "optimized hashes", "saving"),
            rows,
        ),
    )
    # Optimized hashing grows polylogarithmically: doubling the exponent bits
    # must far less than double the hash count ratio against the domain width.
    assert optimized_counts[2**32] < 10_000
    assert optimized_counts[2**32] < optimized_counts[2**8] * 64


def test_report_verifier_hash_counts_small_domain():
    rows = []
    for kind, scheme in (
        ("conceptual", ConceptualChainScheme(SMALL_WIDTH, "upper", memoize=False)),
        ("optimized B=2", OptimizedChainScheme(SMALL_WIDTH, "upper", base=2, memoize=False)),
        ("optimized B=8", OptimizedChainScheme(SMALL_WIDTH, "upper", base=8, memoize=False)),
    ):
        value, alpha = 1000, 3000
        total = SMALL_WIDTH - value - 1
        delta_c = SMALL_WIDTH - alpha
        assist = scheme.boundary_proof(value, total, delta_c)
        HASH_COUNTER.reset()
        scheme.recompute_from_boundary(delta_c, assist)
        boundary_hashes = HASH_COUNTER.reset()
        entry_assist = scheme.entry_assist(value, total)
        HASH_COUNTER.reset()
        scheme.recompute_from_value(value, total, entry_assist)
        entry_hashes = HASH_COUNTER.reset()
        rows.append((kind, boundary_hashes, entry_hashes))
    report(
        "optimization_ablation_verifier_hashes",
        format_table(("scheme", "boundary-proof hashes", "entry hashes"), rows),
    )
    conceptual_row, optimized_row = rows[0], rows[1]
    assert optimized_row[2] < conceptual_row[2]


def test_conceptual_commitment_time(benchmark):
    scheme = ConceptualChainScheme(SMALL_WIDTH, "upper", memoize=False)
    benchmark(scheme.commitment, 100, SMALL_WIDTH - 101)


def test_optimized_commitment_time_small_domain(benchmark):
    scheme = OptimizedChainScheme(SMALL_WIDTH, "upper", base=2, memoize=False)
    benchmark(scheme.commitment, 100, SMALL_WIDTH - 101)


def test_optimized_commitment_time_32bit_domain(benchmark):
    scheme = OptimizedChainScheme(2**32, "upper", base=2, memoize=False)
    benchmark(scheme.commitment, 123_456_789, 2**32 - 123_456_790)


@pytest.mark.parametrize("base", [2, 3, 8, 16])
def test_optimized_boundary_verification_time(benchmark, base):
    scheme = OptimizedChainScheme(2**32, "upper", base=base, memoize=False)
    value, alpha = 1_000_000, 2_000_000
    total = 2**32 - value - 1
    delta_c = 2**32 - alpha
    assist = scheme.boundary_proof(value, total, delta_c)
    benchmark(scheme.recompute_from_boundary, delta_c, assist)
