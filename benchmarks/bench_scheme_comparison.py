"""Scheme-comparison benchmark over the live publication service.

Publishes the same relation under every registered proof scheme (chain,
Devanbu MHT, naive per-tuple signatures, VB-tree), hosts one shard per scheme
behind one :class:`~repro.service.server.PublicationServer`, and measures at
the verifying client: serialized VO bytes and verification wall time per
selectivity, plus the owner-update cost per scheme — the paper's Section
2.3/6 comparisons reproduced end to end instead of in-process.

Results are merged into ``BENCH_hot_paths.json`` (``scheme_config`` section +
the ``scheme_comparison`` workload) and a comparison table is written to
``benchmarks/results/scheme_comparison.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scheme_comparison.py           # full run
    PYTHONPATH=src python benchmarks/bench_scheme_comparison.py --smoke   # quick run
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.schemes import (  # noqa: E402
    SMOKE_SCHEME_CONFIG,
    SchemeBenchConfig,
    run_scheme_benchmarks,
)

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_hot_paths.json")
_RESULTS_TXT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "results",
    "scheme_comparison.txt",
)


def _render_table(comparison: dict) -> str:
    lines = [
        "Proof-scheme comparison over the live publication service",
        "",
        f"employees table: {comparison['table_rows']} rows "
        "(1 KiB blob attribute per record; the chain scheme ships digests for",
        "unqueried attributes while the tree baselines expose whole tuples —",
        "the paper's Section 2.3 precision criticism)",
        "",
        "scheme   complete  selectivity  rows  vo_bytes  verify_ms",
        "-------  --------  -----------  ----  --------  ---------",
    ]
    for name, entry in sorted(comparison["schemes"].items()):
        complete = "yes" if entry["proves_completeness"] else "no"
        for point in entry["points"]:
            lines.append(
                f"{name:7s}  {complete:8s}  {point['selectivity']:>11.2f}  "
                f"{point['result_rows']:>4d}  {point['vo_bytes']:>8d}  "
                f"{point['verify_ms']:>9.3f}"
            )
    lines += [
        "",
        "Owner-update cost (one mid-table record update through each scheme's",
        "publisher; Section 6.3's comparison):",
        "",
        "scheme   signatures  digests  best_ms",
        "-------  ----------  -------  -------",
    ]
    for name, entry in sorted(comparison["schemes"].items()):
        update = entry["update"]
        lines.append(
            f"{name:7s}  {update['signatures_recomputed']:>10d}  "
            f"{update['digests_recomputed']:>7d}  {update['best_ms']:>7.3f}"
        )
    lines += [
        "",
        f"CI-gated claim: chain VO bytes ({comparison['chain_vo_bytes_low_selectivity']}) "
        f"< Devanbu VO bytes ({comparison['devanbu_vo_bytes_low_selectivity']}) at "
        f"selectivity {comparison['lowest_selectivity']}: "
        f"{comparison['chain_vo_below_devanbu']}",
        "",
        "Trends (paper Sections 2.3 and 6): the chain VO is flat in the table",
        "size and never exposes out-of-range tuples; the Devanbu VO carries",
        "O(log n) digests plus whole boundary/result tuples; the naive and",
        "VB-tree VOs are smaller but prove authenticity only (the verifying",
        "client requires an explicit allow_incomplete opt-in for them); chain",
        "updates re-sign a constant 2-3 chain entries while the tree schemes",
        "re-hash (and the VB-tree re-signs) whole root paths.",
    ]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run the scaled-down smoke workloads"
    )
    parser.add_argument(
        "--output", default=_DEFAULT_OUTPUT, help="JSON report to merge into"
    )
    args = parser.parse_args(argv)

    config = SMOKE_SCHEME_CONFIG if args.smoke else SchemeBenchConfig()
    fragment = run_scheme_benchmarks(config)
    comparison = fragment["workloads"]["scheme_comparison"]

    report = {}
    if os.path.exists(args.output):
        with open(args.output, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    report.setdefault("workloads", {})
    report["scheme_config"] = fragment["scheme_config"]
    report["workloads"]["scheme_comparison"] = comparison
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"merged scheme comparison into {args.output}")

    if not args.smoke or not os.path.exists(_RESULTS_TXT):
        os.makedirs(os.path.dirname(_RESULTS_TXT), exist_ok=True)
        with open(_RESULTS_TXT, "w", encoding="utf-8") as handle:
            handle.write(_render_table(comparison))
        print(f"wrote {_RESULTS_TXT}")

    print(
        "chain VO below Devanbu VO at low selectivity: "
        f"{comparison['chain_vo_below_devanbu']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
