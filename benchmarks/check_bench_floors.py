"""CI gate: fail when hot-path speedups regress below the stored floors.

Compares a freshly measured benchmark report (usually a ``--smoke`` run
produced in CI) against the speedup floors stored in the committed
``BENCH_hot_paths.json`` (its ``targets`` section).  Exits non-zero when any
measured speedup is below its floor, when the cached/uncached proof
equivalence broke, or — if the fresh report carries the wire/service
workloads — when worker-pool answers stopped being byte-identical to
in-process answers.

Usage::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py --smoke --output fresh.json
    python benchmarks/check_bench_floors.py fresh.json

    PYTHONPATH=src python benchmarks/bench_wire_service.py --smoke --output fresh.json
    python benchmarks/check_bench_floors.py fresh.json --wire

    PYTHONPATH=src python benchmarks/bench_scheme_comparison.py --smoke --output fresh.json
    python benchmarks/check_bench_floors.py fresh.json --schemes

    PYTHONPATH=src python benchmarks/bench_scale.py --smoke --output fresh.json
    python benchmarks/check_bench_floors.py fresh.json --scale
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_COMMITTED = os.path.join(_ROOT, "BENCH_hot_paths.json")

#: targets key in the committed report -> workload whose speedup it bounds
_FLOOR_WORKLOADS = {
    "publisher_repeated_range_speedup_min": "publisher_repeated_range",
    "owner_bulk_signing_speedup_min": "owner_bulk_signing",
    "crt_single_shot_signing_speedup_min": "crt_single_shot_signing",
    "batch_verify_speedup_min": "batch_verify",
    # The fixed-base floor is backend-aware: the committed (pure-Python)
    # report stores the modest pure floor, while a fresh report produced with
    # gmpy2 active carries a 2.0x floor in its own targets section — the gate
    # takes the max of the two, so the native lane is held to the native bar.
    "fixed_base_verify_speedup_min": "fixed_base_verify",
    # For wal_ingest "speedup" is the fraction of no-WAL ingest throughput
    # retained under fsync="batch" (< 1 by construction) — the floor bounds
    # the write-ahead logging overhead, not a cache win.
    "wal_ingest_speedup_min": "wal_ingest",
}


def _check_hot_paths(floors: dict, fresh: dict, failures: list) -> None:
    if fresh.get("proofs_identical") is not True:
        failures.append("cached and uncached proofs are no longer byte-identical")
    workloads = fresh.get("workloads", {})
    for floor_key, workload in _FLOOR_WORKLOADS.items():
        floor = floors.get(floor_key)
        if floor is None:
            failures.append(f"committed report is missing floor {floor_key!r}")
            continue
        own_target = fresh.get("targets", {}).get(floor_key)
        if own_target is not None:
            floor = max(floor, own_target)
        entry = workloads.get(workload)
        if entry is None:
            failures.append(f"fresh report is missing workload {workload!r}")
            continue
        speedup = entry.get("speedup", 0.0)
        status = "ok" if speedup >= floor else "REGRESSION"
        print(f"{workload:28s} speedup {speedup:8.2f}x  floor {floor:5.2f}x  {status}")
        if speedup < floor:
            failures.append(
                f"{workload} speedup {speedup:.2f}x fell below the {floor:.2f}x floor"
            )


def _check_wire(floors: dict, fresh: dict, failures: list) -> None:
    """Gates on the wire/service workloads (run with ``--wire``).

    Absolute requests/sec depend on the runner, so the CI gate leans on the
    machine-independent invariants: pooled answers byte-identical, decode at
    least as fast as a conservative fraction of encode (the seed's decoder
    ran at ~0.36x of encode; the zero-copy cursor must stay at or above
    0.55x even on a noisy runner), the freshness-attestation check costing
    at most 15% of verified throughput (one *memoized* signature verify plus
    the attestation's wire bytes per answer), and the replica group retaining at
    least half its healthy verified request rate through an abrupt
    single-replica kill — with zero unverified answers accepted.  One
    deliberately *very* conservative absolute floor backs them up:
    ``wire_verified_requests_per_sec_min`` catches order-of-magnitude
    collapses of the verified serving path without being sensitive to
    runner speed.
    """
    workloads = fresh.get("workloads", {})
    pool = workloads.get("service_pool")
    if pool is None:
        failures.append("fresh report is missing workload 'service_pool'")
    elif pool.get("pooled_identical") is not True:
        failures.append("worker-pool answers are no longer byte-identical")
    else:
        print("service_pool                 pooled answers byte-identical  ok")
    codec = workloads.get("wire_codec_throughput")
    if codec is None:
        failures.append("fresh report is missing workload 'wire_codec_throughput'")
    else:
        encode_rate = codec.get("encode_ops_per_sec", 0.0)
        decode_rate = codec.get("decode_ops_per_sec", 0.0)
        ratio = decode_rate / encode_rate if encode_rate else 0.0
        status = "ok" if ratio >= 0.55 else "REGRESSION"
        print(
            f"wire_codec_throughput        decode/encode {ratio:8.2f}   "
            f"floor  0.55   {status}"
        )
        if ratio < 0.55:
            failures.append(
                f"decode throughput fell to {ratio:.2f}x of encode "
                "(the zero-copy decoder floor is 0.55x)"
            )
    service = workloads.get("service_throughput")
    if service is None:
        failures.append("fresh report is missing workload 'service_throughput'")
    else:
        verified = service.get("requests_per_sec_verified", 0.0)
        verified_floor = floors.get("wire_verified_requests_per_sec_min")
        if verified_floor is None:
            failures.append(
                "committed report is missing floor "
                "'wire_verified_requests_per_sec_min'"
            )
        else:
            status = "ok" if verified >= verified_floor else "REGRESSION"
            print(
                f"service_throughput           verified {verified:8.2f} req/s "
                f"floor {verified_floor:5.2f}   {status}"
            )
            if verified < verified_floor:
                failures.append(
                    f"verified serving throughput {verified:.2f} req/s fell "
                    f"below the {verified_floor:.2f} req/s floor"
                )
        fresh_rate = service.get("requests_per_sec_verified_fresh")
        if fresh_rate is None:
            failures.append(
                "fresh report is missing 'requests_per_sec_verified_fresh' "
                "(freshness-enforcing service workload)"
            )
        else:
            # The freshness check is a memoized signature verify (the same
            # attestation rides every answer) plus the attestation's wire
            # bytes; at smoke sizes the answers themselves are cheap enough
            # that this fixed per-answer cost is legitimately ~10%, so the
            # floor is 0.85 (the committed full-size run measures ~1.0).
            ratio = fresh_rate / verified if verified else 0.0
            status = "ok" if ratio >= 0.85 else "REGRESSION"
            print(
                f"service_throughput           fresh/verified {ratio:7.2f}   "
                f"floor  0.85   {status}"
            )
            if ratio < 0.85:
                failures.append(
                    f"freshness-enforcing throughput fell to {ratio:.2f}x of "
                    "plain verified throughput (the attestation-check floor "
                    "is 0.85x)"
                )
    availability = workloads.get("replica_failover_availability")
    if availability is None:
        failures.append(
            "fresh report is missing workload 'replica_failover_availability'"
        )
    else:
        ratio = availability.get("availability_ratio", 0.0)
        status = "ok" if ratio >= 0.5 else "REGRESSION"
        print(
            f"replica_failover             avail ratio {ratio:9.2f}   "
            f"floor  0.50   {status}"
        )
        if ratio < 0.5:
            failures.append(
                f"verified availability through a single-replica kill fell to "
                f"{ratio:.2f}x of the healthy rate (the floor is 0.5x)"
            )
        unverified = availability.get("unverified_answers")
        if unverified != 0:
            failures.append(
                f"the failover workload accepted {unverified} unverified "
                "answer(s); every accepted answer must be verified"
            )


def _check_schemes(fresh: dict, failures: list) -> None:
    """Gates on the scheme-comparison workload (run with ``--schemes``).

    The paper's comparative claim, kept true on a live service: at the
    sweep's lowest selectivity the chain scheme's serialized VO must stay
    below the Devanbu MHT's (which ships O(log n) digests plus whole
    boundary/result tuples).  Also checks that every registered scheme
    actually served and verified answers at every selectivity point.
    """
    comparison = fresh.get("workloads", {}).get("scheme_comparison")
    if comparison is None:
        failures.append("fresh report is missing workload 'scheme_comparison'")
        return
    chain = comparison.get("chain_vo_bytes_low_selectivity", 0)
    devanbu = comparison.get("devanbu_vo_bytes_low_selectivity", 0)
    # Compared directly from the measured byte counts — the report's own
    # chain_vo_below_devanbu boolean is informational, not trusted.
    below = bool(chain) and bool(devanbu) and chain < devanbu
    status = "ok" if below else "REGRESSION"
    print(
        f"scheme_comparison            chain VO {chain}B < devanbu VO "
        f"{devanbu}B at selectivity {comparison.get('lowest_selectivity')}  {status}"
    )
    if not below:
        failures.append(
            f"chain-scheme VO ({chain} bytes) is no longer below the Devanbu "
            f"VO ({devanbu} bytes) at low selectivity"
        )
    schemes = comparison.get("schemes", {})
    for required in ("chain", "devanbu", "naive", "vbtree"):
        entry = schemes.get(required)
        if entry is None:
            failures.append(f"scheme {required!r} is missing from the comparison")
            continue
        if not entry.get("points"):
            failures.append(f"scheme {required!r} served no selectivity points")
        if any(p.get("verify_ms", 0) <= 0 for p in entry.get("points", [])):
            failures.append(f"scheme {required!r} reported a non-positive verify time")


#: targets key -> (operation class, latency field) for the scale ceilings
_SCALE_LATENCY_CEILINGS = {
    "scale_point_p99_ms_max": "point",
    "scale_range_p99_ms_max": "range",
    "scale_update_p99_ms_max": "update",
}


def _check_scale(floors: dict, fresh: dict, failures: list) -> None:
    """Gates on the zipfian scale workload (run with ``--scale``).

    Latency gates are *ceilings* measured at the committed 10^5-row tier, so
    a smoke run (fewer rows, same code paths) must also stay under them; the
    ingest gate is a conservative rows/second minimum.  Smaller tiers being
    faster is exactly the property that makes the smoke run a sound gate.
    """
    serving = fresh.get("workloads", {}).get("scale_serving")
    if serving is None:
        failures.append("fresh report is missing workload 'scale_serving'")
        return
    latency = serving.get("latency_ms", {})
    for floor_key, op_class in _SCALE_LATENCY_CEILINGS.items():
        ceiling = floors.get(floor_key)
        if ceiling is None:
            failures.append(f"committed report is missing ceiling {floor_key!r}")
            continue
        entry = latency.get(op_class)
        if entry is None or not entry.get("count"):
            failures.append(f"scale run served no {op_class!r} operations")
            continue
        p99 = entry.get("p99_ms", float("inf"))
        status = "ok" if p99 <= ceiling else "REGRESSION"
        print(
            f"scale {op_class:<6s} p99 {p99:10.2f} ms  ceiling {ceiling:8.2f} ms  "
            f"{status}"
        )
        if p99 > ceiling:
            failures.append(
                f"scale {op_class} p99 latency {p99:.2f} ms exceeded the "
                f"{ceiling:.2f} ms ceiling"
            )
    ingest_floor = floors.get("scale_ingest_rows_per_sec_min")
    ingest = serving.get("ingest", {})
    rate = ingest.get("rows_per_sec", 0.0)
    if ingest_floor is None:
        failures.append("committed report is missing floor 'scale_ingest_rows_per_sec_min'")
    else:
        status = "ok" if rate >= ingest_floor else "REGRESSION"
        print(
            f"scale ingest   {rate:10.2f} rows/s  floor {ingest_floor:8.2f}        "
            f"{status}"
        )
        if rate < ingest_floor:
            failures.append(
                f"scale ingest {rate:.2f} rows/s fell below the "
                f"{ingest_floor:.2f} rows/s floor"
            )
    if serving.get("recovery", {}).get("streams_rows") is not True:
        failures.append(
            "scale recovery materialised the relation's rows instead of "
            "streaming them from the store"
        )
    else:
        print("scale recovery streams rows from disk  ok")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly measured benchmark JSON report")
    parser.add_argument(
        "--floors",
        default=_COMMITTED,
        help="committed report holding the speedup floors (targets section)",
    )
    parser.add_argument(
        "--wire",
        action="store_true",
        help="gate on the wire/service workloads instead of the hot paths",
    )
    parser.add_argument(
        "--schemes",
        action="store_true",
        help="gate on the scheme-comparison workload instead of the hot paths",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="gate on the zipfian scale workload instead of the hot paths",
    )
    parser.add_argument(
        "--expect-backend",
        metavar="NAME",
        help=(
            "fail unless the fresh report was produced with this crypto "
            "backend active (e.g. 'gmpy2' in the CI native lane, so a silent "
            "fallback to pure Python cannot masquerade as a passing run)"
        ),
    )
    args = parser.parse_args(argv)

    with open(args.floors, "r", encoding="utf-8") as handle:
        floors = json.load(handle).get("targets", {})
    with open(args.fresh, "r", encoding="utf-8") as handle:
        fresh = json.load(handle)

    failures: list = []
    if args.expect_backend:
        actual = fresh.get("crypto_backend", {}).get("backend")
        status = "ok" if actual == args.expect_backend else "REGRESSION"
        print(f"crypto backend               {actual}  expected {args.expect_backend}  {status}")
        if actual != args.expect_backend:
            failures.append(
                f"fresh report was produced with crypto backend {actual!r}, "
                f"expected {args.expect_backend!r}"
            )
    if args.wire:
        _check_wire(floors, fresh, failures)
    elif args.schemes:
        _check_schemes(fresh, failures)
    elif args.scale:
        _check_scale(floors, fresh, failures)
    else:
        _check_hot_paths(floors, fresh, failures)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all gated benchmarks are at or above their stored floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
