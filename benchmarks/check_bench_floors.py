"""CI gate: fail when hot-path speedups regress below the stored floors.

Compares a freshly measured benchmark report (usually a ``--smoke`` run
produced in CI) against the speedup floors stored in the committed
``BENCH_hot_paths.json`` (its ``targets`` section).  Exits non-zero when any
measured speedup is below its floor or when the cached/uncached proof
equivalence broke.

Usage::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py --smoke --output fresh.json
    python benchmarks/check_bench_floors.py fresh.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_COMMITTED = os.path.join(_ROOT, "BENCH_hot_paths.json")

#: targets key in the committed report -> workload whose speedup it bounds
_FLOOR_WORKLOADS = {
    "publisher_repeated_range_speedup_min": "publisher_repeated_range",
    "owner_bulk_signing_speedup_min": "owner_bulk_signing",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly measured benchmark JSON report")
    parser.add_argument(
        "--floors",
        default=_COMMITTED,
        help="committed report holding the speedup floors (targets section)",
    )
    args = parser.parse_args(argv)

    with open(args.floors, "r", encoding="utf-8") as handle:
        floors = json.load(handle).get("targets", {})
    with open(args.fresh, "r", encoding="utf-8") as handle:
        fresh = json.load(handle)

    failures = []
    if fresh.get("proofs_identical") is not True:
        failures.append("cached and uncached proofs are no longer byte-identical")

    workloads = fresh.get("workloads", {})
    for floor_key, workload in _FLOOR_WORKLOADS.items():
        floor = floors.get(floor_key)
        if floor is None:
            failures.append(f"committed report is missing floor {floor_key!r}")
            continue
        entry = workloads.get(workload)
        if entry is None:
            failures.append(f"fresh report is missing workload {workload!r}")
            continue
        speedup = entry.get("speedup", 0.0)
        status = "ok" if speedup >= floor else "REGRESSION"
        print(f"{workload:28s} speedup {speedup:8.2f}x  floor {floor:5.2f}x  {status}")
        if speedup < floor:
            failures.append(
                f"{workload} speedup {speedup:.2f}x fell below the {floor:.2f}x floor"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all hot-path speedups are at or above their stored floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
