"""Figure 10: user computation overhead (ms) vs the polynomial base B.

Regenerates:

* the analytical curve of formula (5) for result sizes {1, 5, 10} and B in
  [2, 10] (paper units: Chash = 50 µs, Csign = 5 ms, 32-bit key domain),
* the Section 6.2 worked examples (Cuser for |Q| = 1, 100, 1000 at B = 2),
* a *measured* sweep over B: the number of hash operations the verifier
  actually performs against the implementation, scaled by the paper's Chash so
  the shape can be compared directly, and
* wall-clock verification timings via pytest-benchmark.

The claims to reproduce: Cuser is minimised at B in {2, 3}, grows linearly in
the result size, and the |Q| = 1 worked example lands around 15.5 ms.
"""

import pytest

from conftest import format_table, report
from repro.core.cost_model import (
    CostParameters,
    figure10_series,
    optimal_base,
    section_6_2_worked_examples,
    user_computation_seconds,
)
from repro.core.owner import DataOwner
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.crypto.hashing import HASH_COUNTER
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.workload import generate_employees

# Run the table-regeneration tests under --benchmark-only as well: they are
# what actually reproduces the paper's figures.
pytestmark = pytest.mark.usefixtures("benchmark")

BASES = tuple(range(2, 11))
RESULT_SIZES = (1, 5, 10)
PARAMS = CostParameters()


def test_report_figure10_analytical():
    series = figure10_series(BASES, RESULT_SIZES, parameters=PARAMS)
    rows = []
    for index, base in enumerate(BASES):
        rows.append(
            (base,)
            + tuple(f"{series[size][index]:.2f}" for size in RESULT_SIZES)
        )
    report(
        "figure10_analytical_computation_ms",
        format_table(("B",) + tuple(f"|Q|={q}" for q in RESULT_SIZES), rows),
    )
    for size in RESULT_SIZES:
        assert optimal_base(size, candidate_bases=BASES) in (2, 3)


def test_report_section_6_2_worked_examples():
    examples = section_6_2_worked_examples(PARAMS)
    rows = [
        (size, f"{seconds * 1000:.1f} ms", reference)
        for (size, seconds), reference in zip(
            sorted(examples.items()), ("15.5 ms", "689 ms", "6.81 s")
        )
    ]
    report(
        "section_6_2_worked_examples",
        format_table(("|Q|", "formula (5)", "paper quotes"), rows),
    )
    assert examples[1] == pytest.approx(15.5e-3, rel=0.05)
    assert examples[1000] == pytest.approx(6.81, rel=0.05)


@pytest.fixture(scope="module")
def base_sweep_worlds(signature_scheme):
    """One published relation per base B (smaller sweep: signing is the slow part)."""
    relation = generate_employees(60, seed=10, photo_bytes=8)
    worlds = {}
    for base in (2, 3, 4, 6, 8, 10):
        owner = DataOwner(signature_scheme=signature_scheme, base=base)
        signed = owner.publish_relation(relation)
        worlds[base] = (
            relation,
            Publisher({"employees": signed}),
            # memoize=False: this module reproduces the paper's per-query user
            # computation, so the verifier must hash from scratch every time.
            ResultVerifier({"employees": signed.manifest}, memoize=False),
        )
    return worlds


def _query(relation, size):
    keys = relation.keys()
    return Query(
        "employees",
        Conjunction((RangeCondition("salary", keys[20], keys[20 + size - 1]),)),
    )


def test_report_measured_hash_counts(base_sweep_worlds):
    """Measured verifier hash counts per base, scaled by the paper's Chash."""
    rows = []
    minima = {}
    for base, (relation, publisher, verifier) in sorted(base_sweep_worlds.items()):
        row = [base]
        for size in RESULT_SIZES:
            query = _query(relation, size)
            result = publisher.answer(query)
            HASH_COUNTER.reset()
            report_obj = verifier.verify(query, result.rows, result.proof)
            hashes = report_obj.hash_operations
            row.append(f"{hashes} ({hashes * PARAMS.c_hash * 1000 + PARAMS.c_sign * 1000:.1f} ms)")
            minima.setdefault(size, {})[base] = hashes
        rows.append(tuple(row))
    report(
        "figure10_measured_hash_counts",
        format_table(
            ("B",) + tuple(f"|Q|={q} hashes (paper-unit ms)" for q in RESULT_SIZES), rows
        ),
    )
    # Shape: verification hashing grows with the result size for every base,
    # and B = 2 stays close to the best base.  (Formula (5) charges the worst
    # case of B hashes per digit, which is minimised at B = 2-3; the measured
    # counts hash the *actual* digits, whose average is (B-1)/2, so the
    # measured curve is flatter than the analytical one.)
    for base in minima[RESULT_SIZES[0]].keys() if minima else []:
        assert (
            minima[RESULT_SIZES[0]][base]
            < minima[RESULT_SIZES[1]][base]
            < minima[RESULT_SIZES[2]][base]
        )
    for size in RESULT_SIZES:
        best = min(minima[size].values())
        assert minima[size][2] <= 2.0 * best


@pytest.mark.parametrize("result_size", RESULT_SIZES)
def test_verification_time_base2(benchmark, base_sweep_worlds, result_size):
    relation, publisher, verifier = base_sweep_worlds[2]
    query = _query(relation, result_size)
    result = publisher.answer(query)
    benchmark(verifier.verify, query, result.rows, result.proof)


@pytest.mark.parametrize("base", [2, 3, 8])
def test_verification_time_result10(benchmark, base_sweep_worlds, base):
    relation, publisher, verifier = base_sweep_worlds[base]
    query = _query(relation, 10)
    result = publisher.answer(query)
    benchmark(verifier.verify, query, result.rows, result.proof)


def test_analytical_linear_growth():
    c10 = user_computation_seconds(10)
    c100 = user_computation_seconds(100)
    c1000 = user_computation_seconds(1000)
    assert (c1000 - c100) / 900 == pytest.approx((c100 - c10) / 90, rel=1e-9)
