"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper (see
DESIGN.md for the experiment index).  Besides the pytest-benchmark timings,
each module writes the regenerated table — the same rows/series the paper
reports — to ``benchmarks/results/<experiment>.txt`` and prints it, so the
numbers recorded in EXPERIMENTS.md can be regenerated with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
import sys

import pytest

# Make the src/ layout importable when the package is not installed.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.owner import DataOwner  # noqa: E402
from repro.crypto.signature import rsa_scheme  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: 512-bit keys keep owner-side signing fast; all size accounting uses the
#: paper's Table 1 parameters (128-bit digests, 1024-bit signatures) instead of
#: the test key's actual sizes, so the reported numbers match the paper's units.
BENCH_KEY_BITS = 512


@pytest.fixture(scope="session")
def signature_scheme():
    return rsa_scheme(bits=BENCH_KEY_BITS)


@pytest.fixture(scope="session")
def owner(signature_scheme):
    return DataOwner(signature_scheme=signature_scheme, scheme_kind="optimized", base=2)


def report(name: str, lines) -> None:
    """Print a regenerated table and persist it under ``benchmarks/results``."""
    text = "\n".join(lines)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def format_table(headers, rows) -> list:
    """Render a simple fixed-width text table."""
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = ["  ".join(str(h).rjust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).rjust(w) for cell, w in zip(row, widths)))
    return lines
