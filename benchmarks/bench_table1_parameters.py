"""Table 1: cost parameters — paper defaults next to values measured on this host.

The paper takes ``Chash = 50 µs`` and ``Csign = 5 ms`` from 2005-era
measurements.  This benchmark measures the primitive costs of the actual
implementation (SHA-256 hashing, RSA signature verification) so every other
experiment can be read both in paper units and in measured units.
"""

import pytest

from conftest import format_table, report
from repro.core.cost_model import CostParameters
from repro.crypto.hashing import default_hash
from repro.crypto.rsa import generate_keypair

# Run the table-regeneration tests under --benchmark-only as well: they are
# what actually reproduces the paper's figures.
pytestmark = pytest.mark.usefixtures("benchmark")


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=1024)


def test_hash_cost_chash(benchmark):
    """Measured Chash: one SHA-256 invocation over a digest-sized input."""
    hash_function = default_hash()
    payload = b"x" * 32
    benchmark(hash_function.digest, payload)


def test_signature_verification_cost_csign(benchmark, keypair):
    """Measured Csign: one RSA-1024 signature verification."""
    message = b"chain message"
    signature = keypair.private_key.sign(message)
    result = benchmark(keypair.public_key.verify, message, signature)
    assert result


def test_signature_generation_cost(benchmark, keypair):
    """Owner-side signing cost (not part of Table 1, reported for completeness)."""
    benchmark(keypair.private_key.sign, b"chain message")


def test_report_table1(benchmark):
    """Regenerate Table 1 with paper defaults and measured values side by side."""
    import timeit

    parameters = CostParameters()
    hash_function = default_hash()
    keypair = generate_keypair(bits=1024)
    signature = keypair.private_key.sign(b"m")

    measured_hash = timeit.timeit(lambda: hash_function.digest(b"x" * 32), number=20_000) / 20_000
    measured_verify = timeit.timeit(
        lambda: keypair.public_key.verify(b"m", signature), number=200
    ) / 200

    rows = [
        ("Chash", "50 us", f"{measured_hash * 1e6:.2f} us"),
        ("Csign", "5 ms", f"{measured_verify * 1e3:.3f} ms"),
        ("Mdigest", f"{parameters.m_digest_bits} bits", "256 bits (SHA-256 default)"),
        ("Msign", f"{parameters.m_sign_bits} bits", "1024 bits (RSA-1024)"),
    ]
    report(
        "table1_parameters",
        format_table(("parameter", "paper default", "measured / library default"), rows),
    )
    benchmark(hash_function.digest, b"x" * 32)
    assert measured_hash < parameters.c_hash  # modern hardware is faster than 2005
