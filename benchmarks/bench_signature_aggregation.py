"""Section 5.2 ablation: aggregated vs individual signatures per query result.

The paper observes that signature verification is ~100x more expensive than
hashing, so condensing the |Q| chain signatures into one aggregate both shrinks
the VO by (|Q| - 1) * Msign bits and cuts verification to a single signature
operation.  The benchmark compares the two transports end to end.
"""

import pytest

from conftest import format_table, report
from repro.core.cost_model import CostParameters
from repro.core.publisher import Publisher
from repro.core.verifier import ResultVerifier
from repro.db.query import Conjunction, Query, RangeCondition
from repro.db.workload import generate_employees

# Run the table-regeneration tests under --benchmark-only as well: they are
# what actually reproduces the paper's figures.
pytestmark = pytest.mark.usefixtures("benchmark")

PARAMS = CostParameters()
RESULT_SIZES = (1, 10, 50, 200)


@pytest.fixture(scope="module")
def world(owner):
    relation = generate_employees(400, seed=77, photo_bytes=8)
    signed = owner.publish_relation(relation)
    return (
        relation,
        Publisher({"employees": signed}, aggregate=True),
        Publisher({"employees": signed}, aggregate=False),
        ResultVerifier({"employees": signed.manifest}),
    )


def _query(relation, size):
    keys = relation.keys()
    return Query(
        "employees",
        Conjunction((RangeCondition("salary", keys[100], keys[100 + size - 1]),)),
    )


def test_report_aggregation_savings(world):
    relation, aggregated_pub, individual_pub, verifier = world
    rows = []
    for size in RESULT_SIZES:
        query = _query(relation, size)
        aggregated = aggregated_pub.answer(query)
        individual = individual_pub.answer(query)
        aggregated_report = verifier.verify(query, aggregated.rows, aggregated.proof)
        individual_report = verifier.verify(query, individual.rows, individual.proof)
        rows.append(
            (
                size,
                aggregated.proof.signature_count,
                individual.proof.signature_count,
                aggregated.proof.size_bytes(PARAMS.m_digest_bytes, PARAMS.m_sign_bytes),
                individual.proof.size_bytes(PARAMS.m_digest_bytes, PARAMS.m_sign_bytes),
                aggregated_report.signature_verifications,
                individual_report.signature_verifications,
            )
        )
    report(
        "signature_aggregation",
        format_table(
            (
                "|Q|",
                "agg sigs",
                "indiv sigs",
                "agg VO bytes",
                "indiv VO bytes",
                "agg verify ops",
                "indiv verify ops",
            ),
            rows,
        ),
    )
    last = rows[-1]
    assert last[1] == 1 and last[2] == RESULT_SIZES[-1]
    assert last[4] - last[3] == (RESULT_SIZES[-1] - 1) * PARAMS.m_sign_bytes


@pytest.mark.parametrize("size", (10, 200))
def test_verify_aggregated(benchmark, world, size):
    relation, aggregated_pub, _, verifier = world
    query = _query(relation, size)
    result = aggregated_pub.answer(query)
    benchmark(verifier.verify, query, result.rows, result.proof)


@pytest.mark.parametrize("size", (10, 200))
def test_verify_individual_signatures(benchmark, world, size):
    relation, _, individual_pub, verifier = world
    query = _query(relation, size)
    result = individual_pub.answer(query)
    benchmark(verifier.verify, query, result.rows, result.proof)
