"""Scale benchmark: zipfian serving latency + ingest at 10^5 (and 10^6) rows.

Streams a dense-key relation onto disk through the relation store
(``build_stored_chain``), re-attaches it the way recovery does
(bounded-memory), then drives a live server with a seeded scrambled-zipfian
point/range/update mix and records p50/p95/p99 latency per operation class
plus ingest rows/second.

Results are merged into ``BENCH_hot_paths.json`` (``scale_serving``
workload) and the latency table is written to
``benchmarks/results/scale_serving_latency.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py            # 10^5-row tier
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke    # quick run
    PYTHONPATH=src python benchmarks/bench_scale.py --rows 1000000  # nightly tier
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.scale import (  # noqa: E402
    SMOKE_SCALE_CONFIG,
    ScaleConfig,
    run_scale_benchmarks,
)

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_hot_paths.json")
_RESULTS_TXT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "results",
    "scale_serving_latency.txt",
)


def _render_table(serving: dict) -> str:
    ingest = serving["ingest"]
    recovery = serving["recovery"]
    lines = [
        "Zipfian serving latency at scale (seeded scrambled-zipfian mix, "
        f"theta {serving['zipf_theta']})",
        "",
        f"rows: {serving['rows']}   operations: {serving['operations']}   "
        f"ingest: {ingest['rows_per_sec']:.0f} rows/s "
        f"({ingest['seconds']:.1f}s, batch {ingest['batch_size']})",
        f"recovery attach: {recovery['seconds']:.2f}s, "
        f"tracemalloc peak {recovery['peak_mib']:.1f} MiB, "
        f"streams rows from disk: {recovery['streams_rows']}",
        "",
        "op class  count    p50 ms    p95 ms    p99 ms   mean ms",
        "--------  -----  --------  --------  --------  --------",
    ]
    for kind in ("point", "range", "update"):
        entry = serving["latency_ms"].get(kind)
        if entry is None:
            continue
        lines.append(
            f"{kind:<8s}  {entry['count']:>5d}  {entry['p50_ms']:>8.2f}  "
            f"{entry['p95_ms']:>8.2f}  {entry['p99_ms']:>8.2f}  "
            f"{entry['mean_ms']:>8.2f}"
        )
    lines += [
        "",
        "Queries are fully verified client-side; updates run the owner's",
        "sign -> push -> authenticated-rotation round trip and persist through",
        "the sqlite relation store, so every latency carries its honest",
        "cryptographic and durability cost.",
    ]
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run the scaled-down smoke workload"
    )
    parser.add_argument(
        "--rows", type=int, default=None, help="override the row count (e.g. 1000000)"
    )
    parser.add_argument(
        "--operations", type=int, default=None, help="override the operation count"
    )
    parser.add_argument(
        "--output", default=_DEFAULT_OUTPUT, help="JSON report to merge into"
    )
    args = parser.parse_args(argv)

    config = SMOKE_SCALE_CONFIG if args.smoke else ScaleConfig()
    overrides = {}
    if args.rows is not None:
        overrides["rows"] = args.rows
    if args.operations is not None:
        overrides["operations"] = args.operations
    if overrides:
        config = dataclasses.replace(config, **overrides)

    fragment = run_scale_benchmarks(config)
    serving = fragment["workloads"]["scale_serving"]

    report = {}
    if os.path.exists(args.output):
        with open(args.output, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    report.setdefault("workloads", {}).update(fragment["workloads"])
    report["scale_config"] = fragment["config"]
    report["crypto_backend"] = fragment["crypto_backend"]
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if args.smoke:
        print(
            f"merged scale_serving into {args.output} "
            "(smoke: results table not written)"
        )
    else:
        os.makedirs(os.path.dirname(_RESULTS_TXT), exist_ok=True)
        with open(_RESULTS_TXT, "w", encoding="utf-8") as handle:
            handle.write(_render_table(serving))
        print(f"merged scale_serving into {args.output}")
        print(f"wrote {_RESULTS_TXT}")
    ingest = serving["ingest"]
    print(
        f"  ingest: {ingest['rows_per_sec']:.0f} rows/s over {ingest['rows']} rows"
    )
    for kind, entry in serving["latency_ms"].items():
        print(
            f"  {kind}: p50 {entry['p50_ms']:.2f} ms, p95 {entry['p95_ms']:.2f} ms, "
            f"p99 {entry['p99_ms']:.2f} ms ({entry['count']} ops)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
